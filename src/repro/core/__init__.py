"""The DC-MBQC distributed compilation framework (Section IV).

:class:`~repro.core.compiler.DCMBQCCompiler` is the public entry point of
the library.  It implements the pipeline of Figure 2:

1. translate the input program into a computation graph,
2. partition it across QPUs with the adaptive graph partitioner
   (Algorithm 2),
3. compile every partition for its QPU with the single-QPU grid mapper,
4. turn the severed entanglement edges into connector pairs /
   synchronisation tasks routed through connection layers,
5. solve the layer scheduling problem (list scheduling + BDIR) to obtain the
   final distributed schedule,
6. report execution time and required photon lifetime.
"""

from repro.core.config import DCMBQCConfig
from repro.core.compiler import DCMBQCCompiler, DistributedCompilationResult
from repro.core.comparison import BaselineComparison, compare_with_baseline

__all__ = [
    "DCMBQCConfig",
    "DCMBQCCompiler",
    "DistributedCompilationResult",
    "BaselineComparison",
    "compare_with_baseline",
]
