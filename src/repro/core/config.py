"""Configuration of the DC-MBQC compiler."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.qpu import DEFAULT_CONNECTION_CAPACITY, InterconnectTopology
from repro.hardware.resource_states import ResourceStateType
from repro.scheduling.bdir import BDIRConfig
from repro.utils.errors import CompilationError

__all__ = ["DCMBQCConfig"]


@dataclass(frozen=True)
class DCMBQCConfig:
    """End-to-end configuration of a distributed compilation run.

    The defaults reproduce the paper's main experimental setting
    (Section V-A): ``K_max = 4``, ``alpha_max = 1.5``, ``epsilon_Q = 0.01``,
    ``gamma = 1.02``, BDIR with ``T0 = 10``, cooling 0.95 and 20 iterations.

    Attributes:
        num_qpus: Number of QPUs to distribute across.
        grid_size: Side length of each QPU's 2D logical resource layer.
        rsg_type: Resource-state shape emitted by the RSGs.
        connection_capacity: ``K_max`` — concurrent inter-QPU connections a
            connection layer supports.
        topology: Interconnect topology between QPUs.
        alpha_max: Maximum imbalance factor for adaptive partitioning.
        epsilon_q: Modularity-improvement threshold of Algorithm 2.
        gamma: Imbalance step factor of Algorithm 2.
        use_bdir: Refine the schedule with BDIR (Algorithm 3); when False
            only priority-based list scheduling is used ("DC-MBQC (Core)").
        bdir: Simulated-annealing parameters for BDIR.
        seed: Master seed for every stochastic component.
    """

    num_qpus: int = 4
    grid_size: int = 7
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    connection_capacity: int = DEFAULT_CONNECTION_CAPACITY
    topology: InterconnectTopology = InterconnectTopology.FULLY_CONNECTED
    alpha_max: float = 1.5
    epsilon_q: float = 0.01
    gamma: float = 1.02
    use_bdir: bool = True
    bdir: BDIRConfig = field(default_factory=BDIRConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_qpus < 1:
            raise CompilationError("num_qpus must be at least 1")
        if self.grid_size < 1:
            raise CompilationError("grid_size must be at least 1")
        if self.connection_capacity < 1:
            raise CompilationError("connection_capacity must be at least 1")
        if self.alpha_max < 1.0:
            raise CompilationError("alpha_max must be at least 1.0")

    def with_updates(self, **kwargs) -> "DCMBQCConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)
