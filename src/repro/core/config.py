"""Configuration of the DC-MBQC compiler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.hardware.qpu import (
    DEFAULT_CONNECTION_CAPACITY,
    InterconnectTopology,
    QPUSpec,
)
from repro.hardware.resource_states import ResourceStateType
from repro.scheduling.bdir import BDIRConfig
from repro.utils.errors import CompilationError

__all__ = ["DCMBQCConfig"]


@dataclass(frozen=True)
class DCMBQCConfig:
    """End-to-end configuration of a distributed compilation run.

    The defaults reproduce the paper's main experimental setting
    (Section V-A): ``K_max = 4``, ``alpha_max = 1.5``, ``epsilon_Q = 0.01``,
    ``gamma = 1.02``, BDIR with ``T0 = 10``, cooling 0.95 and 20 iterations,
    on a fully-connected homogeneous system.

    Attributes:
        num_qpus: Number of QPUs to distribute across.
        grid_size: Side length of each QPU's 2D logical resource layer.
        rsg_type: Resource-state shape emitted by the RSGs.
        connection_capacity: ``K_max`` — concurrent inter-QPU connections a
            connection layer supports.
        topology: Interconnect topology between QPUs.
        qpu_grid_sizes: Optional per-QPU grid sizes (heterogeneous fleet);
            length must equal ``num_qpus``.  ``None`` means every QPU uses
            ``grid_size``.
        qpu_rsg_types: Optional per-QPU resource-state shapes; length must
            equal ``num_qpus``.  ``None`` means every QPU uses ``rsg_type``.
        qpu_connection_capacities: Optional per-QPU ``K_max`` values; length
            must equal ``num_qpus``.
        link_capacity: Optional per-link ``K_max`` shared by every
            interconnect link; defaults to the endpoint QPUs' capacities.
        custom_links: Explicit interconnect adjacency for
            ``topology == CUSTOM``: ``(qpu_a, qpu_b)`` or
            ``(qpu_a, qpu_b, capacity)`` tuples.
        alpha_max: Maximum imbalance factor for adaptive partitioning.
        epsilon_q: Modularity-improvement threshold of Algorithm 2.
        gamma: Imbalance step factor of Algorithm 2.
        use_bdir: Refine the schedule with BDIR (Algorithm 3); when False
            only priority-based list scheduling is used ("DC-MBQC (Core)").
        bdir: Simulated-annealing parameters for BDIR.
        bdir_starts: Number of independently seeded BDIR refinement starts
            sharing ``bdir.max_iterations`` as a total move budget (best-of
            selection).  ``1`` (the default) is the canonical single-start
            refinement, bit-identical to earlier releases.
        relay_model: Communication model for relayed syncs on sparse
            interconnects: ``"pipelined"`` (store-and-forward hop windows,
            the default) or ``"atomic"`` (circuit-switched: the whole route
            held for the full transfer window; kept for before/after
            ablations).  Direct syncs behave
            identically under both, so fully-connected systems are
            unaffected.
        seed: Master seed for every stochastic component.
    """

    num_qpus: int = 4
    grid_size: int = 7
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    connection_capacity: int = DEFAULT_CONNECTION_CAPACITY
    topology: InterconnectTopology = InterconnectTopology.FULLY_CONNECTED
    qpu_grid_sizes: Optional[Tuple[int, ...]] = None
    qpu_rsg_types: Optional[Tuple[ResourceStateType, ...]] = None
    qpu_connection_capacities: Optional[Tuple[int, ...]] = None
    link_capacity: Optional[int] = None
    custom_links: Optional[Tuple[Tuple[int, ...], ...]] = None
    alpha_max: float = 1.5
    epsilon_q: float = 0.01
    gamma: float = 1.02
    use_bdir: bool = True
    bdir: BDIRConfig = field(default_factory=BDIRConfig)
    bdir_starts: int = 1
    relay_model: str = "pipelined"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_qpus < 1:
            raise CompilationError("num_qpus must be at least 1")
        if self.grid_size < 1:
            raise CompilationError("grid_size must be at least 1")
        if self.connection_capacity < 1:
            raise CompilationError("connection_capacity must be at least 1")
        if self.bdir_starts < 1:
            raise CompilationError("bdir_starts must be at least 1")
        if self.alpha_max < 1.0:
            raise CompilationError("alpha_max must be at least 1.0")
        if self.relay_model not in ("pipelined", "atomic"):
            raise CompilationError(
                f"relay_model must be 'pipelined' or 'atomic', got {self.relay_model!r}"
            )

        # Normalise sequence fields so frozen configs stay hashable and
        # cache keys canonical regardless of whether callers pass lists.
        topology = InterconnectTopology(self.topology)
        object.__setattr__(self, "topology", topology)
        for name in ("qpu_grid_sizes", "qpu_connection_capacities"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(int(v) for v in value))
        if self.qpu_rsg_types is not None:
            object.__setattr__(
                self,
                "qpu_rsg_types",
                tuple(ResourceStateType.from_name(r) for r in self.qpu_rsg_types),
            )
        if self.custom_links is not None:
            object.__setattr__(
                self,
                "custom_links",
                tuple(tuple(int(v) for v in link) for link in self.custom_links),
            )

        multi_qpu_shapes = (
            InterconnectTopology.LINE,
            InterconnectTopology.RING,
            InterconnectTopology.STAR,
            InterconnectTopology.GRID_2D,
            InterconnectTopology.TORUS,
        )
        if self.num_qpus == 1 and topology in multi_qpu_shapes:
            raise CompilationError(
                f"topology {topology.value!r} needs at least 2 QPUs "
                f"(num_qpus=1 admits only a fully-connected or custom system)"
            )
        for name in (
            "qpu_grid_sizes",
            "qpu_rsg_types",
            "qpu_connection_capacities",
        ):
            value = getattr(self, name)
            if value is not None and len(value) != self.num_qpus:
                raise CompilationError(
                    f"{name} lists {len(value)} QPUs, but num_qpus={self.num_qpus}"
                )
        if self.qpu_grid_sizes is not None and any(
            size < 1 for size in self.qpu_grid_sizes
        ):
            raise CompilationError("every per-QPU grid size must be at least 1")
        if self.qpu_connection_capacities is not None and any(
            cap < 1 for cap in self.qpu_connection_capacities
        ):
            raise CompilationError("every per-QPU connection capacity must be at least 1")
        if self.link_capacity is not None and self.link_capacity < 1:
            raise CompilationError("link_capacity must be at least 1")
        if topology is InterconnectTopology.CUSTOM:
            if not self.custom_links:
                raise CompilationError(
                    "custom topology requires custom_links (an explicit adjacency)"
                )
            for link in self.custom_links:
                if len(link) not in (2, 3):
                    raise CompilationError(
                        f"custom link {link!r} must be (a, b) or (a, b, capacity)"
                    )
                if not (0 <= link[0] < self.num_qpus and 0 <= link[1] < self.num_qpus):
                    raise CompilationError(
                        f"custom link {link!r} references a QPU outside "
                        f"0..{self.num_qpus - 1}"
                    )
        elif self.custom_links is not None:
            raise CompilationError(
                "custom_links is only valid with the custom topology"
            )

    # ------------------------------------------------------------------ #
    # Hardware model
    # ------------------------------------------------------------------ #

    def qpu_specs(self) -> Tuple[QPUSpec, ...]:
        """Per-QPU hardware specs implied by this configuration."""
        grids = self.qpu_grid_sizes or (self.grid_size,) * self.num_qpus
        rsg_default = ResourceStateType.from_name(self.rsg_type)
        rsgs = self.qpu_rsg_types or (rsg_default,) * self.num_qpus
        capacities = (
            self.qpu_connection_capacities
            or (self.connection_capacity,) * self.num_qpus
        )
        return tuple(
            QPUSpec(
                grid_size=grid,
                rsg_type=ResourceStateType.from_name(rsg),
                connection_capacity=cap,
            )
            for grid, rsg, cap in zip(grids, rsgs, capacities)
        )

    def system_model(self):
        """Build the :class:`~repro.hardware.system.SystemModel` to compile for."""
        from repro.hardware.system import build_system

        return build_system(
            num_qpus=self.num_qpus,
            qpu=self.qpu_specs(),
            topology=self.topology,
            link_capacity=self.link_capacity,
            custom_links=self.custom_links,
        )

    @property
    def is_heterogeneous(self) -> bool:
        """True if any per-QPU override deviates from the shared spec."""
        specs = self.qpu_specs()
        return any(spec != specs[0] for spec in specs[1:])

    def with_updates(self, **kwargs) -> "DCMBQCConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)
