"""Baseline comparison helpers.

The paper's tables report the distributed compiler's execution time and
required photon lifetime *relative* to a monolithic baseline (OneQ in
Tables III/IV, OneAdapt in Table V).  This module compiles the same program
with both compilers and packages the improvement factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph, computation_graph_from_pattern
from repro.compiler.oneadapt import OneAdaptCompiler
from repro.compiler.oneq import OneQCompiler
from repro.core.compiler import DCMBQCCompiler, DistributedCompilationResult
from repro.core.config import DCMBQCConfig
from repro.mbqc.pattern import Pattern
from repro.mbqc.translate import circuit_to_pattern
from repro.metrics.improvement import improvement_factor

__all__ = ["BaselineComparison", "compare_with_baseline"]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]


@dataclass(frozen=True)
class BaselineComparison:
    """Side-by-side result of a baseline and a distributed compilation.

    Attributes:
        baseline_execution_time / baseline_lifetime: Metrics of the
            monolithic single-QPU compilation.
        distributed_execution_time / distributed_lifetime: Metrics of the
            DC-MBQC compilation.
        execution_improvement / lifetime_improvement: Ratios
            ``baseline / distributed`` — the numbers reported in the paper's
            tables.
    """

    program_name: str
    baseline_execution_time: int
    baseline_lifetime: int
    distributed_execution_time: int
    distributed_lifetime: int

    @property
    def execution_improvement(self) -> float:
        """Execution-time improvement factor."""
        return improvement_factor(
            self.baseline_execution_time, self.distributed_execution_time
        )

    @property
    def lifetime_improvement(self) -> float:
        """Required-photon-lifetime improvement factor."""
        return improvement_factor(self.baseline_lifetime, self.distributed_lifetime)

    def as_row(self) -> Dict[str, object]:
        """Return a table row matching the paper's column layout."""
        return {
            "program": self.program_name,
            "baseline_exec": self.baseline_execution_time,
            "our_exec": self.distributed_execution_time,
            "exec_improvement": round(self.execution_improvement, 2),
            "baseline_lifetime": self.baseline_lifetime,
            "our_lifetime": self.distributed_lifetime,
            "lifetime_improvement": round(self.lifetime_improvement, 2),
        }


def _baseline_spec(config: DCMBQCConfig):
    """``(grid_size, rsg_type)`` the monolithic baseline is built with.

    Homogeneous fleets use the shared spec — bit-identical to the historic
    behaviour, so cached baseline compilations stay valid.  Heterogeneous
    fleets compare against the most capable QPU in the fleet (largest grid,
    first such QPU on ties): the monolithic machine a mixed fleet replaces
    is at least as large as its biggest member, so mixed-fleet table-8 rows
    do not understate the baseline.
    """
    if not config.is_heterogeneous:
        return config.grid_size, config.rsg_type
    best = max(config.qpu_specs(), key=lambda spec: spec.grid_size)
    return best.grid_size, best.rsg_type


def _to_computation_graph(program: CompilationInput) -> ComputationGraph:
    if isinstance(program, ComputationGraph):
        return program
    if isinstance(program, Pattern):
        return computation_graph_from_pattern(program)
    return computation_graph_from_pattern(circuit_to_pattern(program))


def compare_with_baseline(
    program: CompilationInput,
    config: DCMBQCConfig,
    baseline: str = "oneq",
    distributed_result: Optional[DistributedCompilationResult] = None,
) -> BaselineComparison:
    """Compile ``program`` with a monolithic baseline and with DC-MBQC.

    Args:
        program: Circuit, pattern, or computation graph.
        config: Distributed compiler configuration (also provides the grid
            size and resource state used by the baseline).
        baseline: ``"oneq"`` (Tables III/IV) or ``"oneadapt"`` (Table V).
        distributed_result: Reuse an existing distributed compilation
            instead of recompiling (the computation graph must match).
    """
    computation = _to_computation_graph(program)

    baseline_key = baseline.lower()
    grid_size, rsg_type = _baseline_spec(config)
    if baseline_key == "oneq":
        baseline_schedule = OneQCompiler(
            grid_size=grid_size, rsg_type=rsg_type, seed=config.seed
        ).compile(computation)
    elif baseline_key == "oneadapt":
        baseline_schedule = OneAdaptCompiler(
            grid_size=grid_size,
            rsg_type=rsg_type,
            boundary_reservation=True,
            seed=config.seed,
        ).compile(computation)
    else:
        raise ValueError(f"unknown baseline {baseline!r}")

    if distributed_result is None:
        distributed_result = DCMBQCCompiler(config).compile(computation)

    return BaselineComparison(
        program_name=computation.name,
        baseline_execution_time=baseline_schedule.execution_time,
        baseline_lifetime=baseline_schedule.required_photon_lifetime,
        distributed_execution_time=distributed_result.execution_time,
        distributed_lifetime=distributed_result.required_photon_lifetime,
    )
