"""The DC-MBQC distributed compiler (Figure 2 pipeline)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph
from repro.compiler.execution import SingleQPUSchedule
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.core.config import DCMBQCConfig
from repro.hardware.qpu import MultiQPUSystem, QPUSpec
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern
from repro.partition.adaptive import AdaptivePartitionConfig, AdaptivePartitioner
from repro.partition.types import PartitionResult
from repro.scheduling.bdir import BDIRScheduler
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.portfolio import portfolio_refine
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    MainTask,
    Schedule,
    ScheduleEvaluation,
    SyncTask,
)
from repro.utils.errors import CompilationError

__all__ = ["DCMBQCCompiler", "DistributedCompilationResult"]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]

_DEFAULT_STORE = object()  # sentinel: resolve the artifact store from the environment


@dataclass
class DistributedCompilationResult:
    """Everything produced by one distributed compilation run.

    Attributes:
        config: The configuration used.
        computation: The global computation graph.
        partition: Node-to-QPU assignment.
        qpu_schedules: Per-QPU single-QPU schedules (the main tasks).
        connectors: The severed (cut) entanglement edges, as node pairs.
        problem: The layer scheduling problem instance.
        schedule: The final task schedule.
        evaluation: Objective breakdown of the final schedule.
    """

    config: DCMBQCConfig
    computation: ComputationGraph
    partition: PartitionResult
    qpu_schedules: List[SingleQPUSchedule]
    connectors: List[Tuple[int, int]]
    problem: LayerSchedulingProblem
    schedule: Schedule
    evaluation: ScheduleEvaluation

    @property
    def execution_time(self) -> int:
        """Execution time (makespan) of the distributed program."""
        return self.evaluation.makespan

    @property
    def required_photon_lifetime(self) -> int:
        """Required photon lifetime of the distributed program."""
        return self.evaluation.tau_photon

    @property
    def num_connectors(self) -> int:
        """Number of connector pairs (cut edges)."""
        return len(self.connectors)

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary used by reports and the benchmark harness."""
        return {
            "name": self.computation.name,
            "num_qpus": self.config.num_qpus,
            "rsg_type": ResourceStateType.from_name(self.config.rsg_type).value,
            "nodes": self.computation.num_nodes,
            "fusions": self.computation.num_fusions,
            "connectors": self.num_connectors,
            "part_sizes": self.partition.part_sizes(),
            "execution_time": self.execution_time,
            "required_photon_lifetime": self.required_photon_lifetime,
            "tau_local": self.evaluation.tau_local,
            "tau_remote": self.evaluation.tau_remote,
        }


@dataclass
class DCMBQCCompiler:
    """Distributed compiler for measurement-based quantum computing.

    Typical use::

        from repro.core import DCMBQCCompiler, DCMBQCConfig
        from repro.programs import build_benchmark

        config = DCMBQCConfig(num_qpus=4, grid_size=7)
        result = DCMBQCCompiler(config).compile(build_benchmark("QFT", 16))
        print(result.execution_time, result.required_photon_lifetime)
    """

    config: DCMBQCConfig = field(default_factory=DCMBQCConfig)

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #

    def partition(self, computation: ComputationGraph) -> PartitionResult:
        """Stage 1: adaptive graph partitioning (Algorithm 2).

        The system model constrains the search: heterogeneous fleets
        balance part weights against per-QPU cell capacities instead of a
        uniform ``1/N``, and sparse interconnects weight cut edges by the
        *communication volume* between the parts they join — the relay
        cycles (QPU slots, store-and-forward buffers, capacity-weighted
        link cycles) one pipelined sync costs under the current route
        table.  Homogeneous fully-connected systems pass ``None`` for
        both, which keeps the seed partitioner's exact (bit-identical)
        code path.
        """
        system = self.system_model()
        capacities = None if system.is_homogeneous else system.qpu_capacity_weights()
        comm_costs = None if system.is_fully_connected else system.comm_volume_matrix()
        adaptive_config = AdaptivePartitionConfig(
            num_parts=self.config.num_qpus,
            epsilon_q=self.config.epsilon_q,
            alpha_max=self.config.alpha_max,
            gamma=self.config.gamma,
            seed=self.config.seed,
            capacities=capacities,
            comm_costs=comm_costs,
        )
        partition = AdaptivePartitioner(adaptive_config).partition(computation.graph)
        partition.validate_covers(computation.graph)
        return partition

    def compile_partitions(
        self, computation: ComputationGraph, partition: PartitionResult
    ) -> List[SingleQPUSchedule]:
        """Stage 2: single-QPU compilation of every partition.

        Each partition is mapped onto *its own* QPU's grid and resource
        state, so a heterogeneous fleet compiles every part against the
        hardware it will actually run on.
        """
        system = self.system_model()
        schedules: List[SingleQPUSchedule] = []
        for part_index, nodes in enumerate(partition.parts()):
            qpu = system.qpus[part_index]
            subgraph = computation.induced_subgraph(
                nodes, name=f"{computation.name}_qpu{part_index}"
            )
            mapper = LayeredGridMapper(
                MapperConfig(
                    grid_size=qpu.grid_size,
                    rsg_type=qpu.rsg_type,
                    seed=self.config.seed + part_index,
                )
            )
            schedules.append(mapper.map(subgraph))
        return schedules

    def build_scheduling_problem(
        self,
        computation: ComputationGraph,
        partition: PartitionResult,
        qpu_schedules: List[SingleQPUSchedule],
    ) -> Tuple[LayerSchedulingProblem, List[Tuple[int, int]]]:
        """Stage 3: connector extraction and scheduling-problem construction."""
        main_tasks: List[List[MainTask]] = []
        node_layer_by_qpu: List[Dict[int, int]] = []
        for qpu, schedule in enumerate(qpu_schedules):
            layers: List[MainTask] = []
            for layer in schedule.layers:
                layers.append(
                    MainTask(qpu=qpu, index=layer.index, nodes=tuple(sorted(layer.node_cells)))
                )
            main_tasks.append(layers)
            node_layer_by_qpu.append(schedule.node_layer_index())

        system = self.system_model()
        connectors = computation.cut_edges(partition.assignment)
        sync_tasks: List[SyncTask] = []
        for sync_id, (u, v) in enumerate(connectors):
            qpu_u = partition.part_of(u)
            qpu_v = partition.part_of(v)
            if qpu_u == qpu_v:  # pragma: no cover - defensive
                raise CompilationError("cut edge endpoints are on the same QPU")
            # Route the synchronisation along the interconnect: adjacent
            # QPUs use their direct link (empty route, the seed behaviour);
            # non-adjacent pairs relay through the shortest QPU path.
            route: Tuple[int, ...] = ()
            if not system.are_connected(qpu_u, qpu_v):
                route = system.route(qpu_u, qpu_v)
            sync_tasks.append(
                SyncTask(
                    sync_id=sync_id,
                    qpu_a=qpu_u,
                    index_a=node_layer_by_qpu[qpu_u][u],
                    qpu_b=qpu_v,
                    index_b=node_layer_by_qpu[qpu_v][v],
                    connector=(u, v),
                    route=route,
                )
            )

        local_fusee_pairs: List[Tuple[int, int]] = []
        for schedule in qpu_schedules:
            local_fusee_pairs.extend(schedule.fusee_pairs)

        # Per-QPU and per-link capacity tables are only materialised when
        # they constrain anything beyond the scalar K_max (heterogeneous
        # capacities or a non-complete interconnect); the default system
        # yields the seed problem object byte for byte.
        qpu_capacities = None
        if any(
            qpu.connection_capacity != self.config.connection_capacity
            for qpu in system.qpus
        ):
            qpu_capacities = system.qpu_connection_capacities()
        link_capacities = None
        if not system.is_fully_connected or any(
            link.capacity != self.config.connection_capacity for link in system.links
        ):
            link_capacities = system.link_capacities()

        problem = LayerSchedulingProblem(
            num_qpus=self.config.num_qpus,
            main_tasks=main_tasks,
            sync_tasks=sync_tasks,
            connection_capacity=self.config.connection_capacity,
            dependency=computation.dependency,
            local_fusee_pairs=local_fusee_pairs,
            removed_nodes=set(computation.removed_nodes),
            qpu_capacities=qpu_capacities,
            link_capacities=link_capacities,
            relay_model=self.config.relay_model,
        )
        return problem, connectors

    def schedule(self, problem: LayerSchedulingProblem) -> Schedule:
        """Stage 4: layer scheduling (list scheduling, optionally + BDIR)."""
        initial = list_schedule(problem)
        if not self.config.use_bdir:
            return initial
        if self.config.bdir_starts > 1:
            return portfolio_refine(
                problem,
                self.config.bdir,
                initial,
                starts=self.config.bdir_starts,
                system=self.system_model(),
            )
        refined = BDIRScheduler(
            problem, self.config.bdir, system=self.system_model()
        ).refine(initial)
        return refined

    # ------------------------------------------------------------------ #
    # End-to-end
    # ------------------------------------------------------------------ #

    def compile_run(
        self,
        program: CompilationInput,
        store=_DEFAULT_STORE,
        use_cache: bool = True,
        no_cache_stages=(),
        memo=None,
    ):
        """Run the staged pipeline on ``program``; returns ``(result, run)``.

        The pipeline (translate → compgraph → partition → qpu_mapping →
        scheduling) short-circuits on cached stage artifacts: the in-process
        memo cache always applies, and the on-disk artifact store does when
        ``DCMBQC_ARTIFACT_CACHE_DIR`` is set (or a store is passed).  The
        returned run carries the provenance manifest consumed by the CLI's
        cache summary and by telemetry tests.

        ``no_cache_stages`` names stages that must execute (no cache lookup)
        while still publishing their artifacts — compilation-runtime
        benchmarks scope their cache bypass to the timed stages this way.
        ``memo`` overrides the process-global in-memory cache.
        """
        from repro.obs.trace import TRACER
        from repro.pipeline import Pipeline, resolve_store
        from repro.pipeline.stages import distributed_stages, initial_program_state

        with TRACER.span(
            "compile.distributed",
            program=type(program).__name__,
            num_qpus=self.config.num_qpus,
            topology=str(self.config.topology),
        ):
            if store is _DEFAULT_STORE:
                store = resolve_store(enabled=use_cache)
            pipeline = Pipeline(
                distributed_stages(self),
                store=store,
                use_cache=use_cache,
                no_cache_stages=no_cache_stages,
                memo=memo,
            )
            run = pipeline.run(initial_program_state(program))
            return run.state["result"], run

    def compile(self, program: CompilationInput) -> DistributedCompilationResult:
        """Run the full DC-MBQC pipeline on ``program``."""
        return self.compile_run(program)[0]

    def system_model(self):
        """The (cached) :class:`~repro.hardware.system.SystemModel` compiled for."""
        system = getattr(self, "_system_model", None)
        if system is None:
            system = self.config.system_model()
            self._system_model = system
        return system

    def multi_qpu_system(self) -> MultiQPUSystem:
        """Return the homogeneous hardware description implied by the config.

        Retained for backwards compatibility; heterogeneous configurations
        should use :meth:`system_model` instead.
        """
        return MultiQPUSystem(
            num_qpus=self.config.num_qpus,
            qpu=QPUSpec(
                grid_size=self.config.grid_size,
                rsg_type=ResourceStateType.from_name(self.config.rsg_type),
                connection_capacity=self.config.connection_capacity,
            ),
            topology=self.config.topology,
        )
