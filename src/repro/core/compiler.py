"""The DC-MBQC distributed compiler (Figure 2 pipeline)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph
from repro.compiler.execution import SingleQPUSchedule
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.core.config import DCMBQCConfig
from repro.hardware.qpu import MultiQPUSystem, QPUSpec
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern
from repro.partition.adaptive import AdaptivePartitionConfig, AdaptivePartitioner
from repro.partition.types import PartitionResult
from repro.scheduling.bdir import BDIRScheduler
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    MainTask,
    Schedule,
    ScheduleEvaluation,
    SyncTask,
)
from repro.utils.errors import CompilationError

__all__ = ["DCMBQCCompiler", "DistributedCompilationResult"]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]

_DEFAULT_STORE = object()  # sentinel: resolve the artifact store from the environment


@dataclass
class DistributedCompilationResult:
    """Everything produced by one distributed compilation run.

    Attributes:
        config: The configuration used.
        computation: The global computation graph.
        partition: Node-to-QPU assignment.
        qpu_schedules: Per-QPU single-QPU schedules (the main tasks).
        connectors: The severed (cut) entanglement edges, as node pairs.
        problem: The layer scheduling problem instance.
        schedule: The final task schedule.
        evaluation: Objective breakdown of the final schedule.
    """

    config: DCMBQCConfig
    computation: ComputationGraph
    partition: PartitionResult
    qpu_schedules: List[SingleQPUSchedule]
    connectors: List[Tuple[int, int]]
    problem: LayerSchedulingProblem
    schedule: Schedule
    evaluation: ScheduleEvaluation

    @property
    def execution_time(self) -> int:
        """Execution time (makespan) of the distributed program."""
        return self.evaluation.makespan

    @property
    def required_photon_lifetime(self) -> int:
        """Required photon lifetime of the distributed program."""
        return self.evaluation.tau_photon

    @property
    def num_connectors(self) -> int:
        """Number of connector pairs (cut edges)."""
        return len(self.connectors)

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary used by reports and the benchmark harness."""
        return {
            "name": self.computation.name,
            "num_qpus": self.config.num_qpus,
            "rsg_type": ResourceStateType.from_name(self.config.rsg_type).value,
            "nodes": self.computation.num_nodes,
            "fusions": self.computation.num_fusions,
            "connectors": self.num_connectors,
            "part_sizes": self.partition.part_sizes(),
            "execution_time": self.execution_time,
            "required_photon_lifetime": self.required_photon_lifetime,
            "tau_local": self.evaluation.tau_local,
            "tau_remote": self.evaluation.tau_remote,
        }


@dataclass
class DCMBQCCompiler:
    """Distributed compiler for measurement-based quantum computing.

    Typical use::

        from repro.core import DCMBQCCompiler, DCMBQCConfig
        from repro.programs import build_benchmark

        config = DCMBQCConfig(num_qpus=4, grid_size=7)
        result = DCMBQCCompiler(config).compile(build_benchmark("QFT", 16))
        print(result.execution_time, result.required_photon_lifetime)
    """

    config: DCMBQCConfig = field(default_factory=DCMBQCConfig)

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #

    def partition(self, computation: ComputationGraph) -> PartitionResult:
        """Stage 1: adaptive graph partitioning (Algorithm 2)."""
        adaptive_config = AdaptivePartitionConfig(
            num_parts=self.config.num_qpus,
            epsilon_q=self.config.epsilon_q,
            alpha_max=self.config.alpha_max,
            gamma=self.config.gamma,
            seed=self.config.seed,
        )
        partition = AdaptivePartitioner(adaptive_config).partition(computation.graph)
        partition.validate_covers(computation.graph)
        return partition

    def compile_partitions(
        self, computation: ComputationGraph, partition: PartitionResult
    ) -> List[SingleQPUSchedule]:
        """Stage 2: single-QPU compilation of every partition."""
        schedules: List[SingleQPUSchedule] = []
        for part_index, nodes in enumerate(partition.parts()):
            subgraph = computation.induced_subgraph(
                nodes, name=f"{computation.name}_qpu{part_index}"
            )
            mapper = LayeredGridMapper(
                MapperConfig(
                    grid_size=self.config.grid_size,
                    rsg_type=ResourceStateType.from_name(self.config.rsg_type),
                    seed=self.config.seed + part_index,
                )
            )
            schedules.append(mapper.map(subgraph))
        return schedules

    def build_scheduling_problem(
        self,
        computation: ComputationGraph,
        partition: PartitionResult,
        qpu_schedules: List[SingleQPUSchedule],
    ) -> Tuple[LayerSchedulingProblem, List[Tuple[int, int]]]:
        """Stage 3: connector extraction and scheduling-problem construction."""
        main_tasks: List[List[MainTask]] = []
        node_layer_by_qpu: List[Dict[int, int]] = []
        for qpu, schedule in enumerate(qpu_schedules):
            layers: List[MainTask] = []
            for layer in schedule.layers:
                layers.append(
                    MainTask(qpu=qpu, index=layer.index, nodes=tuple(sorted(layer.node_cells)))
                )
            main_tasks.append(layers)
            node_layer_by_qpu.append(schedule.node_layer_index())

        connectors = computation.cut_edges(partition.assignment)
        sync_tasks: List[SyncTask] = []
        for sync_id, (u, v) in enumerate(connectors):
            qpu_u = partition.part_of(u)
            qpu_v = partition.part_of(v)
            if qpu_u == qpu_v:  # pragma: no cover - defensive
                raise CompilationError("cut edge endpoints are on the same QPU")
            sync_tasks.append(
                SyncTask(
                    sync_id=sync_id,
                    qpu_a=qpu_u,
                    index_a=node_layer_by_qpu[qpu_u][u],
                    qpu_b=qpu_v,
                    index_b=node_layer_by_qpu[qpu_v][v],
                    connector=(u, v),
                )
            )

        local_fusee_pairs: List[Tuple[int, int]] = []
        for schedule in qpu_schedules:
            local_fusee_pairs.extend(schedule.fusee_pairs)

        problem = LayerSchedulingProblem(
            num_qpus=self.config.num_qpus,
            main_tasks=main_tasks,
            sync_tasks=sync_tasks,
            connection_capacity=self.config.connection_capacity,
            dependency=computation.dependency,
            local_fusee_pairs=local_fusee_pairs,
            removed_nodes=set(computation.removed_nodes),
        )
        return problem, connectors

    def schedule(self, problem: LayerSchedulingProblem) -> Schedule:
        """Stage 4: layer scheduling (list scheduling, optionally + BDIR)."""
        initial = list_schedule(problem)
        if not self.config.use_bdir:
            return initial
        refined = BDIRScheduler(problem, self.config.bdir).refine(initial)
        return refined

    # ------------------------------------------------------------------ #
    # End-to-end
    # ------------------------------------------------------------------ #

    def compile_run(
        self,
        program: CompilationInput,
        store=_DEFAULT_STORE,
        use_cache: bool = True,
        no_cache_stages=(),
        memo=None,
    ):
        """Run the staged pipeline on ``program``; returns ``(result, run)``.

        The pipeline (translate → compgraph → partition → qpu_mapping →
        scheduling) short-circuits on cached stage artifacts: the in-process
        memo cache always applies, and the on-disk artifact store does when
        ``DCMBQC_ARTIFACT_CACHE_DIR`` is set (or a store is passed).  The
        returned run carries the provenance manifest consumed by the CLI's
        cache summary and by telemetry tests.

        ``no_cache_stages`` names stages that must execute (no cache lookup)
        while still publishing their artifacts — compilation-runtime
        benchmarks scope their cache bypass to the timed stages this way.
        ``memo`` overrides the process-global in-memory cache.
        """
        from repro.pipeline import Pipeline, resolve_store
        from repro.pipeline.stages import distributed_stages, initial_program_state

        if store is _DEFAULT_STORE:
            store = resolve_store(enabled=use_cache)
        pipeline = Pipeline(
            distributed_stages(self),
            store=store,
            use_cache=use_cache,
            no_cache_stages=no_cache_stages,
            memo=memo,
        )
        run = pipeline.run(initial_program_state(program))
        return run.state["result"], run

    def compile(self, program: CompilationInput) -> DistributedCompilationResult:
        """Run the full DC-MBQC pipeline on ``program``."""
        return self.compile_run(program)[0]

    def multi_qpu_system(self) -> MultiQPUSystem:
        """Return the hardware system description implied by the config."""
        return MultiQPUSystem(
            num_qpus=self.config.num_qpus,
            qpu=QPUSpec(
                grid_size=self.config.grid_size,
                rsg_type=ResourceStateType.from_name(self.config.rsg_type),
                connection_capacity=self.config.connection_capacity,
            ),
            topology=self.config.topology,
        )
