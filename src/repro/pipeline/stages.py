"""Concrete pipeline stages wrapping the existing compiler phases.

The paper's toolflow — circuit → MBQC pattern → computation graph →
partition → per-QPU mapping → layer scheduling — is expressed here as
reusable :class:`~repro.pipeline.stage.Stage` factories.  The single-QPU
compilers (OneQ / OneAdapt) share the upstream ``translate``/``compgraph``
stages with the distributed compiler, so an interactive compile, a sweep
worker and a benchmark all address the same cached artifacts.

Stage parameter dicts deliberately list *every* knob that can change the
stage's output; anything omitted here would poison the cache.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph, computation_graph_from_pattern
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern
from repro.mbqc.translate import circuit_to_pattern
from repro.pipeline.stage import Stage

__all__ = [
    "CompilationInput",
    "initial_program_state",
    "translate_stage",
    "compgraph_stage",
    "grid_mapping_stage",
    "single_qpu_stages",
    "distributed_stages",
    "config_params",
]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]


def initial_program_state(program: CompilationInput) -> Dict[str, object]:
    """Map a compilation input onto the pipeline entry artifact it provides."""
    if isinstance(program, ComputationGraph):
        return {"computation": program}
    if isinstance(program, Pattern):
        return {"pattern": program}
    if isinstance(program, QuantumCircuit):
        return {"circuit": program}
    raise TypeError(f"cannot compile object of type {type(program).__name__}")


def _translate(circuit: QuantumCircuit) -> Pattern:
    return circuit_to_pattern(circuit)


def _compgraph(pattern: Pattern) -> ComputationGraph:
    return computation_graph_from_pattern(pattern)


def translate_stage() -> Stage:
    """circuit → measurement pattern (measurement-calculus translation).

    Version 2: patterns serialise with bitset domains (s_mask/t_mask).  The
    command classes migrate old pickles on load, but bumping the version
    keeps persistent stores from mixing artifact formats across releases.
    """
    return Stage(
        "translate", _translate, inputs=("circuit",), output="pattern", version="2"
    )


def compgraph_stage() -> Stage:
    """pattern → computation graph (signal shifting + dependency DAG)."""
    return Stage("compgraph", _compgraph, inputs=("pattern",), output="computation")


def grid_mapping_stage(
    grid_size: int,
    rsg_type: ResourceStateType = ResourceStateType.STAR_5,
    boundary_reservation: bool = False,
    placement_jitter: float = 0.0,
    seed: int = 0,
) -> Stage:
    """computation → single-QPU schedule (layered grid mapping).

    OneQ and OneAdapt share this stage: ``boundary_reservation`` is the only
    mapping-level difference between them, so an OneAdapt compile reuses a
    cached OneQ mapping whenever the flag is off.
    """
    rsg = ResourceStateType.from_name(rsg_type)
    config = MapperConfig(
        grid_size=grid_size,
        rsg_type=rsg,
        boundary_reservation=boundary_reservation,
        placement_jitter=placement_jitter,
        seed=seed,
    )

    def _map(computation: ComputationGraph):
        return LayeredGridMapper(config).map(computation)

    return Stage(
        "grid_mapping",
        _map,
        inputs=("computation",),
        output="schedule",
        params={
            "grid_size": grid_size,
            "rsg_type": rsg.value,
            "boundary_reservation": boundary_reservation,
            "placement_jitter": placement_jitter,
            "seed": seed,
        },
    )


def single_qpu_stages(
    grid_size: int,
    rsg_type: ResourceStateType = ResourceStateType.STAR_5,
    boundary_reservation: bool = False,
    placement_jitter: float = 0.0,
    seed: int = 0,
) -> List[Stage]:
    """The full single-QPU pipeline: translate → compgraph → grid mapping."""
    return [
        translate_stage(),
        compgraph_stage(),
        grid_mapping_stage(
            grid_size=grid_size,
            rsg_type=rsg_type,
            boundary_reservation=boundary_reservation,
            placement_jitter=placement_jitter,
            seed=seed,
        ),
    ]


def config_params(config) -> Dict[str, object]:
    """Flatten a :class:`~repro.core.config.DCMBQCConfig` for stage keys."""
    params = asdict(config)
    params["rsg_type"] = ResourceStateType.from_name(config.rsg_type).value
    params["topology"] = config.topology.value
    if config.qpu_rsg_types is not None:
        params["qpu_rsg_types"] = [
            ResourceStateType.from_name(rsg).value for rsg in config.qpu_rsg_types
        ]
    return params


def distributed_stages(compiler) -> List[Stage]:
    """The distributed pipeline behind :meth:`DCMBQCCompiler.compile`.

    Args:
        compiler: A :class:`~repro.core.compiler.DCMBQCCompiler`; its staged
            methods (partition / compile_partitions / build_scheduling_problem
            / schedule) remain the single source of the phase logic — the
            stages only add caching, keys and telemetry around them.
    """
    config = compiler.config
    full_params = config_params(config)
    # The system model shapes the partition (capacity targets from per-QPU
    # cells, communication-volume-weighted cuts from the interconnect) and the mapping
    # (per-partition grids), so exactly the structure each stage consumes
    # joins its cache key — K_max / link capacities only reach the
    # scheduling stage, keeping partition+mapping artifacts shared across
    # connection-capacity sweeps.
    system = compiler.system_model()
    partition_params = {
        name: full_params[name]
        for name in ("num_qpus", "epsilon_q", "alpha_max", "gamma", "seed")
    }
    # On sparse interconnects link capacity joins the partition key: the
    # communication-volume cut objective weights link cycles by capacity,
    # so the same adjacency with different link widths partitions
    # differently.  Fully-connected systems ignore the matrix entirely,
    # keeping partition artifacts shared across K_max sweeps.
    if system.is_fully_connected:
        links_key = [[link.qpu_a, link.qpu_b] for link in system.links]
    else:
        links_key = [[link.qpu_a, link.qpu_b, link.capacity] for link in system.links]
    partition_params["system"] = {
        "grid_sizes": [qpu.grid_size for qpu in system.qpus],
        "links": links_key,
    }
    mapping_params = {
        name: full_params[name]
        for name in ("num_qpus", "grid_size", "rsg_type", "seed")
    }
    mapping_params["system"] = {
        "grid_sizes": [qpu.grid_size for qpu in system.qpus],
        "rsg_types": [qpu.rsg_type.value for qpu in system.qpus],
    }

    def _partition(computation: ComputationGraph):
        return compiler.partition(computation)

    def _qpu_mapping(computation: ComputationGraph, partition):
        return compiler.compile_partitions(computation, partition)

    def _schedule(computation: ComputationGraph, partition, qpu_schedules):
        from repro.core.compiler import DistributedCompilationResult

        problem, connectors = compiler.build_scheduling_problem(
            computation, partition, qpu_schedules
        )
        schedule = compiler.schedule(problem)
        evaluation = problem.evaluate(schedule)
        return DistributedCompilationResult(
            config=config,
            computation=computation,
            partition=partition,
            qpu_schedules=qpu_schedules,
            connectors=connectors,
            problem=problem,
            schedule=schedule,
            evaluation=evaluation,
        )

    return [
        translate_stage(),
        compgraph_stage(),
        Stage(
            "partition",
            _partition,
            inputs=("computation",),
            output="partition",
            params=partition_params,
        ),
        Stage(
            "qpu_mapping",
            _qpu_mapping,
            inputs=("computation", "partition"),
            output="qpu_schedules",
            params=mapping_params,
        ),
        Stage(
            "scheduling",
            _schedule,
            inputs=("computation", "partition", "qpu_schedules"),
            output="result",
            params=full_params,
        ),
    ]
