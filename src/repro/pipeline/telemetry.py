"""Per-stage wall-time and cache-hit telemetry.

Every :class:`~repro.pipeline.pipeline.Pipeline` run reports into a
process-global :class:`TelemetryRegistry`: one counter block per stage name
tracking executions (real work), memory hits, disk hits and accumulated
execution seconds.  Tests use the registry to assert the cache contract —
e.g. that a warm rerun of a sweep performs **zero** circuit→pattern and
pattern→computation-graph recomputations — and the sweep runner snapshots it
around each task to attach per-point hit/miss deltas to the run table.

:class:`TelemetryRegistry` is a thin compatibility view over the unified
metrics core (:class:`repro.obs.metrics.MetricsRegistry`): executions and
hits are labelled counters (``pipeline.stage.executions{stage=...}``), wall
time is a labelled histogram, and the lock/snapshot/reset machinery lives
in the core exactly once.  The public API — ``record_execution``,
``record_hit``, ``counters``, ``snapshot``, ``totals``, ``reset`` — is
unchanged.

The registry is per process: sweep workers each own a copy, and their deltas
travel back to the parent inside the point records (see
:func:`repro.sweep.runner.execute_point`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import METRICS, MetricsRegistry

__all__ = ["StageCounters", "TelemetryRegistry", "TELEMETRY"]

#: Cache layers a stage short-circuit may come from.
_HIT_SOURCES = ("memory", "disk")


@dataclass
class StageCounters:
    """Counters for one pipeline stage.

    Attributes:
        executions: Times the stage function actually ran (cache misses and
            uncached runs alike).
        memory_hits: Short-circuits served from the in-process memo cache.
        disk_hits: Short-circuits served from the on-disk artifact store.
        seconds: Total wall time spent in real executions.
    """

    executions: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    seconds: float = 0.0

    @property
    def hits(self) -> int:
        """Total cache short-circuits (memory + disk)."""
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for JSON output."""
        return {
            "executions": self.executions,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "seconds": round(self.seconds, 6),
        }


class TelemetryRegistry:
    """Per-stage counter registry: a namespaced view over the metrics core."""

    #: Metric-name prefix the view owns inside the shared registry.
    NAMESPACE = "pipeline.stage."

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        # A private registry by default keeps ad-hoc instances (tests,
        # scoped pipelines) isolated; the process-global TELEMETRY shares
        # the METRICS core.
        self._registry = registry if registry is not None else MetricsRegistry()

    def record_execution(self, name: str, seconds: float) -> None:
        """Count one real execution of stage ``name`` taking ``seconds``."""
        self._registry.inc(self.NAMESPACE + "executions", 1, stage=name)
        self._registry.observe(self.NAMESPACE + "seconds", seconds, stage=name)

    def record_hit(self, name: str, source: str) -> None:
        """Count one cache short-circuit; ``source`` must be memory/disk."""
        if source not in _HIT_SOURCES:
            raise ValueError(
                f"unknown cache-hit source {source!r} for stage {name!r}; "
                f"expected one of {_HIT_SOURCES}"
            )
        self._registry.inc(self.NAMESPACE + f"{source}_hits", 1, stage=name)

    def counters(self, name: str) -> StageCounters:
        """Copy of the counters for one stage (zeros if never seen)."""
        registry = self._registry
        return StageCounters(
            executions=registry.counter(self.NAMESPACE + "executions", stage=name),
            memory_hits=registry.counter(self.NAMESPACE + "memory_hits", stage=name),
            disk_hits=registry.counter(self.NAMESPACE + "disk_hits", stage=name),
            seconds=registry.histogram(self.NAMESPACE + "seconds", stage=name).total,
        )

    def _stage_names(self) -> List[str]:
        """Stage names seen so far, in first-recorded order per counter."""
        names: List[str] = []
        for counter in ("executions", "memory_hits", "disk_hits"):
            for stage in self._registry.label_values(self.NAMESPACE + counter, "stage"):
                if stage not in names:
                    names.append(stage)
        return names

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-stage counter dicts, keyed by stage name."""
        return {name: self.counters(name).as_dict() for name in self._stage_names()}

    def totals(self) -> Dict[str, int]:
        """Aggregate hit/execution counts across every stage."""
        executions = 0
        hits = 0
        disk_hits = 0
        for name in self._stage_names():
            counters = self.counters(name)
            executions += counters.executions
            hits += counters.hits
            disk_hits += counters.disk_hits
        return {"executions": executions, "hits": hits, "disk_hits": disk_hits}

    def reset(self) -> None:
        """Zero every counter in this namespace (used between test phases)."""
        self._registry.reset(self.NAMESPACE)


#: Process-global telemetry registry shared by every pipeline, backed by
#: the shared :data:`repro.obs.metrics.METRICS` core.
TELEMETRY = TelemetryRegistry(registry=METRICS)
