"""Per-stage wall-time and cache-hit telemetry.

Every :class:`~repro.pipeline.pipeline.Pipeline` run reports into a
process-global :class:`TelemetryRegistry`: one counter block per stage name
tracking executions (real work), memory hits, disk hits and accumulated
execution seconds.  Tests use the registry to assert the cache contract —
e.g. that a warm rerun of a sweep performs **zero** circuit→pattern and
pattern→computation-graph recomputations — and the sweep runner snapshots it
around each task to attach per-point hit/miss deltas to the run table.

The registry is per process: sweep workers each own a copy, and their deltas
travel back to the parent inside the point records (see
:func:`repro.sweep.runner.execute_point`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

__all__ = ["StageCounters", "TelemetryRegistry", "TELEMETRY"]


@dataclass
class StageCounters:
    """Counters for one pipeline stage.

    Attributes:
        executions: Times the stage function actually ran (cache misses and
            uncached runs alike).
        memory_hits: Short-circuits served from the in-process memo cache.
        disk_hits: Short-circuits served from the on-disk artifact store.
        seconds: Total wall time spent in real executions.
    """

    executions: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    seconds: float = 0.0

    @property
    def hits(self) -> int:
        """Total cache short-circuits (memory + disk)."""
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for JSON output."""
        return {
            "executions": self.executions,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "seconds": round(self.seconds, 6),
        }


class TelemetryRegistry:
    """Thread-safe per-stage counter registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, StageCounters] = {}

    def _stage(self, name: str) -> StageCounters:
        counters = self._counters.get(name)
        if counters is None:
            counters = self._counters[name] = StageCounters()
        return counters

    def record_execution(self, name: str, seconds: float) -> None:
        """Count one real execution of stage ``name`` taking ``seconds``."""
        with self._lock:
            counters = self._stage(name)
            counters.executions += 1
            counters.seconds += seconds

    def record_hit(self, name: str, source: str) -> None:
        """Count one cache short-circuit (``source`` is ``memory``/``disk``)."""
        with self._lock:
            counters = self._stage(name)
            if source == "disk":
                counters.disk_hits += 1
            else:
                counters.memory_hits += 1

    def counters(self, name: str) -> StageCounters:
        """Copy of the counters for one stage (zeros if never seen)."""
        with self._lock:
            counters = self._counters.get(name, StageCounters())
            return StageCounters(
                executions=counters.executions,
                memory_hits=counters.memory_hits,
                disk_hits=counters.disk_hits,
                seconds=counters.seconds,
            )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-stage counter dicts, keyed by stage name."""
        with self._lock:
            return {name: counters.as_dict() for name, counters in self._counters.items()}

    def totals(self) -> Dict[str, int]:
        """Aggregate hit/execution counts across every stage."""
        with self._lock:
            return {
                "executions": sum(c.executions for c in self._counters.values()),
                "hits": sum(c.hits for c in self._counters.values()),
                "disk_hits": sum(c.disk_hits for c in self._counters.values()),
            }

    def reset(self) -> None:
        """Zero every counter (used between test phases)."""
        with self._lock:
            self._counters.clear()


#: Process-global telemetry registry shared by every pipeline.
TELEMETRY = TelemetryRegistry()
