"""Stable content hashing for compiler artifacts.

Every cacheable pipeline stage derives its cache key from the *content* of
its inputs, so identical programs hash identically across processes and
interpreter runs (no ``id()``, no ``hash()`` randomisation, no pickle byte
instability).  The canonical form is a JSON document built from sorted,
explicitly ordered primitives; floats are rendered with ``repr`` so every
representable value keeps a distinct, stable spelling.

The scheme intentionally mirrors :meth:`repro.sweep.grid.SweepPoint.cache_key`
(sha256 over canonical JSON, truncated to 20 hex characters) so artifact keys
and sweep-store keys live in the same namespace style.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph
from repro.mbqc.commands import (
    CorrectionCommand,
    EntangleCommand,
    MeasureCommand,
    PrepareCommand,
    mask_bits,
)
from repro.mbqc.pattern import Pattern
from repro.partition.types import PartitionResult

__all__ = [
    "canonicalize",
    "hash_parts",
    "circuit_hash",
    "pattern_hash",
    "computation_hash",
    "partition_hash",
    "content_hash",
]

KEY_LENGTH = 20
"""Hex characters kept from the sha256 digest (matches ``SweepPoint.cache_key``)."""


def canonicalize(value: object) -> object:
    """Reduce ``value`` to a deterministic JSON-serialisable structure.

    Dicts are sorted by stringified key, sets are sorted, floats become their
    ``repr`` (exact and stable), enums collapse to their ``value``, and
    tuples/lists become lists.  Unknown objects fall back to ``repr``.
    """
    # Exact-type dispatch first: artifact hashes walk hundreds of thousands
    # of small ints/tuples, where the isinstance cascade dominated.
    kind = type(value)
    if kind is int or kind is str or kind is bool or value is None:
        return value
    if kind is float:
        return repr(value)
    if kind is list or kind is tuple:
        return [
            item if type(item) is int or type(item) is str else canonicalize(item)
            for item in value
        ]
    if isinstance(value, (bool, int, str)):  # bool/int/str subclasses, enums below
        if isinstance(value, enum.Enum):
            return canonicalize(value.value)
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(item) for item in value)  # type: ignore[type-var]
    if isinstance(value, dict):
        return {
            str(key): canonicalize(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    return repr(value)


def hash_parts(*parts: object) -> str:
    """Hash a sequence of canonicalised parts into a short stable key."""
    payload = json.dumps(
        [canonicalize(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_LENGTH]


def circuit_hash(circuit: QuantumCircuit) -> str:
    """Content hash of a gate-level circuit (register, name, gate list)."""
    gates: List[object] = [
        (gate.name, list(gate.qubits), [repr(float(p)) for p in gate.params])
        for gate in circuit.gates
    ]
    return hash_parts("circuit", circuit.num_qubits, circuit.name, gates)


def _command_canonical(command: object) -> object:
    if isinstance(command, PrepareCommand):
        return ("N", command.node)
    if isinstance(command, EntangleCommand):
        return ("E", *command.sorted_nodes())
    if isinstance(command, MeasureCommand):
        return (
            "M",
            command.node,
            repr(command.angle),
            list(mask_bits(command.s_mask)),
            list(mask_bits(command.t_mask)),
        )
    if isinstance(command, CorrectionCommand):
        return (command.pauli, command.node, list(mask_bits(command.mask)))
    raise TypeError(f"cannot hash command {command!r}")


def pattern_hash(pattern: Pattern) -> str:
    """Content hash of a measurement pattern (nodes, commands, domains)."""
    return hash_parts(
        "pattern",
        pattern.name,
        list(pattern.input_nodes),
        list(pattern.output_nodes),
        sorted(pattern.removed_nodes),
        [_command_canonical(command) for command in pattern.commands],
    )


def computation_hash(computation: ComputationGraph) -> str:
    """Content hash of a computation graph (topology, dependencies, order)."""
    dependency_edges = sorted(
        (source, target, data["kind"])
        for source, target, data in computation.dependency.graph.edges(data=True)
    )
    return hash_parts(
        "compgraph",
        computation.name,
        computation.nodes(),
        computation.edges(),
        dependency_edges,
        list(computation.order),
        list(computation.output_nodes),
        sorted(computation.removed_nodes),
    )


def partition_hash(partition: PartitionResult) -> str:
    """Content hash of a k-way partition (assignment plus part count)."""
    return hash_parts(
        "partition",
        partition.num_parts,
        sorted(partition.assignment.items()),
    )


#: Registered hashers, tried in order by :func:`content_hash`.
_HASHERS = (
    (QuantumCircuit, circuit_hash),
    (Pattern, pattern_hash),
    (ComputationGraph, computation_hash),
    (PartitionResult, partition_hash),
)


def content_hash(artifact: object) -> Optional[str]:
    """Content hash of a known artifact type, ``None`` for anything else.

    Unknown artifact types are not an error: the pipeline falls back to
    provenance keys (the producing stage's cache key) for them.
    """
    for artifact_type, hasher in _HASHERS:
        if isinstance(artifact, artifact_type):
            return hasher(artifact)
    return None
