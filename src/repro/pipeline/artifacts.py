"""On-disk content-addressed artifact cache with LRU eviction.

Stage outputs are pickled to ``<cache_dir>/<key>.pkl`` where ``key`` is the
stage's content-derived cache key (see :mod:`repro.pipeline.hashing`).  The
store is safe for concurrent writers — every ``put`` writes to a private
temp file and ``os.replace``s it into place, so sweep workers sharing one
cache directory never observe a torn artifact — and self-heals on corrupt
entries by treating them as misses and deleting the file.

The cache is bounded: once the directory exceeds
``DCMBQC_ARTIFACT_CACHE_LIMIT_MB`` (default 256 MiB) the least-recently-used
entries (by mtime, refreshed on every ``get``) are evicted, mirroring the
in-memory :class:`repro.sweep.cache.LRUCache` policy on disk.

Environment variables:

* ``DCMBQC_ARTIFACT_CACHE_DIR`` — cache directory; unset/empty disables the
  on-disk layer (the in-process memo cache still applies).
* ``DCMBQC_ARTIFACT_CACHE_LIMIT_MB`` — size bound in MiB (default 256).
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
from typing import List, Optional, Tuple, Union

__all__ = [
    "ArtifactStore",
    "resolve_store",
    "caching_disabled",
    "CACHE_DIR_ENV",
    "CACHE_LIMIT_ENV",
    "CACHE_DISABLE_ENV",
    "DEFAULT_CACHE_LIMIT_MB",
]

CACHE_DIR_ENV = "DCMBQC_ARTIFACT_CACHE_DIR"
CACHE_LIMIT_ENV = "DCMBQC_ARTIFACT_CACHE_LIMIT_MB"
CACHE_DISABLE_ENV = "DCMBQC_PIPELINE_DISABLE_CACHE"
DEFAULT_CACHE_LIMIT_MB = 256

_SUFFIX = ".pkl"


class ArtifactStore:
    """Content-addressed pickle store bounded by total size with LRU eviction."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            max_bytes = _limit_from_environment()
        if max_bytes < 1:
            raise ValueError("artifact cache size bound must be positive")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        # Scanning the directory on every put would make writes O(entries);
        # instead eviction runs once per _scan_interval bytes written by
        # this instance (short-lived instances may overshoot the bound by
        # at most one interval — it is enforced on the next scan).
        self._scan_interval = max(1, max_bytes // 16)
        self._written_since_scan = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}{_SUFFIX}"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """Keys of every stored artifact."""
        return sorted(path.stem for path in self.root.glob(f"*{_SUFFIX}"))

    def get(self, key: str) -> Optional[object]:
        """Load the artifact for ``key``; ``None`` on miss or corrupt entry."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            # Corrupt entry (interrupted writer on a non-atomic filesystem,
            # version skew): drop it and treat as a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:  # pragma: no cover - entry raced away
            pass
        self.hits += 1
        return value

    def put(self, key: str, value: object, payload: Optional[bytes] = None) -> None:
        """Store ``value`` under ``key`` atomically, then enforce the bound.

        Callers that already hold the pickled bytes (the pipeline's memo
        layer) pass them as ``payload`` to avoid serialising twice.
        """
        path = self._path(key)
        if payload is None:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            descriptor, temp_name = tempfile.mkstemp(
                dir=self.root, prefix=f".{key}-", suffix=".tmp"
            )
        except FileNotFoundError:
            # The cache directory was removed behind a long-lived instance.
            self.root.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=self.root, prefix=f".{key}-", suffix=".tmp"
            )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._written_since_scan += len(payload)
        if self._written_since_scan >= self._scan_interval:
            self._written_since_scan = 0
            self._evict()

    def _entries(self) -> List[Tuple[float, int, pathlib.Path]]:
        entries: List[Tuple[float, int, pathlib.Path]] = []
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Total size of every stored artifact."""
        return sum(size for _, size, _ in self._entries())

    def _evict(self) -> None:
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size

    def clear(self) -> None:
        """Remove every stored artifact (keeps the directory)."""
        for path in self.root.glob(f"*{_SUFFIX}"):
            path.unlink(missing_ok=True)
        self.hits = 0
        self.misses = 0


def _limit_from_environment() -> int:
    raw = os.environ.get(CACHE_LIMIT_ENV, "")
    try:
        return max(1, int(float(raw) * 1024 * 1024))
    except ValueError:
        return DEFAULT_CACHE_LIMIT_MB * 1024 * 1024


def caching_disabled() -> bool:
    """True when ``DCMBQC_PIPELINE_DISABLE_CACHE`` forces uncached compiles.

    Set by the CLI's ``--no-cache`` flag (and inherited by sweep worker
    processes) so that *every* cache layer — disk, in-process memo, and the
    task-level computation caches — is bypassed, making timing measurements
    honest.
    """
    return os.environ.get(CACHE_DISABLE_ENV, "") == "1"


#: Stores resolved from configuration, one per (directory, bound): reusing
#: the instance lets the eviction byte counter accumulate across compiles
#: (a fresh instance per compile would re-scan or never scan) and skips the
#: per-call mkdir.
_RESOLVED_STORES: dict = {}


def resolve_store(
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    enabled: bool = True,
) -> Optional[ArtifactStore]:
    """Return the artifact store implied by ``cache_dir`` or the environment.

    Returns ``None`` (no on-disk caching) when disabled or when neither
    ``cache_dir`` nor ``DCMBQC_ARTIFACT_CACHE_DIR`` names a directory.  The
    environment lookup happens per call so sweep workers and tests pick up
    changes without re-importing; resolved stores are cached per process.
    """
    if not enabled or caching_disabled():
        return None
    directory = cache_dir if cache_dir else os.environ.get(CACHE_DIR_ENV, "")
    if not directory:
        return None
    key = (str(pathlib.Path(directory)), _limit_from_environment())
    store = _RESOLVED_STORES.get(key)
    if store is None:
        store = _RESOLVED_STORES[key] = ArtifactStore(directory, max_bytes=key[1])
    return store
