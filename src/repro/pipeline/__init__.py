"""Staged compilation pipeline with a content-addressed artifact cache.

The paper's toolflow is an implicit multi-stage compiler — circuit → MBQC
pattern → computation graph → partition → mapping → scheduling.  This
subsystem makes the stages explicit and memoises their artifacts:

* :mod:`repro.pipeline.hashing` — stable ``content_hash`` keys for circuits,
  patterns, computation graphs and partitions;
* :mod:`repro.pipeline.stage` — the declarative :class:`Stage` abstraction
  (inputs/outputs, parameters, versioned cache keys);
* :mod:`repro.pipeline.pipeline` — the :class:`Pipeline` pass-manager:
  cache short-circuiting, per-run provenance manifests, telemetry;
* :mod:`repro.pipeline.artifacts` — the on-disk content-addressed
  :class:`ArtifactStore` (``DCMBQC_ARTIFACT_CACHE_DIR``, size-bounded LRU);
* :mod:`repro.pipeline.stages` — concrete stages wrapping the existing
  compiler phases, shared by OneQ, OneAdapt and DC-MBQC;
* :mod:`repro.pipeline.service` — :class:`CompileService`, a batch API that
  dedupes shared upstream prefixes and fans out over the sweep runner.

Quick start::

    from repro.pipeline import CompileService

    service = CompileService(workers=4)
    report = service.compile_batch(
        [{"program": "QFT", "num_qubits": 16, "num_qpus": qpus} for qpus in (2, 4, 8)]
    )
    print(report.summary(), report.results()[0])
"""

from repro.pipeline.artifacts import (
    CACHE_DIR_ENV,
    CACHE_DISABLE_ENV,
    CACHE_LIMIT_ENV,
    ArtifactStore,
    caching_disabled,
    resolve_store,
)
from repro.pipeline.hashing import (
    circuit_hash,
    computation_hash,
    content_hash,
    hash_parts,
    partition_hash,
    pattern_hash,
)
from repro.pipeline.pipeline import (
    Pipeline,
    PipelineRun,
    StageRecord,
    clear_memory_cache,
    memory_cache,
)
from repro.pipeline.service import BatchCompileReport, CompileService
from repro.pipeline.stage import Stage
from repro.pipeline.stages import (
    compgraph_stage,
    config_params,
    distributed_stages,
    grid_mapping_stage,
    initial_program_state,
    single_qpu_stages,
    translate_stage,
)
from repro.pipeline.telemetry import TELEMETRY, StageCounters, TelemetryRegistry

__all__ = [
    "ArtifactStore",
    "BatchCompileReport",
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "CACHE_LIMIT_ENV",
    "caching_disabled",
    "CompileService",
    "Pipeline",
    "PipelineRun",
    "Stage",
    "StageCounters",
    "StageRecord",
    "TELEMETRY",
    "TelemetryRegistry",
    "circuit_hash",
    "clear_memory_cache",
    "compgraph_stage",
    "computation_hash",
    "config_params",
    "content_hash",
    "distributed_stages",
    "grid_mapping_stage",
    "hash_parts",
    "initial_program_state",
    "memory_cache",
    "partition_hash",
    "pattern_hash",
    "resolve_store",
    "single_qpu_stages",
    "translate_stage",
]
