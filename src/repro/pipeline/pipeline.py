"""The :class:`Pipeline` pass-manager.

A pipeline composes :class:`~repro.pipeline.stage.Stage` objects into a
staged compiler run.  For every stage it:

1. derives the stage's cache key from its parameters and the content hashes
   of its inputs (initial inputs hash by content; derived artifacts of
   unknown type fall back to the provenance key of the stage that produced
   them);
2. short-circuits on a hit in the in-process memo cache or the on-disk
   :class:`~repro.pipeline.artifacts.ArtifactStore`;
3. otherwise executes the stage, records wall time, and writes the artifact
   back to both cache layers.

Every run returns a :class:`PipelineRun` carrying the final artifact state
and a provenance manifest — one :class:`StageRecord` per stage saying
whether it executed, hit a cache layer, or was satisfied by a provided
input, plus the key and timing.  Telemetry accumulates per stage name in
:data:`repro.pipeline.telemetry.TELEMETRY`.

Entry points may start mid-pipeline: a stage whose output is already
present in the initial state is recorded as ``provided`` and skipped, which
is how ``compile(pattern)`` and ``compile(computation_graph)`` reuse the
same stage list as ``compile(circuit)``.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.events import EVENTS
from repro.obs.trace import TRACER
from repro.pipeline.artifacts import ArtifactStore, caching_disabled
from repro.pipeline.hashing import content_hash
from repro.pipeline.stage import Stage
from repro.pipeline.telemetry import TELEMETRY, TelemetryRegistry
from repro.utils.errors import CompilationError

__all__ = [
    "Pipeline",
    "PipelineRun",
    "StageRecord",
    "memory_cache",
    "clear_memory_cache",
]

MEMORY_CACHE_SIZE_ENV = "DCMBQC_PIPELINE_MEMORY_CACHE_SIZE"
DEFAULT_MEMORY_CACHE_SIZE = 128

#: Artifacts whose pickled snapshot exceeds this many bytes skip the
#: in-process memo (they remain disk-cached): the memo is bounded by entry
#: count, and a handful of paper-scale DistributedCompilationResults would
#: otherwise dominate worker memory.
MEMO_MAX_ENTRY_BYTES = 8 * 1024 * 1024

_MISSING = object()

_memory_cache = None


def memory_cache():
    """The process-global stage memo cache (bounded LRU), created lazily.

    Reuses :class:`repro.sweep.cache.LRUCache`; the bound comes from
    ``DCMBQC_PIPELINE_MEMORY_CACHE_SIZE`` (default 128 artifacts).
    """
    global _memory_cache
    if _memory_cache is None:
        from repro.sweep.cache import LRUCache  # deferred: avoids import cycle

        raw = os.environ.get(MEMORY_CACHE_SIZE_ENV, "")
        try:
            size = max(1, int(raw))
        except ValueError:
            size = DEFAULT_MEMORY_CACHE_SIZE
        _memory_cache = LRUCache(maxsize=size)
    return _memory_cache


def clear_memory_cache() -> None:
    """Drop every memoised stage artifact (used between test phases)."""
    if _memory_cache is not None:
        _memory_cache.clear()


@dataclass(frozen=True)
class StageRecord:
    """Provenance of one stage within one pipeline run.

    Attributes:
        stage: Stage name.
        status: ``"executed"``, ``"memory-hit"``, ``"disk-hit"``,
            ``"provided"`` (output supplied with the initial state) or
            ``"skipped"`` (upstream of a mid-pipeline entry point).
        key: The stage's cache key (``None`` when caching did not apply).
        seconds: Wall time of a real execution (0 for hits).
        output: Name of the produced state entry.
    """

    stage: str
    status: str
    key: Optional[str]
    seconds: float
    output: str

    @property
    def is_hit(self) -> bool:
        """True when the artifact came from a cache layer."""
        return self.status in ("memory-hit", "disk-hit")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for manifests and ``--json`` output."""
        return {
            "stage": self.stage,
            "status": self.status,
            "key": self.key,
            "seconds": round(self.seconds, 6),
            "output": self.output,
        }


@dataclass
class PipelineRun:
    """Everything produced by one pipeline invocation."""

    state: Dict[str, object]
    records: List[StageRecord] = field(default_factory=list)
    final_output: Optional[str] = None

    @property
    def artifact(self) -> object:
        """The final stage's output artifact."""
        if self.final_output is None:
            raise CompilationError("pipeline produced no output")
        return self.state[self.final_output]

    @property
    def cache_hits(self) -> int:
        """Stages satisfied by a cache layer in this run."""
        return sum(1 for record in self.records if record.is_hit)

    @property
    def executions(self) -> int:
        """Stages that performed real work in this run (cache misses)."""
        return sum(1 for record in self.records if record.status == "executed")

    def manifest(self) -> Dict[str, object]:
        """Provenance manifest: per-stage status/keys/timing plus totals."""
        return {
            "stages": [record.as_dict() for record in self.records],
            "cache_hits": self.cache_hits,
            "executions": self.executions,
            "seconds": round(sum(record.seconds for record in self.records), 6),
        }


class Pipeline:
    """Compose stages with content-addressed caching and telemetry.

    Args:
        stages: The stage sequence; each stage's inputs must be produced by
            an earlier stage or provided with the initial state.
        store: Optional on-disk artifact store shared across processes.
        use_cache: Disable both cache layers (and hashing) entirely —
            used by compilation-runtime benchmarks that must measure real
            work.
        no_cache_stages: Names of stages that must always *execute* (no
            cache lookup) but still publish their artifact to the cache
            layers.  Compilation-runtime benchmarks use this to scope the
            cache bypass to the timed stage while shared upstream prefixes
            stay reusable.
        memo: In-process memo cache; defaults to the process-global LRU.
        telemetry: Counter registry; defaults to the process-global one.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        store: Optional[ArtifactStore] = None,
        use_cache: bool = True,
        no_cache_stages: Sequence[str] = (),
        memo=None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise CompilationError(f"duplicate stage names in pipeline: {names}")
        self.stages = list(stages)
        self.store = store
        self.use_cache = use_cache
        self.no_cache_stages = frozenset(no_cache_stages)
        self._memo = memo
        self.telemetry = telemetry if telemetry is not None else TELEMETRY

    @property
    def memo(self):
        if self._memo is None:
            self._memo = memory_cache()
        return self._memo

    def run(self, initial: Mapping[str, object]) -> PipelineRun:
        """Execute every stage against ``initial``, returning the run record."""
        state: Dict[str, object] = dict(initial)
        hashes: Dict[str, str] = {}
        records: List[StageRecord] = []

        # DCMBQC_PIPELINE_DISABLE_CACHE=1 (the CLI's --no-cache, inherited
        # by sweep workers) bypasses every layer, memo included.
        use_cache = self.use_cache and not caching_disabled()

        if use_cache:
            for name, value in state.items():
                value_hash = content_hash(value)
                if value_hash is not None:
                    hashes[name] = value_hash

        # Entry may be mid-pipeline (e.g. a pre-built computation graph):
        # every stage up to the last one whose output was provided is
        # skipped, so upstream stages never demand inputs the caller has
        # already surpassed.
        first_needed = 0
        for index, stage in enumerate(self.stages):
            if stage.output in state:
                first_needed = index + 1

        with TRACER.span(
            "pipeline.run", stages=len(self.stages), cached=use_cache
        ) as run_span:
            for index, stage in enumerate(self.stages):
                if stage.output in state:
                    records.append(
                        StageRecord(stage.name, "provided", None, 0.0, stage.output)
                    )
                    continue
                if index < first_needed:
                    records.append(
                        StageRecord(stage.name, "skipped", None, 0.0, stage.output)
                    )
                    continue
                missing = [name for name in stage.inputs if name not in state]
                if missing:
                    raise CompilationError(
                        f"stage {stage.name!r} is missing inputs {missing}; provide "
                        f"them in the initial state or add a producing stage"
                    )

                key: Optional[str] = None
                cacheable = (
                    use_cache
                    and stage.cacheable
                    and all(name in hashes for name in stage.inputs)
                )
                value: object = _MISSING
                status = "executed"

                if EVENTS.enabled:
                    EVENTS.emit("stage.start", stage=stage.name)
                with TRACER.span(f"stage.{stage.name}", stage=stage.name) as stage_span:
                    if cacheable:
                        key = stage.key([hashes[name] for name in stage.inputs])
                    if cacheable and stage.name not in self.no_cache_stages:
                        # The memo holds pickled snapshots: every hit thaws a
                        # private copy, so callers may mutate returned artifacts
                        # freely without corrupting the cache (same semantics as
                        # disk hits).
                        cached = self.memo.get(key, _MISSING)
                        if cached is not _MISSING:
                            value, status = pickle.loads(cached), "memory-hit"
                            self.telemetry.record_hit(stage.name, "memory")
                        elif self.store is not None:
                            loaded = self.store.get(key)
                            if loaded is not None:
                                value, status = loaded, "disk-hit"
                                payload = pickle.dumps(loaded, pickle.HIGHEST_PROTOCOL)
                                if len(payload) <= MEMO_MAX_ENTRY_BYTES:
                                    self.memo.put(key, payload)
                                self.telemetry.record_hit(stage.name, "disk")

                    if EVENTS.enabled and status in ("memory-hit", "disk-hit"):
                        EVENTS.emit(
                            "cache.hit", stage=stage.name, layer=status[:-4]
                        )

                    seconds = 0.0
                    if value is _MISSING:
                        if EVENTS.enabled and cacheable:
                            EVENTS.emit("cache.miss", stage=stage.name)
                        start = time.perf_counter()
                        try:
                            value = stage.run(state)
                        except Exception as exc:
                            if EVENTS.enabled:
                                EVENTS.error(exc, stage=stage.name)
                            raise
                        seconds = time.perf_counter() - start
                        if value is None:
                            raise CompilationError(
                                f"stage {stage.name!r} returned None"
                            )
                        self.telemetry.record_execution(stage.name, seconds)
                        if cacheable and key is not None:
                            payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
                            if len(payload) <= MEMO_MAX_ENTRY_BYTES:
                                self.memo.put(key, payload)
                            if self.store is not None:
                                self.store.put(key, value, payload=payload)
                    stage_span.set(status=status)

                if EVENTS.enabled:
                    EVENTS.emit("stage.finish", stage=stage.name, status=status)
                state[stage.output] = value
                if use_cache:
                    output_hash = content_hash(value)
                    if output_hash is None:
                        output_hash = key  # provenance key fallback
                    if output_hash is not None:
                        hashes[stage.output] = output_hash
                records.append(
                    StageRecord(stage.name, status, key, seconds, stage.output)
                )

            run_span.set(
                cache_hits=sum(1 for r in records if r.is_hit),
                executions=sum(1 for r in records if r.status == "executed"),
            )

        return PipelineRun(
            state=state,
            records=records,
            final_output=self.stages[-1].output if self.stages else None,
        )
