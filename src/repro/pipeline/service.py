"""Batch compilation service on top of the pipeline and the sweep runner.

:class:`CompileService` accepts many compile requests at once, deduplicates
the shared upstream prefixes (benchmark instances appearing in several
requests are translated to patterns and computation graphs exactly once, in
the parent process, warming the shared on-disk artifact cache), and then
fans the per-request downstream work out over the PR-1
:class:`~repro.sweep.runner.SweepRunner` — optionally against a resumable
:class:`~repro.sweep.store.ResultStore`.

Requests are :class:`~repro.sweep.grid.SweepPoint` parameter sets (the
``task`` field is forced to ``"compile"``), so a batch is just a
materialised grid and everything the sweep engine offers — process fan-out,
retries, resume, CSV export — applies to interactive batches too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.sweep.grid import SweepPoint

__all__ = ["CompileService", "BatchCompileReport"]

CompileRequestLike = Union[SweepPoint, Mapping[str, object]]


@dataclass
class BatchCompileReport:
    """Outcome of one :meth:`CompileService.compile_batch` call.

    Attributes:
        points: The normalised request points, in request order.
        records: Runner records per point (status/result/error/timing).
        unique_instances: Distinct benchmark instances across the batch.
        prewarmed: Upstream prefixes built once in the parent process.
        cache_hits / cache_misses: Pipeline-stage cache activity summed over
            the batch (as observed by the executing processes).
    """

    points: List[SweepPoint] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)
    unique_instances: int = 0
    prewarmed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def results(self, strict: bool = True) -> List[Dict[str, object]]:
        """Result rows in request order; raises on failures when strict."""
        rows: List[Dict[str, object]] = []
        for point, record in zip(self.points, self.records):
            if record.get("status") != "done":
                if strict:
                    raise RuntimeError(
                        f"batch compile of {point.label} failed: {record.get('error')}"
                    )
                continue
            rows.append(record["result"])  # type: ignore[arg-type]
        return rows

    def summary(self) -> Dict[str, int]:
        """Counter summary for logging."""
        done = sum(1 for record in self.records if record.get("status") == "done")
        return {
            "requests": len(self.points),
            "completed": done,
            "failed": len(self.points) - done,
            "unique_instances": self.unique_instances,
            "prewarmed": self.prewarmed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class CompileService:
    """Compile many programs through the shared staged pipeline.

    Args:
        workers: Process fan-out for the downstream compiles (1 = serial).
        retries: Retries per failed request.
        store: Optional :class:`~repro.sweep.store.ResultStore`; completed
            requests are skipped on resume exactly like sweep points.
        prewarm: Build each distinct upstream prefix once in the parent
            before fanning out.  With an on-disk artifact cache configured
            (``DCMBQC_ARTIFACT_CACHE_DIR``) worker processes then hit the
            shared artifacts instead of re-translating per process.
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = 0,
        store=None,
        prewarm: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.retries = retries
        self.store = store
        self.prewarm = prewarm

    @staticmethod
    def normalize(request: CompileRequestLike) -> SweepPoint:
        """Coerce a request (point or params mapping) to a ``compile`` point."""
        if isinstance(request, SweepPoint):
            point = request
        else:
            params = dict(request)
            params.setdefault("task", "compile")
            point = SweepPoint.from_params(params)
        if point.task != "compile":
            point = SweepPoint.from_params(dict(point.params(), task="compile"))
        return point

    def _prewarm_is_useful(self) -> bool:
        """Prewarming helps serial runs (in-process caches) always, but
        worker processes only see it through the on-disk artifact store."""
        if self.workers <= 1:
            return True
        from repro.pipeline.artifacts import resolve_store

        return resolve_store() is not None

    def _prewarm_prefixes(
        self, instances: Sequence[Tuple[str, int, int]]
    ) -> int:
        from repro.sweep.cache import build_computation  # deferred: import cycle

        for program, num_qubits, circuit_seed in instances:
            build_computation(program, num_qubits, circuit_seed)
        return len(instances)

    def compile_batch(
        self, requests: Sequence[CompileRequestLike]
    ) -> BatchCompileReport:
        """Compile every request, sharing upstream artifacts across the batch."""
        from repro.sweep.runner import SweepRunner  # deferred: import cycle

        points = [self.normalize(request) for request in requests]
        report = BatchCompileReport(points=points)

        seen: Dict[Tuple[str, int, int], None] = {}
        for point in points:
            seen.setdefault((point.program.upper(), point.num_qubits, point.circuit_seed), None)
        report.unique_instances = len(seen)
        if self.prewarm and points and self._prewarm_is_useful():
            report.prewarmed = self._prewarm_prefixes(list(seen))

        outcome = SweepRunner(workers=self.workers, retries=self.retries).run(
            points, store=self.store
        )

        report.records = list(outcome.records)
        # Per-record telemetry deltas summed over freshly executed points
        # (correct for serial and process-pool runs alike; resumed points
        # carry stale deltas and are excluded).
        cache = outcome.cache_summary()
        report.cache_hits = cache["hits"]
        report.cache_misses = cache["misses"]
        return report

    def compile_one(self, request: CompileRequestLike) -> Dict[str, object]:
        """Convenience wrapper: compile a single request, returning its row."""
        return self.compile_batch([request]).results()[0]
