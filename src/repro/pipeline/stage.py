"""The :class:`Stage` abstraction: one phase of the compilation pipeline.

A stage is a named, versioned pure function from declared input artifacts to
one output artifact, plus the static parameters that influence the result
(grid size, seeds, partitioning knobs, …).  The cache key of a stage
application is derived from the stage identity, its parameters and the
content hashes of its inputs — so changing any upstream parameter changes
the key of every downstream artifact, which is the invalidation rule the
whole subsystem rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.pipeline.hashing import hash_parts

__all__ = ["Stage"]


@dataclass(frozen=True)
class Stage:
    """One declarative phase of a compilation pipeline.

    Attributes:
        name: Stable stage identifier (used for telemetry and manifests).
        fn: The stage body; called as ``fn(**inputs)`` and must return the
            output artifact (never ``None``).
        inputs: Names of the state entries the stage consumes.
        output: Name of the state entry the stage produces.
        params: Static parameters that influence the output, as sorted
            ``(name, value)`` pairs; part of the cache key.
        version: Bump to invalidate previously cached artifacts after a
            semantic change to ``fn``.
        cacheable: Stages doing trivial work can opt out of caching.
    """

    name: str
    fn: Callable[..., object]
    inputs: Tuple[str, ...]
    output: str
    params: Tuple[Tuple[str, object], ...] = ()
    version: str = "1"
    cacheable: bool = True

    def __init__(
        self,
        name: str,
        fn: Callable[..., object],
        inputs: Sequence[str],
        output: str,
        params: Optional[Mapping[str, object]] = None,
        version: str = "1",
        cacheable: bool = True,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "output", output)
        object.__setattr__(self, "params", tuple(sorted((params or {}).items())))
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "cacheable", cacheable)

    def key(self, input_hashes: Sequence[str]) -> str:
        """Cache key of one application of this stage to hashed inputs."""
        return hash_parts(
            "stage",
            self.name,
            self.version,
            list(self.params),
            list(input_hashes),
        )

    def run(self, state: Mapping[str, object]) -> object:
        """Execute the stage body against ``state``."""
        return self.fn(**{name: state[name] for name in self.inputs})
