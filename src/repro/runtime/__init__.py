"""Distributed-execution runtime simulation.

The compiler stack produces a distributed schedule; this package *runs* it in
a discrete-event fashion: cycle by cycle it checks machine exclusivity and
connection capacity, tracks how long every photon sits in a delay line, and
(optionally) samples photon loss and fusion failures from the hardware
models.  It is the executable ground truth used by the integration tests to
confirm that schedules produced by the compiler are actually realisable and
that the reported required photon lifetime matches the longest observed
storage time.

:mod:`repro.runtime.faults` extends the replay into a degradation
benchmark: seeded QPU/link deaths, capacity brownouts and per-photon loss,
with pluggable recovery policies and independent degraded-system
verification.
"""

from repro.runtime.executor import (
    DistributedRuntime,
    ExecutionTrace,
    PhotonStorageRecord,
    ReplayCheckpoint,
)
from repro.runtime.faults import (
    RECOVERY_POLICIES,
    FaultInjectionError,
    FaultInjector,
    FaultReport,
    FaultSpec,
    parse_fault,
    run_fault_scenario,
)
from repro.runtime.reliability import (
    ReliabilityEstimate,
    estimate_program_reliability,
    reliability_from_trace,
)

__all__ = [
    "DistributedRuntime",
    "ExecutionTrace",
    "PhotonStorageRecord",
    "ReplayCheckpoint",
    "ReliabilityEstimate",
    "estimate_program_reliability",
    "reliability_from_trace",
    "RECOVERY_POLICIES",
    "FaultInjectionError",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "parse_fault",
    "run_fault_scenario",
]
