"""Distributed-execution runtime simulation.

The compiler stack produces a distributed schedule; this package *runs* it in
a discrete-event fashion: cycle by cycle it checks machine exclusivity and
connection capacity, tracks how long every photon sits in a delay line, and
(optionally) samples photon loss and fusion failures from the hardware
models.  It is the executable ground truth used by the integration tests to
confirm that schedules produced by the compiler are actually realisable and
that the reported required photon lifetime matches the longest observed
storage time.
"""

from repro.runtime.executor import (
    DistributedRuntime,
    ExecutionTrace,
    PhotonStorageRecord,
)
from repro.runtime.reliability import ReliabilityEstimate, estimate_program_reliability

__all__ = [
    "DistributedRuntime",
    "ExecutionTrace",
    "PhotonStorageRecord",
    "ReliabilityEstimate",
    "estimate_program_reliability",
]
