"""Seeded fault injection and recovery policies for the runtime.

The healthy replay (:mod:`repro.runtime.executor`) shows what a compiled
program *should* do; this module measures what happens when the system
degrades mid-execution.  Four fault kinds perturb a replay at a chosen
cycle:

* ``qpu-death`` — a QPU goes dark: its unexecuted main tasks and every
  synchronisation window touching it are void from the fault cycle on,
* ``link-death`` — one heralded-entanglement link stops producing pairs,
* ``qpu-brownout`` / ``link-brownout`` — ``K_max`` or a link capacity is
  temporarily reduced for a window of cycles; synchronisations overflowing
  the reduced capacity are evicted deterministically (lowest ids keep
  their slots),
* ``photon-loss`` — each photon is lost independently with the probability
  its observed storage time implies under a
  :class:`~repro.hardware.loss.DelayLineModel`, drawn from a seeded RNG.

Four recovery policies then try to save the run:

* ``fail-fast`` — the accounting baseline: any affected work fails the shot,
* ``reroute`` — shift affected relayed syncs onto
  :meth:`~repro.hardware.system.SystemModel.alternate_routes` around the
  dead element (or past a brownout window), re-deriving hop windows,
* ``reschedule-frontier`` — list-schedule the whole not-yet-executed task
  frontier against the degraded system
  (:func:`~repro.scheduling.frontier.reschedule_frontier`),
* ``abort-recompile`` — recompile the program on the surviving fleet
  through the existing pipeline (warm artifact cache) and restart.

Every recovered plan is cross-checked by
:meth:`~repro.runtime.executor.DistributedRuntime.verify_degraded`, an
independent first-principles re-derivation — a policy never grades its own
homework.  Everything is deterministic given ``(seed, shot)``; the healthy
replay path is untouched when no fault is injected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import DistributedCompilationResult
from repro.hardware.loss import DelayLineModel
from repro.obs.events import EVENTS
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.runtime.executor import DistributedRuntime, ExecutionTrace
from repro.scheduling.frontier import reschedule_frontier
from repro.scheduling.problem import Schedule, SyncTask, TaskKey
from repro.utils.errors import ReproError, SchedulingError, ValidationError
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "FaultInjectionError",
    "FaultSpec",
    "FaultReport",
    "FaultInjector",
    "RECOVERY_POLICIES",
    "parse_fault",
    "run_fault_scenario",
]

RECOVERY_POLICIES = ("fail-fast", "reroute", "reschedule-frontier", "abort-recompile")
"""Recognised recovery policy names, in accounting order."""

_MAX_RECOMPILE_RETRIES = 3
"""Full restarts ``abort-recompile`` attempts against photon loss."""


class FaultInjectionError(ReproError):
    """A fault specification is malformed or cannot be applied."""


_FAULT_RE = re.compile(
    r"(?P<element>qpu|link):(?P<target>\d+(?:-\d+)?)"
    r"@(?P<time>\d+%?)"
    r"(?:\+(?P<duration>\d+):cap=(?P<capacity>\d+))?"
)


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault, independent of any particular schedule.

    Times are resolved lazily against a makespan so one spec (e.g.
    ``qpu:0@25%``) applies across a whole sweep of differently-sized
    programs.

    Attributes:
        kind: ``"qpu-death"``, ``"link-death"``, ``"qpu-brownout"``,
            ``"link-brownout"`` or ``"photon-loss"``.
        qpu: Target QPU for the qpu kinds.
        link: Normalised ``(min, max)`` target link for the link kinds.
        at_cycle: Absolute fault cycle, if given as an integer.
        at_fraction: Fault time as a fraction of the makespan, if given
            as ``NN%``.
        duration: Brownout window length in cycles.
        capacity: Reduced capacity during a brownout window.
        cycle_time_ns: Delay-line cycle time for ``photon-loss``.
    """

    kind: str
    qpu: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    at_cycle: Optional[int] = None
    at_fraction: Optional[float] = None
    duration: Optional[int] = None
    capacity: Optional[int] = None
    cycle_time_ns: Optional[float] = None

    def resolve_cycle(self, makespan: int) -> int:
        """The concrete fault cycle for a program of the given makespan."""
        if self.at_fraction is not None:
            return max(0, int(makespan * self.at_fraction))
        return self.at_cycle or 0

    def describe(self) -> str:
        """Canonical spec string (round-trips through :func:`parse_fault`)."""
        if self.kind == "photon-loss":
            return f"loss:{self.cycle_time_ns:g}ns"
        if self.at_fraction is not None:
            time = f"{round(self.at_fraction * 100):d}%"
        else:
            time = str(self.at_cycle)
        if self.kind.startswith("qpu"):
            head = f"qpu:{self.qpu}@{time}"
        else:
            head = f"link:{self.link[0]}-{self.link[1]}@{time}"
        if self.kind.endswith("brownout"):
            head += f"+{self.duration}:cap={self.capacity}"
        return head


def parse_fault(text: str) -> FaultSpec:
    """Parse one fault spec string.

    Grammar::

        qpu:<id>@<time>                      QPU death at <time>
        link:<a>-<b>@<time>                  link death at <time>
        qpu:<id>@<time>+<dur>:cap=<c>        K_max brownout for <dur> cycles
        link:<a>-<b>@<time>+<dur>:cap=<c>    link-capacity brownout
        loss:<cycle_time>ns                  seeded per-photon loss at that
                                             delay-line cycle time

    ``<time>`` is an absolute cycle or ``NN%`` of the makespan.

    Raises:
        FaultInjectionError: on any malformed spec.
    """
    text = text.strip()
    if text.startswith("loss:"):
        value = text[len("loss:") :]
        if not value.endswith("ns"):
            raise FaultInjectionError(
                f"photon-loss spec {text!r} must give a cycle time in ns, "
                f"e.g. loss:100ns"
            )
        try:
            cycle_time = float(value[:-2])
        except ValueError as exc:
            raise FaultInjectionError(f"bad cycle time in {text!r}") from exc
        if cycle_time <= 0:
            raise FaultInjectionError("photon-loss cycle time must be positive")
        return FaultSpec(kind="photon-loss", cycle_time_ns=cycle_time)

    match = _FAULT_RE.fullmatch(text)
    if match is None:
        raise FaultInjectionError(
            f"unrecognised fault spec {text!r}; expected qpu:<id>@<time>, "
            f"link:<a>-<b>@<time>, an optional +<dur>:cap=<c> brownout "
            f"suffix, or loss:<ns>ns"
        )
    element = match.group("element")
    target = match.group("target")
    if element == "qpu" and "-" in target:
        raise FaultInjectionError(f"qpu fault {text!r} must name a single QPU")
    if element == "link" and "-" not in target:
        raise FaultInjectionError(f"link fault {text!r} must name a QPU pair a-b")

    time = match.group("time")
    at_cycle: Optional[int] = None
    at_fraction: Optional[float] = None
    if time.endswith("%"):
        at_fraction = int(time[:-1]) / 100.0
    else:
        at_cycle = int(time)

    duration = match.group("duration")
    capacity = match.group("capacity")
    brownout = duration is not None
    if brownout and int(duration) < 1:
        raise FaultInjectionError("brownout duration must be at least 1 cycle")
    if brownout and int(capacity) < 1:
        raise FaultInjectionError(
            "brownout capacity must be at least 1 (use a death fault for 0)"
        )

    if element == "qpu":
        kind = "qpu-brownout" if brownout else "qpu-death"
        return FaultSpec(
            kind=kind,
            qpu=int(target),
            at_cycle=at_cycle,
            at_fraction=at_fraction,
            duration=int(duration) if brownout else None,
            capacity=int(capacity) if brownout else None,
        )
    a, b = (int(v) for v in target.split("-"))
    if a == b:
        raise FaultInjectionError("a link fault must join two distinct QPUs")
    kind = "link-brownout" if brownout else "link-death"
    return FaultSpec(
        kind=kind,
        link=(min(a, b), max(a, b)),
        at_cycle=at_cycle,
        at_fraction=at_fraction,
        duration=int(duration) if brownout else None,
        capacity=int(capacity) if brownout else None,
    )


@dataclass(frozen=True)
class FaultReport:
    """Outcome of injecting one fault under one policy for one shot.

    ``failed`` and ``recovered`` are mutually exclusive; both are False
    when the fault touched nothing (e.g. it struck after every affected
    window had executed).
    """

    fault: str
    policy: str
    shot: int
    fault_cycle: int
    affected_mains: Tuple[TaskKey, ...]
    affected_syncs: Tuple[int, ...]
    lost_photons: Tuple[int, ...]
    failed: bool
    recovered: bool
    overhead_cycles: int
    detail: str = ""


class FaultInjector:
    """Inject seeded faults into one compiled program's replay.

    The injector never mutates the compilation result: route overrides are
    applied to local copies of the sync tasks and repaired schedules are
    fresh :class:`~repro.scheduling.problem.Schedule` objects, so the same
    result replays byte-identically before and after any number of
    injections.
    """

    def __init__(
        self,
        result: DistributedCompilationResult,
        seed: int = 0,
        trace: Optional[ExecutionTrace] = None,
    ) -> None:
        self.result = result
        self.seed = seed
        self.runtime = DistributedRuntime(result)
        self._trace = trace
        self._makespan = result.problem.makespan_of(result.schedule)
        self._sync_by_id = {s.sync_id: s for s in result.problem.sync_tasks}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def inject(self, fault: FaultSpec, policy: str, shot: int = 0) -> FaultReport:
        """Apply one fault and one recovery policy; return the outcome."""
        if policy not in RECOVERY_POLICIES:
            raise FaultInjectionError(
                f"unknown recovery policy {policy!r}; expected one of "
                f"{RECOVERY_POLICIES}"
            )
        fault_cycle = fault.resolve_cycle(self._makespan)
        with TRACER.span(
            "runtime.fault_injection",
            fault=fault.describe(),
            policy=policy,
            cycle=fault_cycle,
            shot=shot,
        ) as span:
            METRICS.inc("runtime.faults_injected", kind=fault.kind)
            if EVENTS.enabled:
                EVENTS.emit(
                    "runtime.fault",
                    fault=fault.describe(),
                    kind=fault.kind,
                    policy=policy,
                    cycle=fault_cycle,
                    shot=shot,
                )
            report = self._inject(fault, policy, shot, fault_cycle)
            span.set(
                failed=report.failed,
                recovered=report.recovered,
                overhead_cycles=report.overhead_cycles,
            )
        if report.recovered:
            METRICS.inc("runtime.recoveries", policy=policy)
        if EVENTS.enabled:
            EVENTS.emit(
                "runtime.recovery",
                fault=report.fault,
                policy=policy,
                shot=shot,
                failed=report.failed,
                recovered=report.recovered,
                overhead_cycles=report.overhead_cycles,
                detail=report.detail,
            )
        return report

    def _inject(
        self, fault: FaultSpec, policy: str, shot: int, fault_cycle: int
    ) -> FaultReport:
        affected_mains, affected_syncs = self._impact(fault, fault_cycle)
        lost = self._draw_losses(fault, self.seed, shot)
        touched = bool(affected_mains or affected_syncs or lost)

        def report(failed: bool, recovered: bool, overhead: int, detail: str):
            return FaultReport(
                fault=fault.describe(),
                policy=policy,
                shot=shot,
                fault_cycle=fault_cycle,
                affected_mains=tuple(affected_mains),
                affected_syncs=tuple(affected_syncs),
                lost_photons=tuple(lost),
                failed=failed,
                recovered=recovered,
                overhead_cycles=overhead,
                detail=detail,
            )

        if not touched:
            return report(False, False, 0, "fault window touched no work")
        if policy == "fail-fast":
            return report(True, False, 0, "fail-fast accepts no degradation")
        if fault.kind == "photon-loss" and policy != "abort-recompile":
            return report(
                True, False, 0, f"{policy} cannot restore lost photons"
            )
        if policy == "abort-recompile":
            return self._abort_recompile(fault, shot, fault_cycle, report)
        if affected_mains:
            # Both re-planning policies keep the partition, so main tasks
            # voided by a dead QPU have nowhere to go.
            return report(
                True, False, 0,
                f"{len(affected_mains)} main task(s) stranded on dead QPU "
                f"{fault.qpu}",
            )
        with TRACER.span("runtime.recovery", policy=policy) as span:
            if policy == "reroute":
                outcome = self._reroute(fault, fault_cycle, affected_syncs, report)
            else:
                outcome = self._reschedule_frontier(
                    fault, fault_cycle, affected_syncs, report
                )
            span.set(recovered=outcome.recovered)
        return outcome

    # ------------------------------------------------------------------ #
    # Fault impact
    # ------------------------------------------------------------------ #

    def _impact(
        self, fault: FaultSpec, fault_cycle: int
    ) -> Tuple[List[TaskKey], List[int]]:
        """Deterministic set of main-task keys and sync ids the fault voids."""
        if fault.kind == "photon-loss":
            return [], []
        problem = self.result.problem
        schedule = self.result.schedule
        qpu_slots, link_slots, buffer_slots = self.runtime.sync_occupancy()

        affected_mains: List[TaskKey] = []
        hit: set = set()
        if fault.kind == "qpu-death":
            for task in problem.all_main_tasks():
                if task.qpu == fault.qpu and schedule.start_of(task.key) >= fault_cycle:
                    affected_mains.append(task.key)
            for slots in (qpu_slots, buffer_slots):
                for (qpu, cycle), holders in slots.items():
                    if qpu == fault.qpu and cycle >= fault_cycle:
                        hit.update(holders)
        elif fault.kind == "link-death":
            for (link, cycle), holders in link_slots.items():
                if link == fault.link and cycle >= fault_cycle:
                    hit.update(holders)
        elif fault.kind == "qpu-brownout":
            window = range(fault_cycle, fault_cycle + fault.duration)
            for slots in (qpu_slots, buffer_slots):
                for (qpu, cycle), holders in slots.items():
                    if qpu == fault.qpu and cycle in window:
                        hit.update(sorted(set(holders))[fault.capacity :])
        elif fault.kind == "link-brownout":
            window = range(fault_cycle, fault_cycle + fault.duration)
            for (link, cycle), holders in link_slots.items():
                if link == fault.link and cycle in window:
                    hit.update(sorted(set(holders))[fault.capacity :])
        else:  # pragma: no cover - parse_fault rejects unknown kinds
            raise FaultInjectionError(f"unknown fault kind {fault.kind!r}")
        return sorted(affected_mains), sorted(hit)

    def _draw_losses(self, fault: FaultSpec, seed: int, shot: int) -> List[int]:
        """Seeded per-photon loss draw from the trace's storage exposure."""
        if fault.kind != "photon-loss":
            return []
        exposure = self.trace().loss_exposure(
            DelayLineModel(cycle_time_ns=fault.cycle_time_ns)
        )
        lost: List[int] = []
        for node in sorted(exposure):
            rng = make_rng(derive_seed(seed, "photon-loss", shot, node))
            if rng.random() < exposure[node]:
                lost.append(node)
        return lost

    def trace(self) -> ExecutionTrace:
        """The healthy replay trace (computed once, lazily)."""
        if self._trace is None:
            self._trace = self.runtime.run()
        return self._trace

    # ------------------------------------------------------------------ #
    # Degraded-system plumbing shared by the re-planning policies
    # ------------------------------------------------------------------ #

    def _degraded_sets(self, fault: FaultSpec):
        dead_qpus = frozenset({fault.qpu}) if fault.kind == "qpu-death" else frozenset()
        dead_links = (
            frozenset({fault.link}) if fault.kind == "link-death" else frozenset()
        )
        return dead_qpus, dead_links

    def _capacity_callables(self, fault: FaultSpec, fault_cycle: int):
        """Per-cycle capacity callables modelling a brownout window."""
        problem = self.result.problem
        if fault.kind == "qpu-brownout":
            end = fault_cycle + fault.duration

            def qpu_capacity(qpu: int, cycle: int) -> int:
                if qpu == fault.qpu and fault_cycle <= cycle < end:
                    return min(fault.capacity, problem.capacity_of(qpu))
                return problem.capacity_of(qpu)

            def buffer_capacity(qpu: int, cycle: int) -> int:
                if qpu == fault.qpu and fault_cycle <= cycle < end:
                    return min(fault.capacity, problem.buffer_limit_of(qpu))
                return problem.buffer_limit_of(qpu)

            return qpu_capacity, None, buffer_capacity
        if fault.kind == "link-brownout":
            end = fault_cycle + fault.duration

            def link_capacity(link: Tuple[int, int], cycle: int) -> int:
                if link == fault.link and fault_cycle <= cycle < end:
                    return min(fault.capacity, problem.link_capacity_of(link))
                return problem.link_capacity_of(link)

            return None, link_capacity, None
        return None, None, None

    def _detour_routes(
        self, fault: FaultSpec, affected_syncs: Sequence[int]
    ) -> Tuple[Optional[Dict[int, Tuple[int, ...]]], str]:
        """Detour routes around a dead element; ``(None, reason)`` if stuck."""
        if fault.kind not in ("qpu-death", "link-death"):
            return {}, ""  # brownouts keep their routes and shift in time
        system = self.result.config.system_model()
        dead_qpus, dead_links = self._degraded_sets(fault)
        if fault.kind == "qpu-death":
            degraded = system.without_qpu(fault.qpu)
        else:
            degraded = system.without_link(*fault.link)
        routes: Dict[int, Tuple[int, ...]] = {}
        for sync_id in affected_syncs:
            sync = self._sync_by_id[sync_id]
            if fault.kind == "qpu-death" and fault.qpu in (sync.qpu_a, sync.qpu_b):
                return None, (
                    f"sync {sync_id} terminates on dead QPU {fault.qpu}; no "
                    f"detour exists"
                )
            chosen: Optional[Tuple[int, ...]] = None
            for candidate in system.alternate_routes(sync.qpu_a, sync.qpu_b):
                if any(qpu in dead_qpus for qpu in candidate):
                    continue
                crossed = {
                    (min(a, b), max(a, b)) for a, b in zip(candidate, candidate[1:])
                }
                if crossed & dead_links:
                    continue
                chosen = candidate
                break
            if chosen is None:
                try:
                    chosen = degraded.route(sync.qpu_a, sync.qpu_b)
                except ValidationError:
                    return None, (
                        f"QPUs {sync.qpu_a} and {sync.qpu_b} are disconnected "
                        f"on the degraded system"
                    )
            routes[sync_id] = chosen
        return routes, ""

    def _effective_syncs(
        self, routes: Dict[int, Tuple[int, ...]]
    ) -> List[SyncTask]:
        return [
            replace(sync, route=tuple(routes[sync.sync_id]))
            if sync.sync_id in routes
            else sync
            for sync in self.result.problem.sync_tasks
        ]

    def _completion_makespan(
        self, schedule: Schedule, syncs: Sequence[SyncTask]
    ) -> int:
        best = max(schedule.start_times.values()) + 1 if schedule.start_times else 0
        for sync in syncs:
            if sync.relay_hops:
                best = max(best, schedule.start_of(sync.key) + sync.duration)
        return best

    def _repair(
        self,
        fault: FaultSpec,
        fault_cycle: int,
        pending: Sequence[TaskKey],
        routes: Dict[int, Tuple[int, ...]],
        report,
        label: str,
    ) -> FaultReport:
        """Run the frontier scheduler and independently verify its output."""
        dead_qpus, dead_links = self._degraded_sets(fault)
        qpu_cap, link_cap, buffer_cap = self._capacity_callables(fault, fault_cycle)
        try:
            repaired = reschedule_frontier(
                self.result.problem,
                self.result.schedule,
                fault_cycle,
                pending=pending,
                routes=routes,
                dead_qpus=dead_qpus,
                dead_links=dead_links,
                qpu_capacity=qpu_cap,
                link_capacity=link_cap,
                buffer_capacity=buffer_cap,
            )
        except SchedulingError as exc:
            return report(True, False, 0, f"{label}: {exc}")
        effective = self._effective_syncs(routes)
        # Independent cross-check: first-principles window re-derivation in
        # the executor, against the same degraded constraints.
        self.runtime.verify_degraded(
            repaired,
            effective,
            fault_cycle=fault_cycle,
            dead_qpus=dead_qpus,
            dead_links=dead_links,
            qpu_capacity=qpu_cap,
            link_capacity=link_cap,
            buffer_capacity=buffer_cap,
        )
        overhead = max(
            0, self._completion_makespan(repaired, effective) - self._makespan
        )
        return report(False, True, overhead, f"{label}: verified degraded replay")

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #

    def _reroute(
        self,
        fault: FaultSpec,
        fault_cycle: int,
        affected_syncs: Sequence[int],
        report,
    ) -> FaultReport:
        routes, reason = self._detour_routes(fault, affected_syncs)
        if routes is None:
            return report(True, False, 0, f"reroute: {reason}")
        pending = [self._sync_by_id[sync_id].key for sync_id in affected_syncs]
        return self._repair(fault, fault_cycle, pending, routes, report, "reroute")

    def _reschedule_frontier(
        self,
        fault: FaultSpec,
        fault_cycle: int,
        affected_syncs: Sequence[int],
        report,
    ) -> FaultReport:
        checkpoint = self.runtime.checkpoint(fault_cycle)
        undelivered = sorted(
            set(checkpoint.pending_syncs)
            | set(checkpoint.in_flight_syncs)
            | set(affected_syncs)
        )
        # Only syncs crossing the dead element need a detour; the rest of
        # the frontier keeps its compiled route.
        routes, reason = self._detour_routes(
            fault,
            [
                sync_id
                for sync_id in undelivered
                if self._crosses_dead(fault, self._sync_by_id[sync_id])
            ],
        )
        if routes is None:
            return report(True, False, 0, f"reschedule-frontier: {reason}")
        pending = list(checkpoint.pending_mains) + [
            self._sync_by_id[sync_id].key for sync_id in undelivered
        ]
        return self._repair(
            fault, fault_cycle, pending, routes, report, "reschedule-frontier"
        )

    def _crosses_dead(self, fault: FaultSpec, sync: SyncTask) -> bool:
        if fault.kind == "qpu-death":
            return fault.qpu in sync.route_qpus
        if fault.kind == "link-death":
            return fault.link in sync.links
        return False

    def _abort_recompile(
        self, fault: FaultSpec, shot: int, fault_cycle: int, report
    ) -> FaultReport:
        with TRACER.span("runtime.recovery", policy="abort-recompile") as span:
            outcome = self._abort_recompile_inner(fault, shot, fault_cycle, report)
            span.set(recovered=outcome.recovered)
        return outcome

    def _abort_recompile_inner(
        self, fault: FaultSpec, shot: int, fault_cycle: int, report
    ) -> FaultReport:
        if fault.kind == "photon-loss":
            # Restart the whole program with fresh photons; each retry is a
            # fresh seeded draw, so recovery is deterministic per (seed, shot).
            for attempt in range(1, _MAX_RECOMPILE_RETRIES + 1):
                redraw = self._draw_losses(
                    fault, derive_seed(self.seed, "retry", attempt), shot
                )
                if not redraw:
                    return report(
                        False,
                        True,
                        attempt * self._makespan,
                        f"abort-recompile: clean re-run on attempt {attempt}",
                    )
            return report(
                True,
                False,
                0,
                f"abort-recompile: photons lost on every one of "
                f"{_MAX_RECOMPILE_RETRIES} retries",
            )
        if fault.kind in ("qpu-brownout", "link-brownout"):
            # Transient degradation: wait out the window, then restart the
            # unchanged program on the recovered fleet.
            overhead = fault_cycle + fault.duration
            return report(
                False, True, overhead, "abort-recompile: restarted after brownout"
            )
        try:
            new_config = self._surviving_config(fault)
            new_config.system_model().validate_connected()
            from repro.core.compiler import DCMBQCCompiler

            new_result = DCMBQCCompiler(new_config).compile(self.result.computation)
        except ReproError as exc:
            return report(True, False, 0, f"abort-recompile: {exc}")
        new_makespan = new_result.problem.makespan_of(new_result.schedule)
        overhead = max(0, fault_cycle + new_makespan - self._makespan)
        return report(
            False,
            True,
            overhead,
            f"abort-recompile: surviving fleet makespan {new_makespan}",
        )

    def _surviving_config(self, fault: FaultSpec):
        """The compilation config for the fleet that survives a death fault."""
        from repro.hardware.qpu import InterconnectTopology

        config = self.result.config
        system = config.system_model()
        if fault.kind == "link-death":
            links = tuple(
                (link.qpu_a, link.qpu_b, link.capacity)
                for link in system.links
                if link.key != fault.link
            )
            return config.with_updates(
                topology=InterconnectTopology.CUSTOM, custom_links=links
            )
        survivors = [qpu for qpu in range(config.num_qpus) if qpu != fault.qpu]
        remap = {old: new for new, old in enumerate(survivors)}

        def filtered(values):
            if values is None:
                return None
            return tuple(values[old] for old in survivors)

        updates = dict(
            num_qpus=len(survivors),
            qpu_grid_sizes=filtered(config.qpu_grid_sizes),
            qpu_rsg_types=filtered(config.qpu_rsg_types),
            qpu_connection_capacities=filtered(config.qpu_connection_capacities),
        )
        if len(survivors) == 1:
            updates["topology"] = InterconnectTopology.FULLY_CONNECTED
            updates["custom_links"] = None
        else:
            updates["topology"] = InterconnectTopology.CUSTOM
            updates["custom_links"] = tuple(
                (remap[link.qpu_a], remap[link.qpu_b], link.capacity)
                for link in system.links
                if fault.qpu not in link.key
            )
        return config.with_updates(**updates)


def run_fault_scenario(
    result: DistributedCompilationResult,
    fault: FaultSpec,
    policy: str,
    seed: int = 0,
    shots: int = 1,
    trace: Optional[ExecutionTrace] = None,
) -> Dict[str, object]:
    """Run one fault × policy scenario for ``shots`` seeded shots.

    Returns a flat row of accounting columns (sweep- and CSV-friendly):
    ``failure_rate``, ``recovered_rate``, ``recovery_overhead_cycles``
    (mean over recovered shots), plus the resolved fault context.
    """
    if shots < 1:
        raise FaultInjectionError("shots must be at least 1")
    injector = FaultInjector(result, seed=seed, trace=trace)
    reports = [injector.inject(fault, policy, shot=shot) for shot in range(shots)]
    failed = sum(1 for r in reports if r.failed)
    recovered = [r for r in reports if r.recovered]
    overhead = (
        sum(r.overhead_cycles for r in recovered) / len(recovered)
        if recovered
        else 0.0
    )
    return {
        "fault": fault.describe(),
        "fault_kind": fault.kind,
        "policy": policy,
        "fault_cycle": reports[0].fault_cycle,
        "shots": shots,
        "affected_mains": len(reports[0].affected_mains),
        "affected_syncs": len(reports[0].affected_syncs),
        "lost_photons": round(
            sum(len(r.lost_photons) for r in reports) / shots, 6
        ),
        "failure_rate": round(failed / shots, 6),
        "recovered_rate": round(len(recovered) / shots, 6),
        "recovery_overhead_cycles": round(overhead, 6),
    }
