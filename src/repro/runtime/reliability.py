"""Program-level reliability estimation.

Combines the delay-line loss model (Figure 1) with the fusion failure model
to estimate the probability that a compiled program runs without losing any
photon whose storage matters.  This is the quantitative backing for the
paper's argument that reducing the required photon lifetime is what keeps
large MBQC programs feasible at realistic (10-100 ns) clock rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.compiler import DistributedCompilationResult
from repro.hardware.fusion import FusionModel
from repro.hardware.loss import DelayLineModel
from repro.runtime.executor import DistributedRuntime, ExecutionTrace

__all__ = [
    "ReliabilityEstimate",
    "estimate_program_reliability",
    "reliability_from_trace",
]


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Estimated reliability of one compiled program on given hardware.

    Attributes:
        max_storage_cycles: Longest photon storage observed in the schedule.
        worst_photon_loss: Loss probability of the worst-stored photon.
        expected_photon_losses: Sum of per-photon loss probabilities (the
            expected number of lost photons per shot).
        survival_probability: Probability that no tracked photon is lost.
        fusion_success_probability: Per-fusion success probability of the
            hardware model (context, not schedule-dependent).
    """

    max_storage_cycles: int
    worst_photon_loss: float
    expected_photon_losses: float
    survival_probability: float
    fusion_success_probability: float


def reliability_from_trace(
    trace: ExecutionTrace,
    delay_line: Optional[DelayLineModel] = None,
    fusion: Optional[FusionModel] = None,
) -> ReliabilityEstimate:
    """Derive the reliability estimate from an already-computed trace.

    Both the loss exposure and the storage maximum come from the same
    :class:`~repro.runtime.executor.ExecutionTrace`, so callers that
    already replayed the schedule (sweeps, fault scenarios) pay no extra
    replay.
    """
    delay_line = delay_line or DelayLineModel()
    fusion = fusion or FusionModel()

    exposure: Dict[int, float] = trace.loss_exposure(delay_line)
    if exposure:
        worst = max(exposure.values())
        expected = sum(exposure.values())
        survival = math.prod(1.0 - p for p in exposure.values())
    else:
        worst, expected, survival = 0.0, 0.0, 1.0

    return ReliabilityEstimate(
        max_storage_cycles=trace.max_storage,
        worst_photon_loss=worst,
        expected_photon_losses=expected,
        survival_probability=survival,
        fusion_success_probability=fusion.success_probability,
    )


def estimate_program_reliability(
    result: DistributedCompilationResult,
    delay_line: Optional[DelayLineModel] = None,
    fusion: Optional[FusionModel] = None,
) -> ReliabilityEstimate:
    """Estimate the loss exposure of a compiled program.

    Replays the schedule exactly once and derives every figure from that
    single :class:`~repro.runtime.executor.ExecutionTrace`.

    Args:
        result: A distributed compilation result.
        delay_line: Delay-line model (clock rate, attenuation); defaults to
            the paper's 1 ns/cycle, 0.2 dB/km setting.
        fusion: Fusion model; defaults to the 29% failure rate cited by the
            paper.
    """
    trace = DistributedRuntime(result).run()
    return reliability_from_trace(trace, delay_line, fusion)
