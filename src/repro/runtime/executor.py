"""Cycle-accurate execution of a distributed schedule.

The runtime replays a :class:`~repro.core.compiler.DistributedCompilationResult`
on the multi-QPU system it was compiled for:

* every main task occupies its QPU for one cycle and generates its photons,
* every synchronisation task occupies a communication slot on both of its
  QPUs for one cycle (at most ``K_max`` per QPU per cycle); a relayed sync
  additionally walks its route hop by hop under the configured relay model
  (pipelined store-and-forward windows, or the whole route at once under
  the atomic ablation model),
* every photon's storage interval is tracked: a fusee waits from its
  generation cycle until the cycle its partner is generated, a measuree
  additionally waits for the classical outcomes it depends on, and a
  connector waits for its synchronisation task.

The maximum observed storage duration must equal the required photon
lifetime reported by the compiler — that cross-check is the core integration
test of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.compiler import DistributedCompilationResult
from repro.hardware.loss import DelayLineModel
from repro.obs.events import EVENTS
from repro.obs.metrics import METRICS
from repro.obs.trace import TRACER
from repro.utils.errors import ValidationError

__all__ = [
    "PhotonStorageRecord",
    "ExecutionTrace",
    "ReplayCheckpoint",
    "DistributedRuntime",
]


@dataclass(frozen=True)
class PhotonStorageRecord:
    """How long one photon had to be stored and why.

    Attributes:
        node: Photon (computation-graph node) identifier.
        generated_at: Cycle in which the photon was generated.
        released_at: Cycle in which its last obligation (fusion partner,
            measurement signal, or connector synchronisation) was satisfied.
        reason: ``"fusee"``, ``"measuree"`` or ``"connector"`` — the
            obligation that determined the release time.
    """

    node: int
    generated_at: int
    released_at: int
    reason: str

    @property
    def storage_cycles(self) -> int:
        """Number of cycles spent in the delay line."""
        return max(0, self.released_at - self.generated_at)


@dataclass
class ExecutionTrace:
    """Result of replaying a distributed schedule."""

    total_cycles: int
    storage_records: List[PhotonStorageRecord] = field(default_factory=list)
    qpu_busy_cycles: Dict[int, int] = field(default_factory=dict)
    sync_events: int = 0

    @property
    def max_storage(self) -> int:
        """Longest observed photon storage duration."""
        if not self.storage_records:
            return 0
        return max(record.storage_cycles for record in self.storage_records)

    def worst_photons(self, count: int = 5) -> List[PhotonStorageRecord]:
        """The ``count`` photons with the longest storage times.

        Ties on storage time are broken by node id so the ranking is
        deterministic regardless of record insertion order.
        """
        return sorted(
            self.storage_records, key=lambda r: (-r.storage_cycles, r.node)
        )[:count]

    def loss_exposure(
        self, delay_line: Optional[DelayLineModel] = None
    ) -> Dict[int, float]:
        """Per-photon loss probability implied by the observed storage times.

        A photon can appear in several records (e.g. as fusee and
        measuree); its exposure is governed by the longest of its storage
        intervals.
        """
        model = delay_line or DelayLineModel()
        worst: Dict[int, int] = {}
        for record in self.storage_records:
            worst[record.node] = max(worst.get(record.node, 0), record.storage_cycles)
        return {node: model.loss_probability(cycles) for node, cycles in worst.items()}

    def utilisation(self, num_qpus: int) -> float:
        """Fraction of QPU-cycles spent doing useful work."""
        if self.total_cycles == 0 or num_qpus == 0:
            return 0.0
        busy = sum(self.qpu_busy_cycles.values())
        return busy / (self.total_cycles * num_qpus)


@dataclass(frozen=True)
class ReplayCheckpoint:
    """Frozen snapshot of replay progress at the start of a cycle.

    A task is *executed* once its whole occupancy window lies strictly
    before ``cycle``: a main task at start ``s`` has executed when
    ``s < cycle``; a sync task has *completed* (its entanglement is
    delivered) when ``s + duration <= cycle``, is *in flight* when it has
    started but not completed, and is *pending* otherwise.  Recovery
    policies use this split to decide which work survives a fault at
    ``cycle`` untouched and which must be replanned.
    """

    cycle: int
    executed_mains: Tuple[tuple, ...]
    pending_mains: Tuple[tuple, ...]
    completed_syncs: Tuple[int, ...]
    in_flight_syncs: Tuple[int, ...]
    pending_syncs: Tuple[int, ...]


class DistributedRuntime:
    """Replay and validate a distributed compilation result."""

    def __init__(self, result: DistributedCompilationResult) -> None:
        self.result = result

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Re-check every hard constraint of the schedule.

        Raises:
            ValidationError: if the schedule violates machine exclusivity,
                connection capacity, per-QPU main-task ordering, or if any
                photon is generated by no main task.
        """
        problem = self.result.problem
        schedule = self.result.schedule
        problem.validate(schedule)
        self._validate_against_system()

        generated: Set[int] = set()
        for tasks in problem.main_tasks:
            for task in tasks:
                generated.update(task.nodes)
        expected = set(self.result.computation.graph.nodes)
        missing = expected - generated
        if missing:
            raise ValidationError(
                f"{len(missing)} photons are never generated by any main task"
            )

    def _validate_against_system(self) -> None:
        """Independently replay the hardware model's interconnect constraints.

        The scheduling problem carries its own capacity tables; this check
        rebuilds the :class:`~repro.hardware.system.SystemModel` from the
        *configuration* and re-derives every constraint from it, so a
        compiler bug that builds the problem against the wrong system is
        caught at execution time.

        The per-hop windows come from :meth:`sync_occupancy`, which
        re-derives them from first principles — the relay model name in the
        config, not the scheduling layer's
        :class:`~repro.scheduling.problem.SyncTask` helpers — so the replay
        disagrees loudly if the scheduler's notion of when a photon crosses
        a link ever drifts from the hardware semantics.
        """
        system = self.result.config.system_model()
        problem = self.result.problem

        for sync in problem.sync_tasks:
            route = sync.route_qpus
            for hop_a, hop_b in zip(route, route[1:]):
                if not system.are_connected(hop_a, hop_b):
                    raise ValidationError(
                        f"sync task {sync.sync_id} crosses QPUs {hop_a}-{hop_b}, "
                        f"which share no link in the {system.topology.value} "
                        f"interconnect"
                    )
        qpu_slots, link_slots, buffer_slots = self.sync_occupancy()
        for (qpu, start), holders in qpu_slots.items():
            count = len(holders)
            capacity = system.qpus[qpu].connection_capacity
            if count > capacity:
                raise ValidationError(
                    f"QPU {qpu} hosts {count} synchronisations at cycle {start} "
                    f"but its connection layer supports K_max = {capacity}"
                )
        for ((qpu_a, qpu_b), start), holders in link_slots.items():
            count = len(holders)
            capacity = system.link_capacity(qpu_a, qpu_b)
            if count > capacity:
                raise ValidationError(
                    f"link ({qpu_a}, {qpu_b}) carries {count} synchronisations "
                    f"at cycle {start} but supports {capacity}"
                )
        for (qpu, start), holders in buffer_slots.items():
            count = len(holders)
            capacity = system.qpus[qpu].connection_capacity
            if count > capacity:
                raise ValidationError(
                    f"QPU {qpu} buffers {count} in-flight relay photons at "
                    f"cycle {start} but has only {capacity} buffer slots"
                )

    def sync_occupancy(
        self,
        schedule=None,
        sync_tasks: Optional[Sequence] = None,
    ) -> Tuple[
        Dict[Tuple[int, int], List[int]],
        Dict[Tuple[Tuple[int, int], int], List[int]],
        Dict[Tuple[int, int], List[int]],
    ]:
        """Slot-level interconnect occupancy, keyed by synchronisation id.

        Re-derives every per-hop window from first principles — the relay
        model name in the config and each task's route, not the scheduling
        layer's window helpers.  Under the pipelined model a sync starting
        at ``t`` over the route ``q_0 .. q_{n-1}`` crosses link ``h`` at
        ``t + h``; ``q_0`` is engaged at ``t``, ``q_{n-1}`` at arrival
        ``t + n - 2``, and every intermediate ``q_k`` at ``t + k - 1``
        (receive) and ``t + k`` (forward) while buffering the photon at
        ``t + k``.  Under the atomic model the whole route is held for the
        full transfer window.

        Returns:
            ``(qpu_slots, link_slots, buffer_slots)`` mapping
            ``(qpu, cycle)`` / ``(link, cycle)`` slots to the list of sync
            ids occupying them.  Optional ``schedule``/``sync_tasks``
            overrides let recovery policies project a repaired plan onto
            the same accounting.
        """
        pipelined = self.result.config.relay_model == "pipelined"
        problem = self.result.problem
        if schedule is None:
            schedule = self.result.schedule
        if sync_tasks is None:
            sync_tasks = problem.sync_tasks

        qpu_slots: Dict[Tuple[int, int], List[int]] = {}
        link_slots: Dict[Tuple[Tuple[int, int], int], List[int]] = {}
        buffer_slots: Dict[Tuple[int, int], List[int]] = {}
        for sync in sync_tasks:
            route = sync.route_qpus
            start = schedule.start_of(sync.key)
            last = len(route) - 1
            if pipelined and last > 1:
                slots = [(route[0], start), (route[last], start + last - 1)]
                for k in range(1, last):
                    slots.append((route[k], start + k - 1))
                    slots.append((route[k], start + k))
                    buffer_slots.setdefault((route[k], start + k), []).append(
                        sync.sync_id
                    )
                for hop, (hop_a, hop_b) in enumerate(zip(route, route[1:])):
                    link = (min(hop_a, hop_b), max(hop_a, hop_b))
                    link_slots.setdefault((link, start + hop), []).append(
                        sync.sync_id
                    )
            else:
                # Direct sync (both models) or atomic relay: the transfer is
                # one indivisible operation, so every route QPU and link is
                # held for the whole transfer window of `last` cycles
                # (1 for a direct sync, relay_hops + 1 for a relayed one).
                duration = last
                slots = [
                    (qpu, start + cycle)
                    for qpu in route
                    for cycle in range(duration)
                ]
                for hop_a, hop_b in zip(route, route[1:]):
                    link = (min(hop_a, hop_b), max(hop_a, hop_b))
                    for cycle in range(duration):
                        link_slots.setdefault((link, start + cycle), []).append(
                            sync.sync_id
                        )
            for slot in slots:
                qpu_slots.setdefault(slot, []).append(sync.sync_id)
        return qpu_slots, link_slots, buffer_slots

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> ExecutionTrace:
        """Replay the schedule and return the execution trace."""
        with TRACER.span("runtime.replay") as replay_span:
            trace = self._run()
            replay_span.set(
                cycles=trace.total_cycles,
                sync_events=trace.sync_events,
                photons=len(trace.storage_records),
            )
        # Integer, seed-deterministic series: these survive deterministic
        # metric dumps, so reports and expositions always carry histograms.
        METRICS.observe("runtime.replay.cycles", trace.total_cycles)
        METRICS.observe("runtime.replay.sync_events", trace.sync_events)
        if EVENTS.enabled:
            EVENTS.emit(
                "runtime.replay",
                cycles=trace.total_cycles,
                sync_events=trace.sync_events,
                photons=len(trace.storage_records),
            )
        return trace

    def _run(self) -> ExecutionTrace:
        self.validate()
        problem = self.result.problem
        schedule = self.result.schedule

        node_generated: Dict[int, int] = {}
        qpu_busy: Dict[int, int] = {}
        for tasks in problem.main_tasks:
            for task in tasks:
                start = schedule.start_of(task.key)
                qpu_busy[task.qpu] = qpu_busy.get(task.qpu, 0) + 1
                for node in task.nodes:
                    node_generated[node] = start

        records: List[PhotonStorageRecord] = []
        removed = self.result.computation.removed_nodes

        # Fusees: wait for the fusion partner.
        for u, v in problem.local_fusee_pairs:
            if u in removed or v in removed:
                continue
            later = max(node_generated[u], node_generated[v])
            for node in (u, v):
                records.append(
                    PhotonStorageRecord(
                        node=node,
                        generated_at=node_generated[node],
                        released_at=later,
                        reason="fusee",
                    )
                )

        # Measurees: wait for the classical signals of their parents.
        dependency = self.result.computation.dependency
        mtime: Dict[int, int] = {}
        for node in dependency.topological_order():
            if node not in node_generated:
                continue
            earliest = node_generated[node] + 1
            for parent in dependency.parents(node):
                if parent in mtime:
                    earliest = max(earliest, mtime[parent] + 1)
            mtime[node] = earliest
            if node in removed:
                continue
            records.append(
                PhotonStorageRecord(
                    node=node,
                    generated_at=node_generated[node],
                    released_at=earliest,
                    reason="measuree",
                )
            )

        # Connectors: wait for their synchronisation task; a relayed sync
        # releases its photons only once the entanglement has crossed every
        # extra hop of its route (matching the evaluation kernel's
        # relay-extended remote gap).
        sync_events = 0
        for sync in problem.sync_tasks:
            sync_events += 1
            sync_start = schedule.start_of(sync.key) + sync.relay_hops
            for node in sync.connector:
                if node not in node_generated or node in removed:
                    continue
                records.append(
                    PhotonStorageRecord(
                        node=node,
                        generated_at=node_generated[node],
                        released_at=max(node_generated[node], sync_start),
                        reason="connector",
                    )
                )

        return ExecutionTrace(
            total_cycles=problem.makespan_of(schedule),
            storage_records=records,
            qpu_busy_cycles=qpu_busy,
            sync_events=sync_events,
        )

    # ------------------------------------------------------------------ #
    # Checkpointing and degraded-system verification
    # ------------------------------------------------------------------ #

    def checkpoint(self, cycle: int) -> ReplayCheckpoint:
        """Snapshot replay progress at the start of ``cycle``.

        Deterministic: every component is sorted, so equal schedules yield
        equal checkpoints regardless of task iteration order.
        """
        problem = self.result.problem
        schedule = self.result.schedule
        executed: List[tuple] = []
        pending_mains: List[tuple] = []
        for tasks in problem.main_tasks:
            for task in tasks:
                if schedule.start_of(task.key) < cycle:
                    executed.append(task.key)
                else:
                    pending_mains.append(task.key)
        completed: List[int] = []
        in_flight: List[int] = []
        pending_syncs: List[int] = []
        for sync in problem.sync_tasks:
            start = schedule.start_of(sync.key)
            if start + sync.duration <= cycle:
                completed.append(sync.sync_id)
            elif start < cycle:
                in_flight.append(sync.sync_id)
            else:
                pending_syncs.append(sync.sync_id)
        return ReplayCheckpoint(
            cycle=cycle,
            executed_mains=tuple(sorted(executed)),
            pending_mains=tuple(sorted(pending_mains)),
            completed_syncs=tuple(sorted(completed)),
            in_flight_syncs=tuple(sorted(in_flight)),
            pending_syncs=tuple(sorted(pending_syncs)),
        )

    def verify_degraded(
        self,
        schedule,
        sync_tasks: Optional[Sequence] = None,
        *,
        fault_cycle: int = 0,
        dead_qpus: FrozenSet[int] = frozenset(),
        dead_links: FrozenSet[Tuple[int, int]] = frozenset(),
        qpu_capacity: Optional[Callable[[int, int], int]] = None,
        link_capacity: Optional[Callable[[Tuple[int, int], int], int]] = None,
        buffer_capacity: Optional[Callable[[int, int], int]] = None,
    ) -> None:
        """Independently re-check a recovered plan against a degraded system.

        Windows strictly before ``fault_cycle`` ran on the healthy system
        and are held to the healthy constraints only; windows at or after
        ``fault_cycle`` must additionally avoid every element of
        ``dead_qpus``/``dead_links`` and fit under the (possibly reduced)
        per-cycle capacity callables — ``qpu_capacity(qpu, cycle)``,
        ``link_capacity(link, cycle)`` and ``buffer_capacity(qpu, cycle)``
        model brownouts.  The windows themselves are re-derived from first
        principles via :meth:`sync_occupancy`, never trusted from the
        recovery policy that produced the plan.

        Raises:
            ValidationError: if the recovered plan uses a dead element
                after the fault, overflows a degraded capacity, breaks
                QPU exclusivity between main and sync work, or routes a
                sync over QPUs that share no physical link.
        """
        system = self.result.config.system_model()
        problem = self.result.problem
        syncs = problem.sync_tasks if sync_tasks is None else sync_tasks
        dead_link_keys = {
            (min(a, b), max(a, b)) for a, b in dead_links
        }

        def degraded(cycle: int) -> bool:
            return cycle >= fault_cycle

        main_at: Dict[Tuple[int, int], tuple] = {}
        for tasks in problem.main_tasks:
            for task in tasks:
                start = schedule.start_of(task.key)
                if degraded(start) and task.qpu in dead_qpus:
                    raise ValidationError(
                        f"main task {task.key} runs on dead QPU {task.qpu} "
                        f"at cycle {start}"
                    )
                slot = (task.qpu, start)
                if slot in main_at:
                    raise ValidationError(
                        f"QPU {task.qpu} runs two main tasks at cycle {start}"
                    )
                main_at[slot] = task.key

        for sync in syncs:
            route = sync.route_qpus
            for hop_a, hop_b in zip(route, route[1:]):
                if not system.are_connected(hop_a, hop_b):
                    raise ValidationError(
                        f"sync task {sync.sync_id} crosses QPUs "
                        f"{hop_a}-{hop_b}, which share no link in the "
                        f"{system.topology.value} interconnect"
                    )

        qpu_slots, link_slots, buffer_slots = self.sync_occupancy(
            schedule=schedule, sync_tasks=syncs
        )
        for (qpu, cycle), holders in qpu_slots.items():
            if degraded(cycle) and qpu in dead_qpus:
                raise ValidationError(
                    f"sync task(s) {sorted(set(holders))} engage dead QPU "
                    f"{qpu} at cycle {cycle}"
                )
            if (qpu, cycle) in main_at:
                raise ValidationError(
                    f"QPU {qpu} runs main task {main_at[(qpu, cycle)]} and "
                    f"sync task(s) {sorted(set(holders))} at cycle {cycle}"
                )
            capacity = system.qpus[qpu].connection_capacity
            if qpu_capacity is not None and degraded(cycle):
                capacity = min(capacity, qpu_capacity(qpu, cycle))
            if len(holders) > capacity:
                raise ValidationError(
                    f"QPU {qpu} hosts {len(holders)} synchronisations at "
                    f"cycle {cycle} but the degraded K_max is {capacity}"
                )
        for (link, cycle), holders in link_slots.items():
            if degraded(cycle) and link in dead_link_keys:
                raise ValidationError(
                    f"sync task(s) {sorted(set(holders))} cross dead link "
                    f"{link} at cycle {cycle}"
                )
            capacity = system.link_capacity(*link)
            if link_capacity is not None and degraded(cycle):
                capacity = min(capacity, link_capacity(link, cycle))
            if len(holders) > capacity:
                raise ValidationError(
                    f"link {link} carries {len(holders)} synchronisations "
                    f"at cycle {cycle} but the degraded capacity is {capacity}"
                )
        for (qpu, cycle), holders in buffer_slots.items():
            if degraded(cycle) and qpu in dead_qpus:
                raise ValidationError(
                    f"sync task(s) {sorted(set(holders))} buffer on dead "
                    f"QPU {qpu} at cycle {cycle}"
                )
            capacity = system.qpus[qpu].connection_capacity
            if buffer_capacity is not None and degraded(cycle):
                capacity = min(capacity, buffer_capacity(qpu, cycle))
            if len(holders) > capacity:
                raise ValidationError(
                    f"QPU {qpu} buffers {len(holders)} in-flight relay "
                    f"photons at cycle {cycle} but the degraded buffer "
                    f"capacity is {capacity}"
                )

    # ------------------------------------------------------------------ #
    # Hardware-level projections
    # ------------------------------------------------------------------ #

    def loss_exposure(
        self, delay_line: Optional[DelayLineModel] = None
    ) -> Dict[int, float]:
        """Per-photon loss probability implied by the observed storage times."""
        return self.run().loss_exposure(delay_line)
