"""Graph states.

A graph state over ``G = (V, E)`` is the joint +1 eigenstate of the
stabilizers ``K_i = X_i prod_{j in N(i)} Z_j`` (Section II-A).  The compiler
stack mostly treats the graph state combinatorially (its graph is the
*computation graph* that gets partitioned and mapped), but this module also
provides the stabilizer view and a dense statevector construction for
validation on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx
import numpy as np

from repro.mbqc.pattern import Pattern

__all__ = ["GraphState", "graph_state_of_pattern"]


@dataclass
class GraphState:
    """A graph state described by its underlying undirected graph."""

    graph: nx.Graph = field(default_factory=nx.Graph)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int]], nodes: Iterable[int] = ()
    ) -> "GraphState":
        """Build a graph state from an edge list (plus optional isolated nodes)."""
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls(graph)

    # ------------------------------------------------------------------ #
    # Combinatorial views
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[int]:
        """Sorted node labels."""
        return sorted(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        """Number of qubits in the graph state."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of entangling edges."""
        return self.graph.number_of_edges()

    def neighbors(self, node: int) -> Set[int]:
        """Neighbourhood of ``node``."""
        return set(self.graph.neighbors(node))

    def degree_histogram(self) -> Dict[int, int]:
        """Return ``{degree: count}`` — used to pick resource-state shapes."""
        histogram: Dict[int, int] = {}
        for _, degree in self.graph.degree():
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def local_complement(self, node: int) -> "GraphState":
        """Return the graph state after local complementation about ``node``.

        Local complementation toggles every edge between pairs of neighbours
        of ``node``; it corresponds to a local Clifford operation and is the
        basic rewrite used by graph-state optimisers.
        """
        new_graph = self.graph.copy()
        neighbourhood = list(self.graph.neighbors(node))
        for i, a in enumerate(neighbourhood):
            for b in neighbourhood[i + 1 :]:
                if new_graph.has_edge(a, b):
                    new_graph.remove_edge(a, b)
                else:
                    new_graph.add_edge(a, b)
        return GraphState(new_graph)

    # ------------------------------------------------------------------ #
    # Stabilizer / statevector views (validation only)
    # ------------------------------------------------------------------ #

    def stabilizer(self, node: int) -> Dict[int, str]:
        """Return the stabilizer ``K_node`` as ``{qubit: pauli}``."""
        pauli: Dict[int, str] = {node: "X"}
        for neighbour in self.graph.neighbors(node):
            pauli[neighbour] = "Z"
        return pauli

    def stabilizers(self) -> List[Dict[int, str]]:
        """Return all stabilizer generators ``K_i``."""
        return [self.stabilizer(node) for node in self.nodes]

    def statevector(self) -> np.ndarray:
        """Return the dense statevector of the graph state (small graphs only).

        Node order follows :attr:`nodes`; the first node is the most
        significant bit of the basis index.
        """
        order = self.nodes
        n = len(order)
        if n > 16:
            raise ValueError("statevector construction limited to 16 qubits")
        index_of = {node: i for i, node in enumerate(order)}
        state = np.full(2**n, 1.0 / np.sqrt(2**n), dtype=complex)
        for a, b in self.graph.edges:
            ia, ib = index_of[a], index_of[b]
            for basis in range(2**n):
                bit_a = (basis >> (n - 1 - ia)) & 1
                bit_b = (basis >> (n - 1 - ib)) & 1
                if bit_a and bit_b:
                    state[basis] *= -1.0
        return state

    def check_stabilizer(self, node: int, atol: float = 1e-9) -> bool:
        """Verify ``K_node |G> = |G>`` on the dense statevector (small graphs)."""
        order = self.nodes
        n = len(order)
        index_of = {node_label: i for i, node_label in enumerate(order)}
        state = self.statevector()
        transformed = state.copy()
        pauli = self.stabilizer(node)
        # Apply Z factors (diagonal) then X factors (bit flips).
        for basis in range(2**n):
            phase = 1.0
            for qubit, op in pauli.items():
                if op == "Z":
                    bit = (basis >> (n - 1 - index_of[qubit])) & 1
                    if bit:
                        phase *= -1.0
            transformed[basis] = state[basis] * phase
        x_qubits = [index_of[q] for q, op in pauli.items() if op == "X"]
        flipped = np.empty_like(transformed)
        for basis in range(2**n):
            target = basis
            for qubit_index in x_qubits:
                target ^= 1 << (n - 1 - qubit_index)
            flipped[target] = transformed[basis]
        return bool(np.allclose(flipped, state, atol=atol))


def graph_state_of_pattern(pattern: Pattern) -> GraphState:
    """Return the graph state entangled by the E commands of ``pattern``."""
    return GraphState.from_edges(pattern.edges(), nodes=pattern.nodes)
