"""Measurement-based quantum computing (MBQC) substrate.

This package implements the measurement-calculus view of MBQC used in
Section II-A of the paper:

* :mod:`~repro.mbqc.commands` / :mod:`~repro.mbqc.pattern` — the command
  language (N/E/M/X/Z) and the :class:`Pattern` container with validation
  and standard-form checks,
* :mod:`~repro.mbqc.translate` — translation of a {J, CZ} program into a
  standardised pattern with explicit correction domains,
* :mod:`~repro.mbqc.signal_shift` — signal shifting, which removes
  Z-dependencies from the real-time dependency structure,
* :mod:`~repro.mbqc.dependency` — the dependency DAG (X- and Z-dependencies)
  consumed by the required-photon-lifetime metric,
* :mod:`~repro.mbqc.graphstate` — the underlying graph state,
* :mod:`~repro.mbqc.simulator` — a statevector simulator for patterns, used
  to prove that translation preserves circuit semantics,
* :mod:`~repro.mbqc.flow` — causal-flow utilities.
"""

from repro.mbqc.commands import (
    CommandKind,
    PrepareCommand,
    EntangleCommand,
    MeasureCommand,
    CorrectionCommand,
)
from repro.mbqc.pattern import Pattern
from repro.mbqc.translate import circuit_to_pattern, jcz_to_pattern
from repro.mbqc.signal_shift import signal_shift
from repro.mbqc.dependency import (
    DependencyGraph,
    build_dependency_graph,
    measurement_order,
)
from repro.mbqc.graphstate import GraphState, graph_state_of_pattern
from repro.mbqc.simulator import PatternSimulator, simulate_pattern
from repro.mbqc.flow import find_causal_flow, CausalFlow

__all__ = [
    "CommandKind",
    "PrepareCommand",
    "EntangleCommand",
    "MeasureCommand",
    "CorrectionCommand",
    "Pattern",
    "circuit_to_pattern",
    "jcz_to_pattern",
    "signal_shift",
    "DependencyGraph",
    "build_dependency_graph",
    "measurement_order",
    "GraphState",
    "graph_state_of_pattern",
    "PatternSimulator",
    "simulate_pattern",
    "find_causal_flow",
    "CausalFlow",
]
