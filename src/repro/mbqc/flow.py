"""Causal flow of open graphs.

A causal flow (Danos & Kashefi) certifies that a measurement pattern on an
open graph ``(G, I, O)`` can be executed deterministically with the standard
X/Z corrections.  Patterns produced by the {J, CZ} translation always have a
flow (each measured node's corrector is the fresh node its J gate
introduced); the general finder here follows the Mhalla–Perdrix algorithm
and is exposed both as a sanity check in tests and as a public utility for
users who bring their own graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

__all__ = ["CausalFlow", "find_causal_flow"]


@dataclass
class CausalFlow:
    """A causal flow: the successor function plus a partial order by layers.

    Attributes:
        successor: Maps every measured (non-output) node to its corrector.
        layers: Maps every node to its layer index; layer 0 contains the
            outputs, higher layers are measured earlier.  Executing nodes in
            decreasing layer order respects the flow's partial order.
    """

    successor: Dict[int, int] = field(default_factory=dict)
    layers: Dict[int, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Number of layers (the flow depth of the pattern)."""
        if not self.layers:
            return 0
        return max(self.layers.values()) + 1

    def measurement_order(self) -> List[int]:
        """Return measured nodes ordered so dependencies come first."""
        measured = [node for node in self.layers if node in self.successor]
        return sorted(measured, key=lambda node: (-self.layers[node], node))


def find_causal_flow(
    graph: nx.Graph, inputs: Set[int], outputs: Set[int]
) -> Optional[CausalFlow]:
    """Find a causal flow of the open graph ``(graph, inputs, outputs)``.

    Returns ``None`` when no causal flow exists.  The algorithm is the
    standard backwards search: repeatedly pick a potential corrector ``v``
    (not an input, not yet used) with exactly one unprocessed neighbour
    ``u``; then ``f(u) = v`` and ``u`` joins the processed set.
    """
    all_nodes = set(graph.nodes)
    if not outputs <= all_nodes or not inputs <= all_nodes:
        raise ValueError("inputs and outputs must be nodes of the graph")

    processed: Set[int] = set(outputs)
    correctors: Set[int] = set(outputs) - set(inputs)
    successor: Dict[int, int] = {}
    layers: Dict[int, int] = {node: 0 for node in outputs}
    level = 1

    while True:
        newly_processed: Set[int] = set()
        used_correctors: Set[int] = set()
        for v in sorted(correctors):
            unprocessed = [u for u in graph.neighbors(v) if u not in processed]
            if len(unprocessed) == 1:
                u = unprocessed[0]
                if u in newly_processed:
                    continue
                successor[u] = v
                layers[u] = level
                newly_processed.add(u)
                used_correctors.add(v)
        if not newly_processed:
            if processed == all_nodes:
                return CausalFlow(successor=successor, layers=layers)
            return None
        processed |= newly_processed
        correctors = (correctors - used_correctors) | (newly_processed - set(inputs))
        level += 1
