"""Measurement-calculus commands.

An MBQC pattern is a sequence of commands over a set of node labels:

* ``N(i)`` — prepare node ``i`` in the ``|+>`` state,
* ``E(i, j)`` — entangle nodes ``i`` and ``j`` with a CZ,
* ``M(i, alpha, S, T)`` — destructively measure node ``i`` in the basis
  ``{|+_a>, |-_a>}`` with ``a = (-1)^{s} alpha + t pi`` where ``s`` and ``t``
  are the parities of the outcomes of the nodes in the X-domain ``S`` and
  Z-domain ``T`` respectively,
* ``X(i, S)`` / ``Z(i, S)`` — Pauli byproduct corrections conditioned on the
  parity of the outcomes of the nodes in ``S``.

Domains are stored as frozen sets of node labels; the parity convention means
the same node never needs to appear twice in a domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

__all__ = [
    "CommandKind",
    "PrepareCommand",
    "EntangleCommand",
    "MeasureCommand",
    "CorrectionCommand",
    "Command",
]


class CommandKind(str, enum.Enum):
    """Discriminator for the five measurement-calculus command types."""

    PREPARE = "N"
    ENTANGLE = "E"
    MEASURE = "M"
    X_CORRECTION = "X"
    Z_CORRECTION = "Z"


def _domain(nodes: Iterable[int]) -> FrozenSet[int]:
    return frozenset(int(n) for n in nodes)


@dataclass(frozen=True)
class PrepareCommand:
    """``N(node)`` — prepare ``node`` in ``|+>``."""

    node: int

    kind: CommandKind = field(default=CommandKind.PREPARE, init=False, repr=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"N({self.node})"


@dataclass(frozen=True)
class EntangleCommand:
    """``E(node_a, node_b)`` — apply CZ between the two nodes."""

    node_a: int
    node_b: int

    kind: CommandKind = field(default=CommandKind.ENTANGLE, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError("cannot entangle a node with itself")

    @property
    def nodes(self) -> Tuple[int, int]:
        """Both endpoints, in the order given."""
        return (self.node_a, self.node_b)

    def sorted_nodes(self) -> Tuple[int, int]:
        """Both endpoints in ascending order (edges are undirected)."""
        return (min(self.node_a, self.node_b), max(self.node_a, self.node_b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"E({self.node_a},{self.node_b})"


@dataclass(frozen=True)
class MeasureCommand:
    """``M(node, angle, s_domain, t_domain)`` — adaptive measurement.

    The effective measurement angle is
    ``(-1)^{parity(s_domain)} * angle + parity(t_domain) * pi``.
    """

    node: int
    angle: float = 0.0
    s_domain: FrozenSet[int] = frozenset()
    t_domain: FrozenSet[int] = frozenset()

    kind: CommandKind = field(default=CommandKind.MEASURE, init=False, repr=False)

    def __init__(
        self,
        node: int,
        angle: float = 0.0,
        s_domain: Iterable[int] = (),
        t_domain: Iterable[int] = (),
    ) -> None:
        object.__setattr__(self, "node", int(node))
        object.__setattr__(self, "angle", float(angle))
        object.__setattr__(self, "s_domain", _domain(s_domain))
        object.__setattr__(self, "t_domain", _domain(t_domain))
        object.__setattr__(self, "kind", CommandKind.MEASURE)

    @property
    def is_pauli_z(self) -> bool:
        """True when the measurement removes the node via a Z-basis readout.

        In this library Z-basis removals are encoded as measurements whose
        angle is tagged NaN-free via the dedicated ``angle=None``-like value;
        instead, we mark them by the attribute set in the pattern (see
        :meth:`Pattern.removed_nodes`).  The property here only recognises
        X-plane angle 0 with empty domains, which is how removees appear once
        signal shifting has run.
        """
        return not self.s_domain and not self.t_domain and self.angle == 0.0

    def with_domains(
        self, s_domain: Iterable[int], t_domain: Iterable[int]
    ) -> "MeasureCommand":
        """Return a copy with replaced correction domains."""
        return MeasureCommand(self.node, self.angle, s_domain, t_domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extras = ""
        if self.s_domain:
            extras += f", s={sorted(self.s_domain)}"
        if self.t_domain:
            extras += f", t={sorted(self.t_domain)}"
        return f"M({self.node}, {self.angle:.4g}{extras})"


@dataclass(frozen=True)
class CorrectionCommand:
    """``X(node, domain)`` or ``Z(node, domain)`` — conditional Pauli correction."""

    node: int
    domain: FrozenSet[int]
    pauli: str = "X"

    kind: CommandKind = field(init=False, repr=False, default=CommandKind.X_CORRECTION)

    def __init__(self, node: int, domain: Iterable[int], pauli: str = "X") -> None:
        pauli = pauli.upper()
        if pauli not in ("X", "Z"):
            raise ValueError("correction must be X or Z")
        object.__setattr__(self, "node", int(node))
        object.__setattr__(self, "domain", _domain(domain))
        object.__setattr__(self, "pauli", pauli)
        object.__setattr__(
            self,
            "kind",
            CommandKind.X_CORRECTION if pauli == "X" else CommandKind.Z_CORRECTION,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pauli}({self.node}, s={sorted(self.domain)})"


Command = object  # union of the four dataclasses above; kept loose on purpose
