"""Measurement-calculus commands.

An MBQC pattern is a sequence of commands over a set of node labels:

* ``N(i)`` — prepare node ``i`` in the ``|+>`` state,
* ``E(i, j)`` — entangle nodes ``i`` and ``j`` with a CZ,
* ``M(i, alpha, S, T)`` — destructively measure node ``i`` in the basis
  ``{|+_a>, |-_a>}`` with ``a = (-1)^{s} alpha + t pi`` where ``s`` and ``t``
  are the parities of the outcomes of the nodes in the X-domain ``S`` and
  Z-domain ``T`` respectively,
* ``X(i, S)`` / ``Z(i, S)`` — Pauli byproduct corrections conditioned on the
  parity of the outcomes of the nodes in ``S``.

Domains are stored as **integer bitsets** (bit ``n`` set means node ``n`` is
in the domain); the parity convention means the same node never needs to
appear twice, so a set-with-parity-semantics is exactly an XOR of bitmasks.
Signal shifting and dependency construction operate on the masks directly —
a domain union/symmetric-difference is one big-int ``|``/``^`` and a signal
parity is one ``&`` plus a popcount.  The frozen-set views (``s_domain``,
``t_domain``, ``domain``) remain available for the public API and hashing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple, Union

__all__ = [
    "CommandKind",
    "PrepareCommand",
    "EntangleCommand",
    "MeasureCommand",
    "CorrectionCommand",
    "Command",
    "domain_mask",
    "mask_bits",
]

DomainLike = Union[int, Iterable[int]]


class CommandKind(str, enum.Enum):
    """Discriminator for the five measurement-calculus command types."""

    PREPARE = "N"
    ENTANGLE = "E"
    MEASURE = "M"
    X_CORRECTION = "X"
    Z_CORRECTION = "Z"


def domain_mask(nodes: DomainLike) -> int:
    """Encode a domain as an integer bitset (idempotent on masks).

    Node labels must be non-negative; bit ``n`` of the result is set iff
    node ``n`` is in the domain.
    """
    if isinstance(nodes, int):
        if nodes < 0:
            raise ValueError("a domain mask must be non-negative")
        return nodes
    mask = 0
    for node in nodes:
        node = int(node)
        if node < 0:
            raise ValueError("domain node labels must be non-negative")
        mask |= 1 << node
    return mask


def mask_bits(mask: int) -> Tuple[int, ...]:
    """Decode a bitset into its node labels, in ascending order."""
    bits = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return tuple(bits)


def _domain(nodes: DomainLike) -> FrozenSet[int]:
    return frozenset(mask_bits(domain_mask(nodes)))


@dataclass(frozen=True)
class PrepareCommand:
    """``N(node)`` — prepare ``node`` in ``|+>``."""

    node: int

    kind: CommandKind = field(default=CommandKind.PREPARE, init=False, repr=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"N({self.node})"


@dataclass(frozen=True)
class EntangleCommand:
    """``E(node_a, node_b)`` — apply CZ between the two nodes."""

    node_a: int
    node_b: int

    kind: CommandKind = field(default=CommandKind.ENTANGLE, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError("cannot entangle a node with itself")

    @property
    def nodes(self) -> Tuple[int, int]:
        """Both endpoints, in the order given."""
        return (self.node_a, self.node_b)

    def sorted_nodes(self) -> Tuple[int, int]:
        """Both endpoints in ascending order (edges are undirected)."""
        return (min(self.node_a, self.node_b), max(self.node_a, self.node_b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"E({self.node_a},{self.node_b})"


@dataclass(frozen=True)
class MeasureCommand:
    """``M(node, angle, s_domain, t_domain)`` — adaptive measurement.

    The effective measurement angle is
    ``(-1)^{parity(s_domain)} * angle + parity(t_domain) * pi``.

    Domains may be given as iterables of node labels or as integer bitsets;
    they are stored as the bitsets ``s_mask`` / ``t_mask``.
    """

    node: int
    angle: float = 0.0
    s_mask: int = 0
    t_mask: int = 0

    kind: CommandKind = field(default=CommandKind.MEASURE, init=False, repr=False)

    def __init__(
        self,
        node: int,
        angle: float = 0.0,
        s_domain: DomainLike = 0,
        t_domain: DomainLike = 0,
        *,
        s_mask: int = None,
        t_mask: int = None,
    ) -> None:
        # The keyword-only mask parameters mirror the stored field names so
        # ``dataclasses.replace`` (which passes fields back by name) keeps
        # working; they take precedence over the domain aliases.
        object.__setattr__(self, "node", int(node))
        object.__setattr__(self, "angle", float(angle))
        object.__setattr__(
            self, "s_mask", domain_mask(s_domain if s_mask is None else s_mask)
        )
        object.__setattr__(
            self, "t_mask", domain_mask(t_domain if t_mask is None else t_mask)
        )
        object.__setattr__(self, "kind", CommandKind.MEASURE)

    def __setstate__(self, state) -> None:
        # Accept pickles from the pre-bitset format, where the domains were
        # stored as frozensets under s_domain/t_domain.
        if "s_mask" not in state:
            state = dict(state)
            state["s_mask"] = domain_mask(state.pop("s_domain", ()))
            state["t_mask"] = domain_mask(state.pop("t_domain", ()))
        self.__dict__.update(state)

    @property
    def s_domain(self) -> FrozenSet[int]:
        """The X-domain as a frozen set of node labels."""
        return frozenset(mask_bits(self.s_mask))

    @property
    def t_domain(self) -> FrozenSet[int]:
        """The Z-domain as a frozen set of node labels."""
        return frozenset(mask_bits(self.t_mask))

    @property
    def is_pauli_z(self) -> bool:
        """True when the measurement removes the node via a Z-basis readout.

        In this library Z-basis removals are encoded as measurements whose
        angle is tagged NaN-free via the dedicated ``angle=None``-like value;
        instead, we mark them by the attribute set in the pattern (see
        :meth:`Pattern.removed_nodes`).  The property here only recognises
        X-plane angle 0 with empty domains, which is how removees appear once
        signal shifting has run.
        """
        return not self.s_mask and not self.t_mask and self.angle == 0.0

    def with_domains(
        self, s_domain: DomainLike, t_domain: DomainLike
    ) -> "MeasureCommand":
        """Return a copy with replaced correction domains."""
        return MeasureCommand(self.node, self.angle, s_domain, t_domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extras = ""
        if self.s_mask:
            extras += f", s={list(mask_bits(self.s_mask))}"
        if self.t_mask:
            extras += f", t={list(mask_bits(self.t_mask))}"
        return f"M({self.node}, {self.angle:.4g}{extras})"


@dataclass(frozen=True)
class CorrectionCommand:
    """``X(node, domain)`` or ``Z(node, domain)`` — conditional Pauli correction."""

    node: int
    mask: int
    pauli: str = "X"

    kind: CommandKind = field(init=False, repr=False, default=CommandKind.X_CORRECTION)

    def __init__(
        self,
        node: int,
        domain: DomainLike = 0,
        pauli: str = "X",
        *,
        mask: int = None,
    ) -> None:
        # ``mask`` mirrors the stored field name for dataclasses.replace.
        pauli = pauli.upper()
        if pauli not in ("X", "Z"):
            raise ValueError("correction must be X or Z")
        object.__setattr__(self, "node", int(node))
        object.__setattr__(self, "mask", domain_mask(domain if mask is None else mask))
        object.__setattr__(self, "pauli", pauli)
        object.__setattr__(
            self,
            "kind",
            CommandKind.X_CORRECTION if pauli == "X" else CommandKind.Z_CORRECTION,
        )

    def __setstate__(self, state) -> None:
        # Accept pickles from the pre-bitset format (frozenset under domain).
        if "mask" not in state:
            state = dict(state)
            state["mask"] = domain_mask(state.pop("domain", ()))
        self.__dict__.update(state)

    @property
    def domain(self) -> FrozenSet[int]:
        """The correction domain as a frozen set of node labels."""
        return frozenset(mask_bits(self.mask))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pauli}({self.node}, s={list(mask_bits(self.mask))})"


Command = object  # union of the four dataclasses above; kept loose on purpose
