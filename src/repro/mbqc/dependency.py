"""Dependency graphs of measurement patterns.

The paper's Algorithm 1 consumes the *dependency graph* ``G' = (V, E')`` in
which an edge ``(i, j)`` means that the measurement basis of ``j`` depends on
the outcome of ``i``.  Edges are typed: X-dependencies constrain real-time
execution, while Z-dependencies can be removed by signal shifting and handled
classically (Section II-A).  This module builds that graph from a
:class:`~repro.mbqc.pattern.Pattern` and provides the derived orderings the
compiler needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List

import networkx as nx

from repro.mbqc.commands import CorrectionCommand, MeasureCommand, mask_bits
from repro.mbqc.pattern import Pattern
from repro.utils.errors import ValidationError

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "measurement_order",
    "is_pauli_angle",
]


def is_pauli_angle(angle: float, atol: float = 1e-9) -> bool:
    """True when ``angle`` is 0 modulo pi (an X- or Y-axis Pauli measurement).

    For such angles the adaptive sign flip ``(-1)^s * angle`` and the shift
    ``+ t*pi`` leave the measurement *basis* unchanged (only the outcome
    labelling flips), so the measurement does not have to wait for any
    classical signal.  Real photonic MBQC compilers exploit exactly this
    fact; dropping these vacuous dependencies keeps the real-time dependency
    graph to the non-Clifford skeleton of the program.
    """
    remainder = math.remainder(angle, math.pi)
    return abs(remainder) < atol


@dataclass
class DependencyGraph:
    """A typed dependency DAG over pattern nodes.

    Attributes:
        graph: Directed graph; edge ``(i, j)`` carries a ``kind`` attribute
            that is ``"X"``, ``"Z"`` or ``"XZ"`` when both dependency types
            are present between the same pair.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_dependency(self, source: int, target: int, kind: str) -> None:
        """Record that the basis of ``target`` depends on the outcome of ``source``."""
        if kind not in ("X", "Z"):
            raise ValueError("dependency kind must be 'X' or 'Z'")
        if self.graph.has_edge(source, target):
            existing = self.graph.edges[source, target]["kind"]
            if kind not in existing:
                self.graph.edges[source, target]["kind"] = "XZ"
        else:
            self.graph.add_edge(source, target, kind=kind)

    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists even if it has no dependencies."""
        self.graph.add_node(node)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[int]:
        """All nodes, sorted."""
        return sorted(self.graph.nodes)

    def parents(self, node: int) -> List[int]:
        """Nodes whose outcomes the basis of ``node`` depends on."""
        return sorted(self.graph.predecessors(node))

    def children(self, node: int) -> List[int]:
        """Nodes whose basis depends on the outcome of ``node``."""
        return sorted(self.graph.successors(node))

    def restricted_to(self, kinds: Iterable[str]) -> "DependencyGraph":
        """Return a sub-DAG containing only edges of the given kinds.

        ``kinds={"X"}`` yields the real-time dependency graph after signal
        shifting; ``{"X", "Z"}`` yields the full graph.
        """
        wanted = set(kinds)
        sub = DependencyGraph()
        sub.graph.add_nodes_from(self.graph.nodes)
        kept = []
        for source, target, data in self.graph.edges(data=True):
            kind = "".join(k for k in ("X", "Z") if k in data["kind"] and k in wanted)
            if kind:
                kept.append((source, target, {"kind": kind}))
        sub.graph.add_edges_from(kept)
        return sub

    def x_only(self) -> "DependencyGraph":
        """Real-time dependency graph: X-dependencies only."""
        return self.restricted_to({"X"})

    def topological_order(self) -> List[int]:
        """Return nodes in a topological (dependency-respecting) order."""
        try:
            return list(nx.topological_sort(self.graph))
        except nx.NetworkXUnfeasible as exc:  # pragma: no cover - defensive
            raise ValidationError("dependency graph contains a cycle") from exc

    def depth(self) -> int:
        """Length (in nodes) of the longest dependency chain."""
        if self.graph.number_of_nodes() == 0:
            return 0
        return int(nx.dag_longest_path_length(self.graph)) + 1

    def is_acyclic(self) -> bool:
        """True iff the dependency graph is a DAG (required for validity)."""
        return nx.is_directed_acyclic_graph(self.graph)

    def __len__(self) -> int:
        return self.graph.number_of_nodes()


def build_dependency_graph(
    pattern: Pattern,
    include_output_corrections: bool = False,
    drop_pauli_dependencies: bool = True,
) -> DependencyGraph:
    """Build the typed dependency graph of ``pattern``.

    Args:
        pattern: Source pattern.
        include_output_corrections: Also add edges for the final classical
            byproduct corrections on output nodes.  These never constrain
            photon storage (they are frame updates), so the default is False.
        drop_pauli_dependencies: Omit dependencies of measurements whose
            angle is 0 modulo pi (see :func:`is_pauli_angle`); such
            measurements are basis-independent of their domains and impose
            no real-time wait.  Set to False to obtain the raw dependency
            structure of the measurement calculus.
    """
    dag = DependencyGraph()
    dag.graph.add_nodes_from(pattern.nodes)
    # Accumulate edge kinds as bitmasks (1 = X, 2 = Z) in a flat dict, then
    # materialise the typed edges in one bulk add — orders of magnitude fewer
    # per-edge attribute-dict touches than repeated add_dependency calls.
    edge_kinds: dict = {}
    for command in pattern.commands:
        if isinstance(command, MeasureCommand):
            if drop_pauli_dependencies and is_pauli_angle(command.angle):
                continue
            target = command.node
            for source in mask_bits(command.s_mask):
                edge_kinds[(source, target)] = edge_kinds.get((source, target), 0) | 1
            for source in mask_bits(command.t_mask):
                edge_kinds[(source, target)] = edge_kinds.get((source, target), 0) | 2
        elif include_output_corrections and isinstance(command, CorrectionCommand):
            bit = 1 if command.pauli == "X" else 2
            target = command.node
            for source in mask_bits(command.mask):
                edge_kinds[(source, target)] = edge_kinds.get((source, target), 0) | bit
    kind_names = {1: "X", 2: "Z", 3: "XZ"}
    dag.graph.add_edges_from(
        (source, target, {"kind": kind_names[kind]})
        for (source, target), kind in edge_kinds.items()
    )
    if not dag.is_acyclic():
        raise ValidationError("pattern produces a cyclic dependency graph")
    return dag


def measurement_order(pattern: Pattern) -> List[int]:
    """Return the nodes of ``pattern`` in measurement order.

    Output nodes (never measured) are appended at the end in label order, so
    the result is a total order over all nodes that respects every real-time
    dependency; the grid mapper uses it as its default placement order.
    """
    measured = [cmd.node for cmd in pattern.measure_commands]
    measured_set = set(measured)
    tail = [node for node in pattern.nodes if node not in measured_set]
    return measured + sorted(tail)
