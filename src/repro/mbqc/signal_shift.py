"""Signal shifting: removing Z-dependencies from real-time control.

Section II-A of the paper relies on the classical technique of *signal
shifting* (Broadbent & Kashefi): the ``t`` (Z-) dependency of an adaptive
measurement only adds ``pi`` to the measurement angle, which is equivalent to
flipping the reported outcome.  The dependency can therefore be moved out of
the quantum run and into classical post-processing, so only X-dependencies
remain as real-time constraints (and removees measured in the Z basis impose
no waiting at all).

The transformation implemented here replaces every measurement
``M_j^{a}(S, T)`` by ``M_j^{a}(S', {})`` and records that the *reported*
signal of ``j`` is ``s_j xor parity(T')``; any later domain that references
``j`` is rewritten by xoring in ``T'``.  Domains are integer bitsets with
parity semantics, so "xoring in" is literally a big-int XOR: resolving a
domain walks its set bits once and folds in the recorded shift masks, an
O(popcount) pass with no set allocations on the hot path.
"""

from __future__ import annotations

from typing import Dict

from repro.mbqc.commands import CorrectionCommand, MeasureCommand
from repro.mbqc.pattern import Pattern
from repro.utils.counters import OP_COUNTERS

__all__ = ["signal_shift"]


def _resolve(mask: int, shifts: Dict[int, int]) -> int:
    """Rewrite a domain bitset in terms of shifted signals (parity-preserving)."""
    result = 0
    remaining = mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        result ^= low | shifts.get(low.bit_length() - 1, 0)
    return result


def signal_shift(pattern: Pattern) -> Pattern:
    """Return a pattern equivalent to ``pattern`` with no measurement t-domains.

    The returned pattern performs the same computation: the measurement
    angles lose their ``+ t*pi`` adjustment, which is compensated by
    re-interpreting the recorded outcomes — exactly the classical
    post-processing the paper invokes to argue that Z-dependencies (and hence
    removees) do not contribute to the required photon lifetime.

    X/Z corrections on output nodes keep their domains (rewritten through the
    shifts) because they are applied classically at the end of the run.
    """
    OP_COUNTERS.add("signal_shift.calls")
    OP_COUNTERS.add("signal_shift.commands", len(pattern.commands))
    shifts: Dict[int, int] = {}
    shifted = Pattern(
        input_nodes=list(pattern.input_nodes),
        output_nodes=list(pattern.output_nodes),
        name=pattern.name,
        removed_nodes=set(pattern.removed_nodes),
    )
    for command in pattern.commands:
        if isinstance(command, MeasureCommand):
            s_mask = _resolve(command.s_mask, shifts)
            t_mask = _resolve(command.t_mask, shifts)
            if t_mask:
                shifts[command.node] = t_mask
            shifted.add(MeasureCommand(command.node, command.angle, s_mask, 0))
        elif isinstance(command, CorrectionCommand):
            mask = _resolve(command.mask, shifts)
            # A Z correction's effect on later *measurements* was already
            # absorbed; on output nodes it stays as a classical frame
            # update.  The shifted signal of nodes in the domain is used.
            shifted.add(CorrectionCommand(command.node, mask, command.pauli))
        else:
            shifted.add(command)
    shifted.validate()
    return shifted
