"""Translation of {J, CZ} programs into measurement patterns.

The translation follows the measurement calculus (Danos, Kashefi,
Panangaden): the pattern implementing ``J(alpha)`` on a wire whose current
node is ``u`` introduces a fresh node ``v`` and executes

    X_v^{s_u}  M_u^{-alpha}  E_{u,v}  N_v

while ``CZ`` simply entangles the two current wire nodes.  Instead of
emitting the intermediate corrections literally, the translator keeps a pair
of pending correction domains ``(Sx, Sz)`` per live node and folds them into
the adaptive measurement domains using the standard commutation rules

    E_{uv} X_u^s = X_u^s Z_v^s E_{uv},
    M_u^a X_u^s = [M_u^a with s-domain += s],
    M_u^a Z_u^t = [M_u^a with t-domain += t].

The resulting pattern is *runnable in generation order* (at most
``n_qubits + 1`` nodes are alive at any time, which keeps statevector
validation cheap) and can be re-ordered into standard N*, E*, M*, C* form
with :func:`standardize` without changing any domain.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import CZGate, JCZProgram, JGate, decompose_to_jcz
from repro.mbqc.commands import (
    CorrectionCommand,
    EntangleCommand,
    MeasureCommand,
    PrepareCommand,
)
from repro.mbqc.pattern import Pattern

__all__ = ["jcz_to_pattern", "circuit_to_pattern", "standardize"]


def jcz_to_pattern(program: JCZProgram) -> Pattern:
    """Translate a {J, CZ} program into a measurement pattern.

    The returned pattern's input nodes are ``0..n-1`` (one per qubit) and its
    output nodes are the final wire nodes after all J gates.  Commands appear
    in generation order; call :func:`standardize` to obtain standard form.
    """
    num_qubits = program.num_qubits
    pattern = Pattern(name=program.name)
    pattern.input_nodes = list(range(num_qubits))

    current: Dict[int, int] = {q: q for q in range(num_qubits)}
    # Pending correction domains are integer bitsets; the commutation rules
    # below are plain XOR/OR mask arithmetic.
    x_domain: Dict[int, int] = {q: 0 for q in range(num_qubits)}
    z_domain: Dict[int, int] = {q: 0 for q in range(num_qubits)}
    next_node = num_qubits

    for op in program.operations:
        if isinstance(op, JGate):
            u = current[op.qubit]
            v = next_node
            next_node += 1
            pattern.prepare(v)
            pattern.entangle(u, v)
            # Pending X on u becomes Z on v when commuted through E(u, v).
            x_domain[v] = 0
            z_domain[v] = x_domain[u]
            # Measure u with the pending corrections folded into the domains.
            pattern.measure(
                u, angle=-op.angle, s_domain=x_domain[u], t_domain=z_domain[u]
            )
            # The J pattern's own byproduct: X_v conditioned on the outcome of u.
            x_domain[v] ^= 1 << u
            current[op.qubit] = v
        elif isinstance(op, CZGate):
            u = current[op.qubit_a]
            v = current[op.qubit_b]
            pattern.entangle(u, v)
            # CZ commutes X on one side into Z on the other side.
            z_domain[v] ^= x_domain[u]
            z_domain[u] ^= x_domain[v]
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected operation {op!r}")

    pattern.output_nodes = [current[q] for q in range(num_qubits)]
    for qubit in range(num_qubits):
        node = current[qubit]
        if x_domain[node]:
            pattern.correct(node, x_domain[node], "X")
        if z_domain[node]:
            pattern.correct(node, z_domain[node], "Z")
    pattern.validate()
    return pattern


def circuit_to_pattern(circuit: QuantumCircuit, standard_form: bool = False) -> Pattern:
    """Translate a gate-level circuit into a measurement pattern.

    Args:
        circuit: The source circuit (any gate supported by the front end).
        standard_form: If True, return the pattern re-ordered into
            N*, E*, M*, C* standard form.
    """
    pattern = jcz_to_pattern(decompose_to_jcz(circuit))
    if standard_form:
        pattern = standardize(pattern)
    return pattern


def standardize(pattern: Pattern) -> Pattern:
    """Return ``pattern`` re-ordered into N*, E*, M*, C* standard form.

    The reordering is valid for patterns whose correction domains were
    already propagated at construction time (every pattern produced by
    :func:`jcz_to_pattern`): preparations and entanglements commute with
    measurements of other nodes, and the relative order of measurements is
    preserved, so all adaptive domains still refer to earlier outcomes.
    """
    prepares: List[PrepareCommand] = []
    entangles: List[EntangleCommand] = []
    measures: List[MeasureCommand] = []
    corrections: List[CorrectionCommand] = []
    for command in pattern.commands:
        if isinstance(command, PrepareCommand):
            prepares.append(command)
        elif isinstance(command, EntangleCommand):
            entangles.append(command)
        elif isinstance(command, MeasureCommand):
            measures.append(command)
        elif isinstance(command, CorrectionCommand):
            corrections.append(command)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected command {command!r}")
    result = Pattern(
        input_nodes=list(pattern.input_nodes),
        output_nodes=list(pattern.output_nodes),
        commands=[*prepares, *entangles, *measures, *corrections],
        name=pattern.name,
        removed_nodes=set(pattern.removed_nodes),
    )
    result.validate()
    return result
