"""The :class:`Pattern` container for MBQC programs.

A pattern bundles the command sequence with the sets of input and output
nodes.  It provides validation (definiteness conditions of the measurement
calculus), standard-form checks, and the derived views used by the compiler
stack: the graph state, the set of measured nodes, measurement angles, and
simple statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.mbqc.commands import (
    CorrectionCommand,
    EntangleCommand,
    MeasureCommand,
    PrepareCommand,
)
from repro.utils.errors import ValidationError

__all__ = ["Pattern"]


@dataclass
class Pattern:
    """An MBQC measurement pattern.

    Attributes:
        input_nodes: Nodes carrying the (logical) input state; they are not
            prepared by an N command.
        output_nodes: Nodes left unmeasured; they carry the output state.
        commands: The command sequence, in execution order.
        name: Optional label carried from the source program.
        removed_nodes: Nodes that are measured in the Z basis purely to
            disentangle them ("removees" in the paper's terminology); they
            do not contribute to the required photon lifetime.
    """

    input_nodes: List[int] = field(default_factory=list)
    output_nodes: List[int] = field(default_factory=list)
    commands: List[object] = field(default_factory=list)
    name: str = "pattern"
    removed_nodes: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def add(self, command: object) -> "Pattern":
        """Append a command."""
        self.commands.append(command)
        return self

    def prepare(self, node: int) -> "Pattern":
        """Append ``N(node)``."""
        return self.add(PrepareCommand(node))

    def entangle(self, node_a: int, node_b: int) -> "Pattern":
        """Append ``E(node_a, node_b)``."""
        return self.add(EntangleCommand(node_a, node_b))

    def measure(
        self,
        node: int,
        angle: float = 0.0,
        s_domain: Iterable[int] = (),
        t_domain: Iterable[int] = (),
    ) -> "Pattern":
        """Append ``M(node, angle, s_domain, t_domain)``."""
        return self.add(MeasureCommand(node, angle, s_domain, t_domain))

    def correct(self, node: int, domain: Iterable[int], pauli: str = "X") -> "Pattern":
        """Append a conditional Pauli correction on ``node``."""
        return self.add(CorrectionCommand(node, domain, pauli))

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> List[int]:
        """All node labels mentioned by the pattern, sorted."""
        seen: Set[int] = set(self.input_nodes) | set(self.output_nodes)
        for command in self.commands:
            if isinstance(command, PrepareCommand):
                seen.add(command.node)
            elif isinstance(command, EntangleCommand):
                seen.update(command.nodes)
            elif isinstance(command, (MeasureCommand, CorrectionCommand)):
                seen.add(command.node)
        return sorted(seen)

    @property
    def num_nodes(self) -> int:
        """Total number of distinct nodes."""
        return len(self.nodes)

    @property
    def prepared_nodes(self) -> List[int]:
        """Nodes created by N commands, in order of preparation."""
        return [c.node for c in self.commands if isinstance(c, PrepareCommand)]

    @property
    def measured_nodes(self) -> List[int]:
        """Nodes consumed by M commands, in measurement order."""
        return [c.node for c in self.commands if isinstance(c, MeasureCommand)]

    @property
    def entangle_commands(self) -> List[EntangleCommand]:
        """All E commands in order."""
        return [c for c in self.commands if isinstance(c, EntangleCommand)]

    @property
    def measure_commands(self) -> List[MeasureCommand]:
        """All M commands in order."""
        return [c for c in self.commands if isinstance(c, MeasureCommand)]

    @property
    def correction_commands(self) -> List[CorrectionCommand]:
        """All X/Z correction commands in order."""
        return [c for c in self.commands if isinstance(c, CorrectionCommand)]

    def edges(self) -> List[Tuple[int, int]]:
        """Return the distinct graph-state edges (sorted node pairs)."""
        return sorted({c.sorted_nodes() for c in self.entangle_commands})

    def measurement_angle(self, node: int) -> Optional[float]:
        """Return the nominal measurement angle of ``node`` (None if output)."""
        for command in self.commands:
            if isinstance(command, MeasureCommand) and command.node == node:
                return command.angle
        return None

    def neighbors(self, node: int) -> Set[int]:
        """Return the graph-state neighbourhood of ``node``."""
        result: Set[int] = set()
        for a, b in self.edges():
            if a == node:
                result.add(b)
            elif b == node:
                result.add(a)
        return result

    def content_hash(self) -> str:
        """Stable content hash (nodes, command sequence, domains).

        Used by :mod:`repro.pipeline` to address cached downstream
        artifacts; any change to the command sequence, an angle or a
        correction domain yields a different hash.
        """
        from repro.pipeline.hashing import pattern_hash  # deferred: layering

        return pattern_hash(self)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the measurement-calculus definiteness conditions.

        Raises:
            ValidationError: if a node is used before preparation, measured
                twice, entangled after being measured, if an output node is
                measured, or if a correction domain references a node that is
                never measured before the correction.
        """
        alive: Set[int] = set(self.input_nodes)
        outputs: Set[int] = set(self.output_nodes)
        measured: Set[int] = set()
        # Domain checks run on the bitset representation: "every domain node
        # is already measured" is one mask AND per command.
        measured_mask = 0
        for index, command in enumerate(self.commands):
            if isinstance(command, PrepareCommand):
                if command.node in alive or command.node in measured:
                    raise ValidationError(
                        f"command {index}: node {command.node} prepared twice"
                    )
                alive.add(command.node)
            elif isinstance(command, EntangleCommand):
                for node in command.nodes:
                    if node in measured:
                        raise ValidationError(
                            f"command {index}: entangling measured node {node}"
                        )
                    if node not in alive:
                        raise ValidationError(
                            f"command {index}: entangling unprepared node {node}"
                        )
            elif isinstance(command, MeasureCommand):
                if command.node not in alive:
                    raise ValidationError(
                        f"command {index}: measuring unprepared node {command.node}"
                    )
                if command.node in measured:
                    raise ValidationError(
                        f"command {index}: node {command.node} measured twice"
                    )
                if command.node in outputs:
                    raise ValidationError(
                        f"command {index}: output node {command.node} measured"
                    )
                unmeasured = (command.s_mask | command.t_mask) & ~measured_mask
                if unmeasured:
                    dep = (unmeasured & -unmeasured).bit_length() - 1
                    raise ValidationError(
                        f"command {index}: measurement of {command.node} depends "
                        f"on node {dep} which has not been measured yet"
                    )
                alive.discard(command.node)
                measured.add(command.node)
                measured_mask |= 1 << command.node
            elif isinstance(command, CorrectionCommand):
                if command.node not in alive:
                    raise ValidationError(
                        f"command {index}: correcting non-alive node {command.node}"
                    )
                unmeasured = command.mask & ~measured_mask
                if unmeasured:
                    dep = (unmeasured & -unmeasured).bit_length() - 1
                    raise ValidationError(
                        f"command {index}: correction on {command.node} depends "
                        f"on unmeasured node {dep}"
                    )
            else:
                raise ValidationError(f"command {index}: unknown command {command!r}")
        for node in self.output_nodes:
            if node in measured:
                raise ValidationError(f"output node {node} was measured")
            if node not in alive:
                raise ValidationError(f"output node {node} was never prepared")

    def is_standard_form(self) -> bool:
        """Return True if commands appear in N*, E*, M*, (X|Z)* order."""
        order = {"N": 0, "E": 1, "M": 2, "X": 3, "Z": 3}
        last = 0
        for command in self.commands:
            rank = order[command.kind.value]
            if rank < last:
                return False
            last = rank
        return True

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def statistics(self) -> Dict[str, int]:
        """Return basic size statistics used in reports and Table II."""
        return {
            "nodes": self.num_nodes,
            "inputs": len(self.input_nodes),
            "outputs": len(self.output_nodes),
            "edges": len(self.edges()),
            "measurements": len(self.measure_commands),
            "corrections": len(self.correction_commands),
            "removed": len(self.removed_nodes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.statistics()
        return (
            f"Pattern(name={self.name!r}, nodes={stats['nodes']}, "
            f"edges={stats['edges']}, measurements={stats['measurements']})"
        )
