"""Statevector simulation of measurement patterns.

The simulator executes a pattern command by command: N adds a ``|+>`` qubit,
E applies CZ, M performs an adaptive projective measurement (with the angle
adjusted by the parities of the s- and t-domains) and removes the qubit, and
X/Z corrections apply conditional Paulis.  Because patterns produced by
:func:`repro.mbqc.translate.jcz_to_pattern` interleave preparation and
measurement, only ``n_qubits + 1`` nodes are alive at any time and the
simulation cost stays comparable to circuit simulation.

The headline use of this module is the determinism check in the test suite:
for *any* sequence of random measurement outcomes, the output state (after
the final byproduct corrections) must match the original circuit's output up
to global phase.  That is the defining property of a correct MBQC translation
(Section II-A of the paper).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.mbqc.commands import (
    CorrectionCommand,
    EntangleCommand,
    MeasureCommand,
    PrepareCommand,
)
from repro.mbqc.pattern import Pattern
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = ["PatternSimulator", "simulate_pattern"]

_PLUS = np.array([1.0, 1.0], dtype=complex) / math.sqrt(2.0)
_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)


class PatternSimulator:
    """Execute an MBQC pattern on a dense statevector.

    Args:
        pattern: The pattern to run.  It must validate.
        input_state: Optional statevector over the pattern's input nodes (in
            ``pattern.input_nodes`` order).  Defaults to ``|+>^n``, the state
            an all-``N`` preparation would produce.
        seed: RNG seed for measurement outcomes.
        forced_outcomes: Optional mapping ``{node: 0 or 1}`` forcing specific
            branches; unspecified nodes are sampled from the Born rule.
    """

    def __init__(
        self,
        pattern: Pattern,
        input_state: Optional[np.ndarray] = None,
        seed: Optional[int] = None,
        forced_outcomes: Optional[Dict[int, int]] = None,
    ) -> None:
        pattern.validate()
        self.pattern = pattern
        self.rng = make_rng(seed)
        self.forced_outcomes = dict(forced_outcomes or {})
        self.outcomes: Dict[int, int] = {}
        # Bitset of reported-1 outcomes; signal parities are one AND+popcount.
        self._outcome_mask = 0

        self._live_nodes: List[int] = list(pattern.input_nodes)
        n_inputs = len(self._live_nodes)
        if input_state is None:
            # |+>^n is the uniform real vector (1/sqrt(2))^n — build it
            # directly instead of kron-ing n factors together.
            self._state = np.full(2**n_inputs, (0.5**0.5) ** n_inputs, dtype=complex)
        else:
            input_state = np.asarray(input_state, dtype=complex).ravel()
            if input_state.shape != (2**n_inputs,):
                raise ValueError("input state has the wrong dimension")
            self._state = input_state / np.linalg.norm(input_state)

    # ------------------------------------------------------------------ #
    # Internal tensor helpers
    # ------------------------------------------------------------------ #

    def _axis(self, node: int) -> int:
        try:
            return self._live_nodes.index(node)
        except ValueError as exc:
            raise ValidationError(f"node {node} is not alive") from exc

    def _apply_single(self, matrix: np.ndarray, node: int) -> None:
        axis = self._axis(node)
        n = len(self._live_nodes)
        tensor = self._state.reshape([2] * n)
        tensor = np.moveaxis(tensor, axis, 0).reshape(2, -1)
        tensor = matrix @ tensor
        tensor = np.moveaxis(tensor.reshape([2] + [2] * (n - 1)), 0, axis)
        self._state = tensor.reshape(-1)

    def _apply_cz(self, node_a: int, node_b: int) -> None:
        axis_a = self._axis(node_a)
        axis_b = self._axis(node_b)
        n = len(self._live_nodes)
        tensor = self._state.reshape([2] * n)
        index = [slice(None)] * n
        index[axis_a] = 1
        index[axis_b] = 1
        tensor[tuple(index)] *= -1.0
        self._state = tensor.reshape(-1)

    # ------------------------------------------------------------------ #
    # Command execution
    # ------------------------------------------------------------------ #

    def _execute_prepare(self, command: PrepareCommand) -> None:
        if command.node in self._live_nodes:
            raise ValidationError(f"node {command.node} already alive")
        self._live_nodes.append(command.node)
        # kron with |+> appends one axis: an outer product followed by a
        # flatten, without kron's generic block bookkeeping.
        self._state = (self._state[:, None] * _PLUS[None, :]).reshape(-1)

    def _execute_entangle(self, command: EntangleCommand) -> None:
        self._apply_cz(command.node_a, command.node_b)

    def _parity(self, mask: int) -> int:
        """Signal parity of a domain bitset given the recorded outcomes."""
        return (mask & self._outcome_mask).bit_count() & 1

    def _execute_measure(self, command: MeasureCommand) -> None:
        s = self._parity(command.s_mask)
        t = self._parity(command.t_mask)
        angle = ((-1.0) ** s) * command.angle + t * math.pi

        axis = self._axis(command.node)
        n = len(self._live_nodes)
        tensor = self._state.reshape([2] * n)
        tensor = np.moveaxis(tensor, axis, 0).reshape(2, -1)

        # Projectors onto |+_angle> and |-_angle>.
        phase = np.exp(1j * angle)
        plus_branch = (tensor[0] + np.conj(phase) * tensor[1]) / math.sqrt(2.0)
        minus_branch = (tensor[0] - np.conj(phase) * tensor[1]) / math.sqrt(2.0)
        p_plus = float(np.vdot(plus_branch, plus_branch).real)
        p_minus = float(np.vdot(minus_branch, minus_branch).real)
        total = p_plus + p_minus

        forced = command.node in self.forced_outcomes
        if forced:
            outcome = int(self.forced_outcomes[command.node])
        else:
            outcome = int(self.rng.random() < (p_minus / total))
        branch = minus_branch if outcome == 1 else plus_branch
        probability = p_minus if outcome == 1 else p_plus
        if probability < 1e-12:
            if forced:
                # A correct translation makes every measurement outcome
                # equally likely (the defining determinism property), so a
                # forced branch of probability ~0 means the pattern — not the
                # caller — is broken.  Silently flipping here used to mask
                # byproduct-tracking bugs in equivalence tests.
                raise ValidationError(
                    f"forced outcome {outcome} on node {command.node} has "
                    f"probability {probability:.3g}; the pattern does not "
                    "support this measurement branch"
                )
            # Sampled onto a zero-probability branch (numerically possible
            # when one branch has probability ~1): take the other one.
            outcome = 1 - outcome
            branch = minus_branch if outcome == 1 else plus_branch
            probability = p_minus if outcome == 1 else p_plus
        self.outcomes[command.node] = outcome
        if outcome:
            self._outcome_mask |= 1 << command.node

        branch = branch / math.sqrt(probability)
        self._live_nodes.pop(axis)
        self._state = branch.reshape(-1)

    def _execute_correction(self, command: CorrectionCommand) -> None:
        if self._parity(command.mask) == 0:
            return
        matrix = _X if command.pauli == "X" else _Z
        self._apply_single(matrix, command.node)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self) -> np.ndarray:
        """Execute all commands and return the output state.

        The returned statevector is over the pattern's output nodes, in
        ``pattern.output_nodes`` order (first output node = most significant
        bit), which matches the circuit simulator's qubit convention.
        """
        for command in self.pattern.commands:
            if isinstance(command, PrepareCommand):
                self._execute_prepare(command)
            elif isinstance(command, EntangleCommand):
                self._execute_entangle(command)
            elif isinstance(command, MeasureCommand):
                self._execute_measure(command)
            elif isinstance(command, CorrectionCommand):
                self._execute_correction(command)
            else:  # pragma: no cover - defensive
                raise ValidationError(f"unknown command {command!r}")
        return self.output_state()

    def output_state(self) -> np.ndarray:
        """Return the current state re-ordered to ``pattern.output_nodes``."""
        outputs = list(self.pattern.output_nodes)
        if sorted(outputs) != sorted(self._live_nodes):
            raise ValidationError(
                "live nodes do not match the declared output nodes; "
                "did the pattern measure everything it should?"
            )
        n = len(outputs)
        tensor = self._state.reshape([2] * n)
        current_axes = [self._live_nodes.index(node) for node in outputs]
        tensor = np.moveaxis(tensor, current_axes, range(n))
        return tensor.reshape(-1)


def simulate_pattern(
    pattern: Pattern,
    input_state: Optional[np.ndarray] = None,
    seed: Optional[int] = None,
    forced_outcomes: Optional[Dict[int, int]] = None,
) -> np.ndarray:
    """Convenience wrapper: build a :class:`PatternSimulator` and run it."""
    simulator = PatternSimulator(
        pattern, input_state=input_state, seed=seed, forced_outcomes=forced_outcomes
    )
    return simulator.run()
