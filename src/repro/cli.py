"""Command-line interface for the DC-MBQC reproduction.

Three subcommands cover the common workflows::

    python -m repro.cli compile --program QFT --qubits 16 --qpus 4
    python -m repro.cli compare --program VQE --qubits 16 --qpus 8 --rsg 4-ring
    python -m repro.cli experiment --name table3

``compile`` runs the distributed compiler and prints the schedule summary,
``compare`` additionally compiles the monolithic baseline and reports the
improvement factors, and ``experiment`` regenerates one of the paper's
tables or figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import DCMBQCCompiler, DCMBQCConfig, compare_with_baseline
from repro.hardware.resource_states import ResourceStateType
from repro.programs import build_benchmark
from repro.programs.registry import paper_grid_size
from repro.reporting import experiments, render

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dc-mbqc",
        description="DC-MBQC: distributed compilation for measurement-based quantum computing",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--program", default="QFT", help="QAOA, VQE, QFT or RCA")
        sub.add_argument("--qubits", type=int, default=16)
        sub.add_argument("--qpus", type=int, default=4)
        sub.add_argument("--grid-size", type=int, default=None)
        sub.add_argument("--rsg", default="5-star", help="4-ring, 5-star, 6-ring or 7-star")
        sub.add_argument("--kmax", type=int, default=4)
        sub.add_argument("--no-bdir", action="store_true", help="disable BDIR refinement")
        sub.add_argument("--seed", type=int, default=0)

    compile_parser = subparsers.add_parser("compile", help="run the distributed compiler")
    add_program_arguments(compile_parser)

    compare_parser = subparsers.add_parser("compare", help="compare against a monolithic baseline")
    add_program_arguments(compare_parser)
    compare_parser.add_argument("--baseline", default="oneq", choices=["oneq", "oneadapt"])

    experiment_parser = subparsers.add_parser("experiment", help="regenerate a paper table/figure")
    experiment_parser.add_argument(
        "--name",
        required=True,
        choices=[
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
        ],
    )
    experiment_parser.add_argument(
        "--scale",
        default="reduced",
        choices=[scale.value for scale in experiments.BenchmarkScale],
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> DCMBQCConfig:
    grid_size = args.grid_size or paper_grid_size(args.qubits)
    return DCMBQCConfig(
        num_qpus=args.qpus,
        grid_size=grid_size,
        rsg_type=ResourceStateType.from_name(args.rsg),
        connection_capacity=args.kmax,
        use_bdir=not args.no_bdir,
        seed=args.seed,
    )


def _run_compile(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.program, args.qubits, seed=2026)
    config = _config_from_args(args)
    result = DCMBQCCompiler(config).compile(circuit)
    summary = result.summary()
    print(f"Distributed compilation of {args.program}-{args.qubits} on {args.qpus} QPUs")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.program, args.qubits, seed=2026)
    config = _config_from_args(args)
    comparison = compare_with_baseline(circuit, config, baseline=args.baseline)
    row = comparison.as_row()
    print(f"{args.program}-{args.qubits} vs {args.baseline} ({args.qpus} QPUs, {args.rsg})")
    for key, value in row.items():
        print(f"  {key}: {value}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    scale = experiments.BenchmarkScale(args.scale)
    name = args.name
    if name == "table1":
        print(render.render_table1(experiments.table1_rows()))
    elif name == "table2":
        print(render.render_table2(experiments.table2_rows(scale)))
    elif name == "table3":
        rows = experiments.table3_rows(scale)
        print(render.render_comparison_table(rows, "Table III — 4 QPUs, 5-star RSG, vs OneQ"))
    elif name == "table4":
        rows = experiments.table4_rows(scale)
        print(render.render_comparison_table(rows, "Table IV — 8 QPUs, 4-ring RSG, vs OneQ"))
    elif name == "table5":
        print(render.render_series(experiments.table5_rows(scale), "Table V — vs OneAdapt"))
    elif name == "table6":
        print(render.render_table6(experiments.table6_rows()))
    elif name == "figure1":
        print(render.render_series(experiments.figure1_series(), "Figure 1 — photon loss"))
    elif name == "figure7":
        print(render.render_series(experiments.figure7_series(), "Figure 7 — resource states"))
    elif name == "figure8":
        print(render.render_series(experiments.figure8_series(), "Figure 8 — K_max sensitivity"))
    elif name == "figure9":
        print(render.render_series(experiments.figure9_series(), "Figure 9 — alpha_max robustness"))
    elif name == "figure10":
        print(render.render_series(experiments.figure10_series(), "Figure 10 — compile-time scaling"))
    else:  # pragma: no cover - argparse enforces choices
        raise ValueError(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "compile": _run_compile,
        "compare": _run_compare,
        "experiment": _run_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
