"""Command-line interface for the DC-MBQC reproduction.

Six subcommands cover the common workflows::

    python -m repro.cli compile --program QFT --qubits 16 --qpus 4
    python -m repro.cli compare --program VQE --qubits 16 --qpus 8 --rsg 4-ring
    python -m repro.cli experiment --name table3
    python -m repro.cli sweep --grid table3 --workers 8 --out results/table3
    python -m repro.cli trace summarize out.json
    python -m repro.cli bench diff old/BENCH_figure10.json new/BENCH_figure10.json

``compile`` runs the distributed compiler and prints the schedule summary,
``compare`` additionally compiles the monolithic baseline and reports the
improvement factors, ``experiment`` regenerates one of the paper's tables or
figures in-process, and ``sweep`` evaluates the same grids through the
parallel sweep engine with a resumable on-disk result store (re-running the
same command skips every completed point; ``--csv`` exports the run table).
``compile`` and ``sweep`` take ``--trace [PATH]`` to record a
:mod:`repro.obs` span trace and export it as Chrome trace-event JSON;
``trace summarize`` renders an exported file as a text tree plus a self-time
table, and ``bench diff`` compares two ``BENCH_*.json`` perf trajectories,
exiting non-zero on op-counter regressions.

``compile`` and ``sweep`` route through the staged compilation pipeline
(:mod:`repro.pipeline`): ``--cache-dir`` points the content-addressed
artifact cache at a directory (overriding ``DCMBQC_ARTIFACT_CACHE_DIR``),
``--no-cache`` disables it, and ``--json`` emits a machine-readable summary
including per-stage cache hit/miss counts.

``compile``, ``compare`` and ``sweep`` accept the system-model flags:
``--topology`` picks a named interconnect (line, ring, star, 2D grid,
torus) and ``--system-spec path.json`` loads a full custom system — per-QPU
grid sizes / resource states / K_max plus an explicit link list — so
topology ablations and heterogeneous fleets are reachable from the shell.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import DCMBQCCompiler, DCMBQCConfig, compare_with_baseline
from repro.hardware.qpu import InterconnectTopology
from repro.obs.bench_diff import DEFAULT_SLACK, DEFAULT_TOLERANCE, diff_bench_files
from repro.obs.export import (
    load_chrome_trace,
    render_span_tree,
    render_top_spans,
    write_chrome_trace,
)
from repro.obs.trace import TRACE_ENV, TRACER
from repro.hardware.resource_states import ResourceStateType
from repro.pipeline import CACHE_DIR_ENV, CACHE_DISABLE_ENV, resolve_store
from repro.programs import build_benchmark
from repro.programs.registry import benchmark_names, paper_grid_size
from repro.reporting import experiments, render
from repro.sweep import GRID_REGISTRY, ResultStore, SweepRunner

__all__ = ["main", "build_parser", "EXPERIMENT_REGISTRY"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One entry of the experiment registry.

    Attributes:
        driver: ``scale -> rows`` function producing the artefact's data.
        renderer: ``rows -> str`` function producing the paper-style table.
    """

    driver: Callable[[experiments.BenchmarkScale], Sequence]
    renderer: Callable[[Sequence], str]


#: Experiment name → (driver, renderer); single source of truth for the
#: ``experiment --name`` dispatch and reused for the ``sweep --grid`` choices.
EXPERIMENT_REGISTRY: Dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        lambda scale: experiments.table1_rows(), render.render_table1
    ),
    "table2": ExperimentSpec(experiments.table2_rows, render.render_table2),
    "table3": ExperimentSpec(
        experiments.table3_rows,
        lambda rows: render.render_comparison_table(
            rows, "Table III — 4 QPUs, 5-star RSG, vs OneQ"
        ),
    ),
    "table4": ExperimentSpec(
        experiments.table4_rows,
        lambda rows: render.render_comparison_table(
            rows, "Table IV — 8 QPUs, 4-ring RSG, vs OneQ"
        ),
    ),
    "table5": ExperimentSpec(
        experiments.table5_rows,
        lambda rows: render.render_series(rows, "Table V — vs OneAdapt"),
    ),
    "table6": ExperimentSpec(
        lambda scale: experiments.table6_rows(), render.render_table6
    ),
    "table7": ExperimentSpec(experiments.table7_rows, render.render_table7),
    "table8": ExperimentSpec(experiments.table8_rows, render.render_table8),
    "figure1": ExperimentSpec(
        lambda scale: experiments.figure1_series(),
        lambda rows: render.render_series(rows, "Figure 1 — photon loss"),
    ),
    "figure7": ExperimentSpec(
        lambda scale: experiments.figure7_series(),
        lambda rows: render.render_series(rows, "Figure 7 — resource states"),
    ),
    "figure8": ExperimentSpec(
        lambda scale: experiments.figure8_series(),
        lambda rows: render.render_series(rows, "Figure 8 — K_max sensitivity"),
    ),
    "figure9": ExperimentSpec(
        lambda scale: experiments.figure9_series(),
        lambda rows: render.render_series(rows, "Figure 9 — alpha_max robustness"),
    ),
    "figure10": ExperimentSpec(
        lambda scale: experiments.figure10_series(),
        lambda rows: render.render_series(rows, "Figure 10 — compile-time scaling"),
    ),
}

#: Experiments that can also run as parallel sweeps (grid factory exists).
SWEEPABLE_GRIDS: List[str] = [
    name for name in EXPERIMENT_REGISTRY if name in GRID_REGISTRY
]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dc-mbqc",
        description="DC-MBQC: distributed compilation for measurement-based quantum computing",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--program",
            default="QFT",
            help="benchmark family: " + ", ".join(benchmark_names()),
        )
        sub.add_argument(
            "--benchmark",
            dest="program",
            default=argparse.SUPPRESS,
            help="alias for --program",
        )
        sub.add_argument("--qubits", type=int, default=16)
        sub.add_argument("--qpus", type=int, default=4)
        sub.add_argument("--grid-size", type=int, default=None)
        sub.add_argument("--rsg", default="5-star", help="4-ring, 5-star, 6-ring or 7-star")
        sub.add_argument("--kmax", type=int, default=4)
        sub.add_argument("--no-bdir", action="store_true", help="disable BDIR refinement")
        sub.add_argument("--seed", type=int, default=0)
        add_system_arguments(sub)

    def add_system_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--topology",
            default=None,
            choices=[t.value for t in InterconnectTopology if t is not InterconnectTopology.CUSTOM],
            help="interconnect topology between QPUs (default: fully-connected)",
        )
        sub.add_argument(
            "--system-spec",
            default=None,
            metavar="PATH.json",
            help="custom system description (per-QPU specs + explicit links); "
            "overrides --qpus/--grid-size/--rsg/--topology",
        )

    def add_cache_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            default=None,
            help=f"artifact-cache directory (overrides ${CACHE_DIR_ENV})",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the content-addressed artifact cache",
        )
        sub.add_argument(
            "--json",
            action="store_true",
            help="print a machine-readable JSON summary instead of text",
        )

    def add_trace_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            nargs="?",
            const="trace.json",
            default=None,
            metavar="PATH.json",
            help="record a span trace and export it as Chrome trace-event "
            "JSON (load in Perfetto); ${DCMBQC_TRACE_DETERMINISTIC}=1 "
            "timestamps spans by op-counter ticks for byte-stable output",
        )

    compile_parser = subparsers.add_parser("compile", help="run the distributed compiler")
    add_program_arguments(compile_parser)
    add_cache_arguments(compile_parser)
    add_trace_argument(compile_parser)
    compile_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a stage-by-stage timing table from the provenance manifest",
    )

    compare_parser = subparsers.add_parser("compare", help="compare against a monolithic baseline")
    add_program_arguments(compare_parser)
    compare_parser.add_argument("--baseline", default="oneq", choices=["oneq", "oneadapt"])

    experiment_parser = subparsers.add_parser("experiment", help="regenerate a paper table/figure")
    experiment_parser.add_argument(
        "--name", required=True, choices=list(EXPERIMENT_REGISTRY)
    )
    experiment_parser.add_argument(
        "--scale",
        default="reduced",
        choices=[scale.value for scale in experiments.BenchmarkScale],
    )

    def positive_int(value: str) -> int:
        count = int(value)
        if count < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return count

    def non_negative_int(value: str) -> int:
        count = int(value)
        if count < 0:
            raise argparse.ArgumentTypeError("must be non-negative")
        return count

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a parameter grid through the parallel sweep engine"
    )
    sweep_parser.add_argument("--grid", required=True, choices=SWEEPABLE_GRIDS)
    sweep_parser.add_argument("--workers", type=positive_int, default=1)
    sweep_parser.add_argument(
        "--out", required=True, help="result-store directory (or .jsonl path)"
    )
    sweep_parser.add_argument(
        "--scale",
        default="reduced",
        choices=[scale.value for scale in experiments.BenchmarkScale],
    )
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--retries", type=non_negative_int, default=1, help="retries per failed point"
    )
    sweep_parser.add_argument(
        "--csv", default=None, help="export the run table to this CSV after the sweep"
    )
    add_system_arguments(sweep_parser)
    add_cache_arguments(sweep_parser)
    add_trace_argument(sweep_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect exported Chrome trace files"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize_parser = trace_sub.add_parser(
        "summarize", help="print the span tree and a top-N self-time table"
    )
    summarize_parser.add_argument("path", help="Chrome trace file (from --trace)")
    summarize_parser.add_argument(
        "--top", type=positive_int, default=10, help="rows in the self-time table"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark trajectory tools"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    diff_parser = bench_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json trajectories; exit 1 on counter regressions",
    )
    diff_parser.add_argument("baseline", help="baseline BENCH_*.json")
    diff_parser.add_argument("candidate", help="candidate BENCH_*.json")
    diff_parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative counter growth (default %(default)s)",
    )
    diff_parser.add_argument(
        "--slack",
        type=non_negative_int,
        default=DEFAULT_SLACK,
        help="absolute slack for tiny counters (default %(default)s)",
    )
    diff_parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    return parser


def _system_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """System-model config overrides from ``--topology``/``--system-spec``.

    A ``--system-spec`` JSON document wins over the flag-based description:
    its per-QPU specs set the fleet (heterogeneous grids, RSG shapes and
    ``K_max`` values) and its explicit links, when present, define a custom
    interconnect.
    """
    overrides: Dict[str, object] = {}
    if getattr(args, "topology", None):
        overrides["topology"] = InterconnectTopology(args.topology)
    spec_path = getattr(args, "system_spec", None)
    if spec_path:
        from repro.hardware.system import system_from_json

        system = system_from_json(spec_path)
        first = system.qpus[0]
        overrides.update(
            num_qpus=system.num_qpus,
            grid_size=first.grid_size,
            rsg_type=first.rsg_type,
            connection_capacity=first.connection_capacity,
            topology=system.topology,
            qpu_grid_sizes=tuple(qpu.grid_size for qpu in system.qpus),
            qpu_rsg_types=tuple(qpu.rsg_type for qpu in system.qpus),
            qpu_connection_capacities=tuple(
                qpu.connection_capacity for qpu in system.qpus
            ),
        )
        if system.topology is InterconnectTopology.CUSTOM:
            overrides["custom_links"] = tuple(
                (link.qpu_a, link.qpu_b, link.capacity) for link in system.links
            )
    return overrides


def _config_from_args(args: argparse.Namespace) -> DCMBQCConfig:
    grid_size = args.grid_size or paper_grid_size(args.qubits)
    base = dict(
        num_qpus=args.qpus,
        grid_size=grid_size,
        rsg_type=ResourceStateType.from_name(args.rsg),
        connection_capacity=args.kmax,
        use_bdir=not args.no_bdir,
        seed=args.seed,
    )
    base.update(_system_overrides(args))
    return DCMBQCConfig(**base)


def _apply_cache_arguments(args: argparse.Namespace) -> None:
    """Propagate the cache flags to the environment (reaches sweep workers)."""
    if args.no_cache:
        # Disable every cache layer, the in-process memo and task-level
        # computation caches included — not just the disk store.
        os.environ[CACHE_DIR_ENV] = ""
        os.environ[CACHE_DISABLE_ENV] = "1"
    elif args.cache_dir:
        os.environ[CACHE_DIR_ENV] = args.cache_dir


def _apply_trace_arguments(args: argparse.Namespace) -> bool:
    """Enable span tracing when ``--trace`` was given; returns the decision.

    Sets ``DCMBQC_TRACE`` so sweep worker processes inherit the setting
    through the environment (same channel as the cache flags).
    """
    if not getattr(args, "trace", None):
        return False
    os.environ[TRACE_ENV] = "1"
    TRACER.reset()
    TRACER.enable()
    return True


def _export_trace(args: argparse.Namespace) -> Dict[str, object]:
    """Write the buffered spans to ``args.trace``; returns a summary dict."""
    spans = TRACER.spans()
    path = write_chrome_trace(args.trace, spans, deterministic=TRACER.deterministic)
    return {"path": str(path), "spans": len(spans), "run_id": TRACER.run_id}


def _run_compile(args: argparse.Namespace) -> int:
    _apply_cache_arguments(args)
    tracing = _apply_trace_arguments(args)
    circuit = build_benchmark(args.program, args.qubits, seed=args.seed)
    config = _config_from_args(args)
    store = resolve_store(args.cache_dir, enabled=not args.no_cache)
    with TRACER.span(
        "cli.compile", program=args.program, qubits=args.qubits, qpus=config.num_qpus
    ):
        result, run = DCMBQCCompiler(config).compile_run(
            circuit, store=store, use_cache=not args.no_cache
        )
        if tracing:
            # Replay the schedule under the trace as well, so the exported
            # timeline covers the full compile → runtime story.
            from repro.runtime.executor import DistributedRuntime

            DistributedRuntime(result).run()
    summary = result.summary()
    manifest = run.manifest()
    trace_info = _export_trace(args) if tracing else None
    if args.json:
        document = {"summary": summary, "pipeline": manifest}
        if trace_info is not None:
            document["trace"] = trace_info
        print(json.dumps(document, default=str))
        return 0
    print(f"Distributed compilation of {args.program}-{args.qubits} on {args.qpus} QPUs")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    stages = ", ".join(
        f"{record['stage']}={record['status']}" for record in manifest["stages"]
    )
    print(
        f"cache: {manifest['cache_hits']} hits, {manifest['executions']} misses"
        f" ({stages})"
    )
    if trace_info is not None:
        print(f"trace: {trace_info['spans']} spans -> {trace_info['path']}")
    if args.profile:
        print()
        print(render_profile_table(manifest))
    return 0


def render_profile_table(manifest: Dict[str, object]) -> str:
    """Stage-by-stage timing table from a pipeline provenance manifest.

    The per-stage wall times are the pipeline's existing telemetry (recorded
    on every run); this renders them as the ``compile --profile`` report.
    """
    records = list(manifest["stages"])
    total = sum(float(record["seconds"]) for record in records) or 1.0
    width = max([len("stage")] + [len(str(record["stage"])) for record in records])
    lines = [
        f"{'stage'.ljust(width)} | status     | seconds  | share",
        f"{'-' * width}-+------------+----------+------",
    ]
    for record in records:
        seconds = float(record["seconds"])
        share = f"{100.0 * seconds / total:5.1f}%"
        lines.append(
            f"{str(record['stage']).ljust(width)} | {str(record['status']).ljust(10)} "
            f"| {seconds:8.4f} | {share}"
        )
    lines.append(
        f"{'total'.ljust(width)} | {''.ljust(10)} | {float(manifest['seconds']):8.4f} |"
    )
    return "\n".join(lines)


def _run_compare(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.program, args.qubits, seed=args.seed)
    config = _config_from_args(args)
    comparison = compare_with_baseline(circuit, config, baseline=args.baseline)
    row = comparison.as_row()
    print(f"{args.program}-{args.qubits} vs {args.baseline} ({args.qpus} QPUs, {args.rsg})")
    for key, value in row.items():
        print(f"  {key}: {value}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    scale = experiments.BenchmarkScale(args.scale)
    spec = EXPERIMENT_REGISTRY[args.name]
    print(spec.renderer(spec.driver(scale)))
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    _apply_cache_arguments(args)
    tracing = _apply_trace_arguments(args)
    scale = experiments.BenchmarkScale(args.scale)
    grid = GRID_REGISTRY[args.grid](scale, seed=args.seed)
    system_overrides = _system_overrides(args)
    if system_overrides:
        # Fixed overrides ride the sweep points' ``extra`` channel.  Grid
        # axes that sweep the same parameter (e.g. table8's topology axis,
        # or a num_qpus axis when --system-spec pins the fleet size) are
        # dropped — otherwise the axis value would win and clash with the
        # pinned per-QPU tuples on every expanded point.
        serialisable = {
            name: value.value if hasattr(value, "value") else value
            for name, value in system_overrides.items()
            if name not in ("grid_size", "connection_capacity", "rsg_type")
        }
        if "qpu_rsg_types" in serialisable:
            serialisable["qpu_rsg_types"] = tuple(
                ResourceStateType.from_name(rsg).value
                for rsg in serialisable["qpu_rsg_types"]
            )
        from repro.sweep import ParameterGrid

        remaining_axes = {
            name: values for name, values in grid.axes if name not in serialisable
        }
        if len(remaining_axes) != len(grid.axes):
            grid = ParameterGrid(grid.task, axes=remaining_axes, fixed=dict(grid.fixed))
        grid = grid.with_fixed(**serialisable)
    try:
        store = ResultStore(args.out)
    except OSError as exc:
        print(f"error: cannot open result store at {args.out}: {exc}", file=sys.stderr)
        return 2

    def progress(point, record, finished, total) -> None:
        status = record.get("status", "?")
        duration = record.get("duration_s")
        timing = f" ({duration:.2f}s)" if isinstance(duration, float) else ""
        print(f"[{finished}/{total}] {status} {point.task} {point.label}{timing}")

    runner = SweepRunner(
        workers=args.workers,
        retries=args.retries,
        progress=None if args.json else progress,
    )
    with TRACER.span(
        "cli.sweep", grid=args.grid, scale=scale.value, workers=args.workers
    ):
        outcome = runner.run(grid, store)
    summary = outcome.summary()
    cache = outcome.cache_summary()
    trace_info = _export_trace(args) if tracing else None
    exported = None
    if args.csv:
        exported = store.export_csv(args.csv)
    if args.json:
        document = {
            "grid": args.grid,
            "scale": scale.value,
            "workers": args.workers,
            "summary": summary,
            "cache": cache,
            "store": str(store.path),
            "csv_rows": exported,
        }
        if trace_info is not None:
            document["trace"] = trace_info
        print(json.dumps(document, default=str))
        return 1 if outcome.failed else 0
    print(
        f"Sweep {args.grid} (scale={scale.value}, workers={args.workers}): "
        f"{summary['total']} points, {summary['completed']} completed, "
        f"{summary['skipped']} skipped, {summary['failed']} failed"
    )
    print(f"cache: {cache['hits']} hits, {cache['misses']} misses")
    print(f"store: {store.path}")
    if trace_info is not None:
        print(f"trace: {trace_info['spans']} spans -> {trace_info['path']}")
    if exported is not None:
        print(f"exported {exported} rows to {args.csv}")
    return 1 if outcome.failed else 0


def _run_trace(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    print(render_span_tree(spans))
    print()
    print(render_top_spans(spans, top=args.top))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    try:
        diff = diff_bench_files(
            args.baseline, args.candidate, tolerance=args.tolerance, slack=args.slack
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.as_dict()))
    else:
        print(diff.report())
    return 0 if diff.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "compile": _run_compile,
        "compare": _run_compare,
        "experiment": _run_experiment,
        "sweep": _run_sweep,
        "trace": _run_trace,
        "bench": _run_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
