"""Command-line interface for the DC-MBQC reproduction.

Eight subcommands cover the common workflows::

    python -m repro.cli compile --program QFT --qubits 16 --qpus 4
    python -m repro.cli compare --program VQE --qubits 16 --qpus 8 --rsg 4-ring
    python -m repro.cli experiment --name table3
    python -m repro.cli sweep --grid table3 --workers 8 --out results/table3
    python -m repro.cli sweep status results/table3/results.jsonl
    python -m repro.cli trace summarize out.json --json
    python -m repro.cli trace flamegraph out.json --out out.collapsed
    python -m repro.cli metrics export metrics.json
    python -m repro.cli obs report --trace out.json --events run.events.jsonl
    python -m repro.cli bench diff old/BENCH_figure10.json new/BENCH_figure10.json

``compile`` runs the distributed compiler and prints the schedule summary,
``compare`` additionally compiles the monolithic baseline and reports the
improvement factors, ``experiment`` regenerates one of the paper's tables or
figures in-process, and ``sweep`` evaluates the same grids through the
parallel sweep engine with a resumable on-disk result store (re-running the
same command skips every completed point; ``--csv`` exports the run table).

The run-health flags (``compile`` and ``sweep``) feed :mod:`repro.obs`:
``--trace [PATH]`` records a span trace and exports it as Chrome trace-event
JSON; ``--events [PATH]`` journals a structured JSONL event log (manifest,
stage/cache events, errors with tracebacks, sweep point health);
``--metrics [PATH]`` dumps the metrics registry (histogram buckets included)
as JSON; ``--trace-resources`` / ``--trace-malloc`` annotate spans with
RSS/CPU deltas and tracemalloc peaks.  ``trace summarize`` renders an
exported trace as a text tree plus a self-time table (``--json`` for the
machine-readable form), ``trace flamegraph`` emits collapsed stacks for
flamegraph.pl/speedscope, ``metrics export`` renders a metrics dump as
Prometheus text, ``obs report`` merges trace + events + metrics into one
markdown run report, ``sweep status`` digests a result store into a health
summary (failure rate, duration quantiles, stragglers, tracebacks), and
``bench diff`` compares two ``BENCH_*.json`` perf trajectories, exiting
non-zero on op-counter regressions.

``compile`` and ``sweep`` route through the staged compilation pipeline
(:mod:`repro.pipeline`): ``--cache-dir`` points the content-addressed
artifact cache at a directory (overriding ``DCMBQC_ARTIFACT_CACHE_DIR``),
``--no-cache`` disables it, and ``--json`` emits a machine-readable summary
including per-stage cache hit/miss counts.

``compile``, ``compare`` and ``sweep`` accept the system-model flags:
``--topology`` picks a named interconnect (line, ring, star, 2D grid,
torus) and ``--system-spec path.json`` loads a full custom system — per-QPU
grid sizes / resource states / K_max plus an explicit link list — so
topology ablations and heterogeneous fleets are reachable from the shell.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import DCMBQCCompiler, DCMBQCConfig, compare_with_baseline
from repro.hardware.qpu import InterconnectTopology
from repro.obs.bench_diff import DEFAULT_SLACK, DEFAULT_TOLERANCE, diff_bench_files
from repro.obs.events import EVENTS, read_events
from repro.obs.export import (
    collapsed_stacks,
    load_chrome_trace,
    render_span_tree,
    render_top_spans,
    summarize_trace,
    write_chrome_trace,
    write_collapsed_stacks,
)
from repro.obs.exposition import render_prometheus
from repro.obs.metrics import METRICS
from repro.obs.report import build_report
from repro.obs.resources import RESOURCES, RESOURCES_ENV, TRACEMALLOC_ENV
from repro.obs.trace import DETERMINISTIC_ENV, TRACE_ENV, TRACER
from repro.hardware.resource_states import ResourceStateType
from repro.pipeline import CACHE_DIR_ENV, CACHE_DISABLE_ENV, resolve_store
from repro.programs import build_benchmark
from repro.programs.registry import benchmark_names, paper_grid_size
from repro.reporting import experiments, render
from repro.sweep import GRID_REGISTRY, ResultStore, SweepRunner

__all__ = ["main", "build_parser", "EXPERIMENT_REGISTRY"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One entry of the experiment registry.

    Attributes:
        driver: ``(scale, system_overrides) -> rows`` function producing the
            artefact's data; ``system_overrides`` is ``None`` or the
            serialised ``--topology``/``--system-spec`` description, which
            grid-backed drivers pin onto their parameter grid (static
            tables ignore it).
        renderer: ``rows -> str`` function producing the paper-style table.
    """

    driver: Callable[[experiments.BenchmarkScale, Optional[Dict[str, object]]], Sequence]
    renderer: Callable[[Sequence], str]


#: Experiment name → (driver, renderer); single source of truth for the
#: ``experiment --name`` dispatch and reused for the ``sweep --grid`` choices.
EXPERIMENT_REGISTRY: Dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        lambda scale, system=None: experiments.table1_rows(), render.render_table1
    ),
    "table2": ExperimentSpec(
        lambda scale, system=None: experiments.table2_rows(scale),
        render.render_table2,
    ),
    "table3": ExperimentSpec(
        lambda scale, system=None: experiments.table3_rows(
            scale, system_overrides=system
        ),
        lambda rows: render.render_comparison_table(
            rows, "Table III — 4 QPUs, 5-star RSG, vs OneQ"
        ),
    ),
    "table4": ExperimentSpec(
        lambda scale, system=None: experiments.table4_rows(
            scale, system_overrides=system
        ),
        lambda rows: render.render_comparison_table(
            rows, "Table IV — 8 QPUs, 4-ring RSG, vs OneQ"
        ),
    ),
    "table5": ExperimentSpec(
        lambda scale, system=None: experiments.table5_rows(
            scale, system_overrides=system
        ),
        lambda rows: render.render_series(rows, "Table V — vs OneAdapt"),
    ),
    "table6": ExperimentSpec(
        lambda scale, system=None: experiments.table6_rows(system_overrides=system),
        render.render_table6,
    ),
    "table7": ExperimentSpec(
        lambda scale, system=None: experiments.table7_rows(
            scale, system_overrides=system
        ),
        render.render_table7,
    ),
    "table8": ExperimentSpec(
        lambda scale, system=None: experiments.table8_rows(
            scale, system_overrides=system
        ),
        render.render_table8,
    ),
    "relay-ablation": ExperimentSpec(
        lambda scale, system=None: experiments.relay_ablation_rows(
            scale, system_overrides=system
        ),
        lambda rows: render.render_table8(
            rows, title="Pipelined vs atomic relay ablation (line interconnect)"
        ),
    ),
    "fault-sweep": ExperimentSpec(
        lambda scale, system=None: experiments.fault_sweep_rows(
            scale, system_overrides=system
        ),
        render.render_fault_sweep,
    ),
    "figure1": ExperimentSpec(
        lambda scale, system=None: experiments.figure1_series(),
        lambda rows: render.render_series(rows, "Figure 1 — photon loss"),
    ),
    "figure7": ExperimentSpec(
        lambda scale, system=None: experiments.figure7_series(
            system_overrides=system
        ),
        lambda rows: render.render_series(rows, "Figure 7 — resource states"),
    ),
    "figure8": ExperimentSpec(
        lambda scale, system=None: experiments.figure8_series(
            system_overrides=system
        ),
        lambda rows: render.render_series(rows, "Figure 8 — K_max sensitivity"),
    ),
    "figure9": ExperimentSpec(
        lambda scale, system=None: experiments.figure9_series(
            system_overrides=system
        ),
        lambda rows: render.render_series(rows, "Figure 9 — alpha_max robustness"),
    ),
    "figure10": ExperimentSpec(
        lambda scale, system=None: experiments.figure10_series(
            system_overrides=system
        ),
        lambda rows: render.render_series(rows, "Figure 10 — compile-time scaling"),
    ),
}

#: Experiments that can also run as parallel sweeps (grid factory exists).
SWEEPABLE_GRIDS: List[str] = [
    name for name in EXPERIMENT_REGISTRY if name in GRID_REGISTRY
]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dc-mbqc",
        description="DC-MBQC: distributed compilation for measurement-based quantum computing",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_program_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--program",
            default="QFT",
            help="benchmark family: " + ", ".join(benchmark_names()),
        )
        sub.add_argument(
            "--benchmark",
            dest="program",
            default=argparse.SUPPRESS,
            help="alias for --program",
        )
        sub.add_argument("--qubits", type=int, default=16)
        sub.add_argument("--qpus", type=int, default=4)
        sub.add_argument("--grid-size", type=int, default=None)
        sub.add_argument("--rsg", default="5-star", help="4-ring, 5-star, 6-ring or 7-star")
        sub.add_argument("--kmax", type=int, default=4)
        sub.add_argument("--no-bdir", action="store_true", help="disable BDIR refinement")
        sub.add_argument(
            "--bdir-starts",
            type=int,
            default=1,
            help="BDIR portfolio size: independently seeded refinement starts "
            "sharing the annealing move budget (default 1 = single start)",
        )
        sub.add_argument("--seed", type=int, default=0)
        add_system_arguments(sub)

    def add_system_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--topology",
            default=None,
            choices=[t.value for t in InterconnectTopology if t is not InterconnectTopology.CUSTOM],
            help="interconnect topology between QPUs (default: fully-connected)",
        )
        sub.add_argument(
            "--system-spec",
            default=None,
            metavar="PATH.json",
            help="custom system description (per-QPU specs + explicit links); "
            "overrides --qpus/--grid-size/--rsg/--topology",
        )

    def add_cache_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            default=None,
            help=f"artifact-cache directory (overrides ${CACHE_DIR_ENV})",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the content-addressed artifact cache",
        )
        sub.add_argument(
            "--json",
            action="store_true",
            help="print a machine-readable JSON summary instead of text",
        )

    def add_trace_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            nargs="?",
            const="trace.json",
            default=None,
            metavar="PATH.json",
            help="record a span trace and export it as Chrome trace-event "
            "JSON (load in Perfetto); ${DCMBQC_TRACE_DETERMINISTIC}=1 "
            "timestamps spans by op-counter ticks for byte-stable output",
        )
        sub.add_argument(
            "--events",
            nargs="?",
            const="run.events.jsonl",
            default=None,
            metavar="PATH.jsonl",
            help="journal a structured JSONL event log (run manifest, stage "
            "and cache events, errors with tracebacks, sweep point health)",
        )
        sub.add_argument(
            "--metrics",
            nargs="?",
            const="metrics.json",
            default=None,
            metavar="PATH.json",
            help="dump the metrics registry (histogram buckets included) as "
            "JSON after the run; render it with `metrics export`",
        )
        sub.add_argument(
            "--trace-resources",
            action="store_true",
            help="annotate spans with RSS and CPU-time deltas "
            "(forced off under ${DCMBQC_TRACE_DETERMINISTIC}=1)",
        )
        sub.add_argument(
            "--trace-malloc",
            action="store_true",
            help="additionally track tracemalloc allocation peaks per span "
            "(slower; implies --trace-resources)",
        )

    compile_parser = subparsers.add_parser("compile", help="run the distributed compiler")
    add_program_arguments(compile_parser)
    add_cache_arguments(compile_parser)
    add_trace_argument(compile_parser)
    compile_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a stage-by-stage timing table from the provenance manifest",
    )
    compile_parser.add_argument(
        "--inject-fault",
        action="append",
        metavar="SPEC",
        help="inject a seeded fault into the replay (repeatable), e.g. "
        "qpu:2@100, link:0-1@25%%, qpu:0@50%%+8:cap=1, loss:100ns",
    )
    compile_parser.add_argument(
        "--recovery",
        default="fail-fast",
        choices=["fail-fast", "reroute", "reschedule-frontier", "abort-recompile"],
        help="recovery policy applied to injected faults",
    )
    compile_parser.add_argument(
        "--fault-seed", type=int, default=0, help="seed for stochastic faults"
    )
    compile_parser.add_argument(
        "--fault-shots", type=int, default=1, help="seeded shots per fault spec"
    )

    compare_parser = subparsers.add_parser("compare", help="compare against a monolithic baseline")
    add_program_arguments(compare_parser)
    compare_parser.add_argument("--baseline", default="oneq", choices=["oneq", "oneadapt"])

    experiment_parser = subparsers.add_parser("experiment", help="regenerate a paper table/figure")
    experiment_parser.add_argument(
        "--name", required=True, choices=list(EXPERIMENT_REGISTRY)
    )
    experiment_parser.add_argument(
        "--scale",
        default="reduced",
        choices=[scale.value for scale in experiments.BenchmarkScale],
    )
    add_system_arguments(experiment_parser)

    def positive_int(value: str) -> int:
        count = int(value)
        if count < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return count

    def non_negative_int(value: str) -> int:
        count = int(value)
        if count < 0:
            raise argparse.ArgumentTypeError("must be non-negative")
        return count

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a parameter grid through the parallel sweep engine"
    )
    # --grid/--out are required for running a sweep but validated in the
    # handler (exit 2), so the `sweep status` subcommand can omit them.
    sweep_parser.add_argument("--grid", default=None, choices=SWEEPABLE_GRIDS)
    sweep_parser.add_argument("--workers", type=positive_int, default=1)
    sweep_parser.add_argument(
        "--out", default=None, help="result-store directory (or .jsonl path)"
    )
    sweep_parser.add_argument(
        "--scale",
        default="reduced",
        choices=[scale.value for scale in experiments.BenchmarkScale],
    )
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--retries", type=non_negative_int, default=1, help="retries per failed point"
    )
    sweep_parser.add_argument(
        "--csv", default=None, help="export the run table to this CSV after the sweep"
    )
    add_system_arguments(sweep_parser)
    add_cache_arguments(sweep_parser)
    add_trace_argument(sweep_parser)
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command")
    sweep_status_parser = sweep_sub.add_parser(
        "status",
        help="run-health digest of a result store: failure rate, duration "
        "quantiles, stragglers, failed points with tracebacks",
    )
    sweep_status_parser.add_argument(
        "store", help="result-store directory or .jsonl path"
    )
    sweep_status_parser.add_argument(
        "--json",
        dest="status_json",
        action="store_true",
        help="emit the health digest as JSON",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="inspect exported Chrome trace files"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize_parser = trace_sub.add_parser(
        "summarize", help="print the span tree and a top-N self-time table"
    )
    summarize_parser.add_argument("path", help="Chrome trace file (from --trace)")
    summarize_parser.add_argument(
        "--top", type=positive_int, default=10, help="rows in the self-time table"
    )
    summarize_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the span tree and self-time table as JSON "
        "(bench diff --json convention)",
    )
    flamegraph_parser = trace_sub.add_parser(
        "flamegraph",
        help="export collapsed stacks (flamegraph.pl / speedscope format)",
    )
    flamegraph_parser.add_argument("path", help="Chrome trace file (from --trace)")
    flamegraph_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write collapsed stacks here (default: stdout)",
    )

    metrics_parser = subparsers.add_parser(
        "metrics", help="metrics registry tools"
    )
    metrics_sub = metrics_parser.add_subparsers(dest="metrics_command", required=True)
    metrics_export_parser = metrics_sub.add_parser(
        "export",
        help="render a metrics dump (from --metrics) as Prometheus text",
    )
    metrics_export_parser.add_argument(
        "path", help="metrics dump JSON (from compile/sweep --metrics)"
    )
    metrics_export_parser.add_argument(
        "--prefix",
        default="",
        help="restrict the exposition to one metric namespace (e.g. sweep.)",
    )
    metrics_export_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the exposition here (default: stdout)",
    )

    obs_parser = subparsers.add_parser(
        "obs", help="run-health reports over obs artifacts"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    report_parser = obs_sub.add_parser(
        "report",
        help="merge a trace + event log + metrics dump into a markdown "
        "run report",
    )
    report_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH.json",
        help="Chrome trace file (from --trace)",
    )
    report_parser.add_argument(
        "--events",
        default=None,
        metavar="PATH.jsonl",
        help="event-log file (from --events)",
    )
    report_parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH.json",
        help="metrics dump (from --metrics)",
    )
    report_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH.md",
        help="write the report here (default: stdout)",
    )
    report_parser.add_argument(
        "--top", type=positive_int, default=10, help="rows in the tables"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark trajectory tools"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    diff_parser = bench_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json trajectories; exit 1 on counter regressions",
    )
    diff_parser.add_argument("baseline", help="baseline BENCH_*.json")
    diff_parser.add_argument("candidate", help="candidate BENCH_*.json")
    diff_parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative counter growth (default %(default)s)",
    )
    diff_parser.add_argument(
        "--slack",
        type=non_negative_int,
        default=DEFAULT_SLACK,
        help="absolute slack for tiny counters (default %(default)s)",
    )
    diff_parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    return parser


def _system_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """System-model config overrides from ``--topology``/``--system-spec``.

    A ``--system-spec`` JSON document wins over the flag-based description:
    its per-QPU specs set the fleet (heterogeneous grids, RSG shapes and
    ``K_max`` values) and its explicit links, when present, define a custom
    interconnect.
    """
    overrides: Dict[str, object] = {}
    if getattr(args, "topology", None):
        overrides["topology"] = InterconnectTopology(args.topology)
    spec_path = getattr(args, "system_spec", None)
    if spec_path:
        from repro.hardware.system import system_from_json

        system = system_from_json(spec_path)
        first = system.qpus[0]
        overrides.update(
            num_qpus=system.num_qpus,
            grid_size=first.grid_size,
            rsg_type=first.rsg_type,
            connection_capacity=first.connection_capacity,
            topology=system.topology,
            qpu_grid_sizes=tuple(qpu.grid_size for qpu in system.qpus),
            qpu_rsg_types=tuple(qpu.rsg_type for qpu in system.qpus),
            qpu_connection_capacities=tuple(
                qpu.connection_capacity for qpu in system.qpus
            ),
        )
        if system.topology is InterconnectTopology.CUSTOM:
            overrides["custom_links"] = tuple(
                (link.qpu_a, link.qpu_b, link.capacity) for link in system.links
            )
    return overrides


def _serialise_system_overrides(overrides: Dict[str, object]) -> Dict[str, object]:
    """Reduce config-typed system overrides to sweep-point extras.

    Enum values collapse to their names and the per-point scalar channels
    (grid size, ``K_max``, shared RSG type) are dropped — the per-QPU
    tuples carry them — so the result can ride any sweep point's
    ``extra`` channel.  Shared by ``experiment`` and ``sweep``.
    """
    serialisable = {
        name: value.value if hasattr(value, "value") else value
        for name, value in overrides.items()
        if name not in ("grid_size", "connection_capacity", "rsg_type")
    }
    if "qpu_rsg_types" in serialisable:
        serialisable["qpu_rsg_types"] = tuple(
            ResourceStateType.from_name(rsg).value
            for rsg in serialisable["qpu_rsg_types"]
        )
    return serialisable


def _config_from_args(args: argparse.Namespace) -> DCMBQCConfig:
    grid_size = args.grid_size or paper_grid_size(args.qubits)
    base = dict(
        num_qpus=args.qpus,
        grid_size=grid_size,
        rsg_type=ResourceStateType.from_name(args.rsg),
        connection_capacity=args.kmax,
        use_bdir=not args.no_bdir,
        bdir_starts=getattr(args, "bdir_starts", 1),
        seed=args.seed,
    )
    base.update(_system_overrides(args))
    return DCMBQCConfig(**base)


def _apply_cache_arguments(args: argparse.Namespace) -> None:
    """Propagate the cache flags to the environment (reaches sweep workers)."""
    if args.no_cache:
        # Disable every cache layer, the in-process memo and task-level
        # computation caches included — not just the disk store.
        os.environ[CACHE_DIR_ENV] = ""
        os.environ[CACHE_DISABLE_ENV] = "1"
    elif args.cache_dir:
        os.environ[CACHE_DIR_ENV] = args.cache_dir


def _apply_trace_arguments(args: argparse.Namespace) -> bool:
    """Enable span tracing when ``--trace`` was given; returns the decision.

    Sets ``DCMBQC_TRACE`` so sweep worker processes inherit the setting
    through the environment (same channel as the cache flags).
    """
    if not getattr(args, "trace", None):
        return False
    os.environ[TRACE_ENV] = "1"
    TRACER.reset()
    TRACER.enable()
    return True


def _export_trace(args: argparse.Namespace) -> Dict[str, object]:
    """Write the buffered spans to ``args.trace``; returns a summary dict."""
    spans = TRACER.spans()
    path = write_chrome_trace(args.trace, spans, deterministic=TRACER.deterministic)
    return {"path": str(path), "spans": len(spans), "run_id": TRACER.run_id}


def _apply_obs_arguments(args: argparse.Namespace, **manifest: object) -> None:
    """Enable resource sampling and the event log per the run-health flags.

    Resource sampling exports through the environment so sweep workers
    inherit it (same channel as ``DCMBQC_TRACE``); the event log is
    parent-process-only — worker outcomes reach it through the runner's
    per-point ``sweep.point`` events.
    """
    if getattr(args, "trace_resources", False) or getattr(args, "trace_malloc", False):
        os.environ[RESOURCES_ENV] = "1"
        if getattr(args, "trace_malloc", False):
            os.environ[TRACEMALLOC_ENV] = "1"
        RESOURCES.enable(tracemalloc_peaks=getattr(args, "trace_malloc", False))
    if getattr(args, "events", None):
        EVENTS.open(
            args.events,
            run_id=TRACER.run_id or "",
            command=args.command,
            **manifest,
        )


def _export_obs(args: argparse.Namespace) -> Dict[str, Dict[str, object]]:
    """Close the event log / dump metrics per the run-health flags.

    Returns ``{"events": {...}, "metrics": {...}}`` entries for whatever was
    produced, for the text/JSON run summaries.
    """
    info: Dict[str, Dict[str, object]] = {}
    if EVENTS.enabled:
        path = EVENTS.close()
        if path is not None:
            info["events"] = {"path": path}
    if getattr(args, "metrics", None):
        deterministic = (
            TRACER.deterministic or os.environ.get(DETERMINISTIC_ENV) == "1"
        )
        document = METRICS.dump(deterministic=deterministic)
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        info["metrics"] = {
            "path": args.metrics,
            "series": sum(
                len(document[kind])  # type: ignore[arg-type]
                for kind in ("counters", "gauges", "histograms")
            ),
        }
    return info


def _run_compile(args: argparse.Namespace) -> int:
    _apply_cache_arguments(args)
    tracing = _apply_trace_arguments(args)
    _apply_obs_arguments(
        args, program=args.program, qubits=args.qubits, qpus=args.qpus
    )
    circuit = build_benchmark(args.program, args.qubits, seed=args.seed)
    config = _config_from_args(args)
    store = resolve_store(args.cache_dir, enabled=not args.no_cache)
    with TRACER.span(
        "cli.compile", program=args.program, qubits=args.qubits, qpus=config.num_qpus
    ):
        result, run = DCMBQCCompiler(config).compile_run(
            circuit, store=store, use_cache=not args.no_cache
        )
        if tracing:
            # Replay the schedule under the trace as well, so the exported
            # timeline covers the full compile → runtime story.
            from repro.runtime.executor import DistributedRuntime

            DistributedRuntime(result).run()
    summary = result.summary()
    manifest = run.manifest()
    fault_rows = None
    if args.inject_fault:
        from repro.runtime.faults import parse_fault, run_fault_scenario

        fault_rows = [
            run_fault_scenario(
                result,
                parse_fault(spec),
                args.recovery,
                seed=args.fault_seed,
                shots=args.fault_shots,
            )
            for spec in args.inject_fault
        ]
    trace_info = _export_trace(args) if tracing else None
    obs_info = _export_obs(args)
    if args.json:
        document = {"summary": summary, "pipeline": manifest}
        if fault_rows is not None:
            document["faults"] = fault_rows
        if trace_info is not None:
            document["trace"] = trace_info
        document.update(obs_info)
        print(json.dumps(document, default=str))
        return 0
    print(f"Distributed compilation of {args.program}-{args.qubits} on {args.qpus} QPUs")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    stages = ", ".join(
        f"{record['stage']}={record['status']}" for record in manifest["stages"]
    )
    print(
        f"cache: {manifest['cache_hits']} hits, {manifest['executions']} misses"
        f" ({stages})"
    )
    if fault_rows is not None:
        for row in fault_rows:
            print(
                f"fault {row['fault']} policy={row['policy']}: "
                f"failure_rate={row['failure_rate']} "
                f"recovered_rate={row['recovered_rate']} "
                f"overhead={row['recovery_overhead_cycles']} "
                f"(affected {row['affected_mains']} mains, "
                f"{row['affected_syncs']} syncs, cycle {row['fault_cycle']})"
            )
    if trace_info is not None:
        print(f"trace: {trace_info['spans']} spans -> {trace_info['path']}")
    if "events" in obs_info:
        print(f"events: {obs_info['events']['path']}")
    if "metrics" in obs_info:
        print(
            f"metrics: {obs_info['metrics']['series']} series -> "
            f"{obs_info['metrics']['path']}"
        )
    if args.profile:
        print()
        print(render_profile_table(manifest))
    return 0


def render_profile_table(manifest: Dict[str, object]) -> str:
    """Stage-by-stage timing table from a pipeline provenance manifest.

    The per-stage wall times are the pipeline's existing telemetry (recorded
    on every run); this renders them as the ``compile --profile`` report.
    """
    records = list(manifest["stages"])
    total = sum(float(record["seconds"]) for record in records) or 1.0
    width = max([len("stage")] + [len(str(record["stage"])) for record in records])
    lines = [
        f"{'stage'.ljust(width)} | status     | seconds  | share",
        f"{'-' * width}-+------------+----------+------",
    ]
    for record in records:
        seconds = float(record["seconds"])
        share = f"{100.0 * seconds / total:5.1f}%"
        lines.append(
            f"{str(record['stage']).ljust(width)} | {str(record['status']).ljust(10)} "
            f"| {seconds:8.4f} | {share}"
        )
    lines.append(
        f"{'total'.ljust(width)} | {''.ljust(10)} | {float(manifest['seconds']):8.4f} |"
    )
    return "\n".join(lines)


def _run_compare(args: argparse.Namespace) -> int:
    circuit = build_benchmark(args.program, args.qubits, seed=args.seed)
    config = _config_from_args(args)
    comparison = compare_with_baseline(circuit, config, baseline=args.baseline)
    row = comparison.as_row()
    print(f"{args.program}-{args.qubits} vs {args.baseline} ({args.qpus} QPUs, {args.rsg})")
    for key, value in row.items():
        print(f"  {key}: {value}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    scale = experiments.BenchmarkScale(args.scale)
    spec = EXPERIMENT_REGISTRY[args.name]
    system = _serialise_system_overrides(_system_overrides(args)) or None
    print(spec.renderer(spec.driver(scale, system)))
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if getattr(args, "sweep_command", None) == "status":
        return _run_sweep_status(args)
    if not args.grid or not args.out:
        print(
            "error: sweep requires --grid and --out (or the `status` "
            "subcommand)",
            file=sys.stderr,
        )
        return 2
    _apply_cache_arguments(args)
    tracing = _apply_trace_arguments(args)
    _apply_obs_arguments(args, grid=args.grid, scale=args.scale, workers=args.workers)
    scale = experiments.BenchmarkScale(args.scale)
    grid = GRID_REGISTRY[args.grid](scale, seed=args.seed)
    system_overrides = _serialise_system_overrides(_system_overrides(args))
    if system_overrides:
        from repro.sweep.grids import pin_system_overrides

        grid = pin_system_overrides(grid, system_overrides)
    try:
        store = ResultStore(args.out)
    except OSError as exc:
        print(f"error: cannot open result store at {args.out}: {exc}", file=sys.stderr)
        return 2

    def progress(point, record, finished, total) -> None:
        status = record.get("status", "?")
        duration = record.get("duration_s")
        timing = f" ({duration:.2f}s)" if isinstance(duration, float) else ""
        flag = ""
        if record.get("straggler"):
            flag = f" STRAGGLER x{record.get('straggler_ratio')}"
        print(f"[{finished}/{total}] {status} {point.task} {point.label}{timing}{flag}")

    runner = SweepRunner(
        workers=args.workers,
        retries=args.retries,
        progress=None if args.json else progress,
    )
    with TRACER.span(
        "cli.sweep", grid=args.grid, scale=scale.value, workers=args.workers
    ):
        outcome = runner.run(grid, store)
    summary = outcome.summary()
    cache = outcome.cache_summary()
    trace_info = _export_trace(args) if tracing else None
    obs_info = _export_obs(args)
    exported = None
    if args.csv:
        exported = store.export_csv(args.csv)
    if args.json:
        document = {
            "grid": args.grid,
            "scale": scale.value,
            "workers": args.workers,
            "summary": summary,
            "stragglers": len(outcome.stragglers),
            "cache": cache,
            "store": str(store.path),
            "csv_rows": exported,
        }
        if trace_info is not None:
            document["trace"] = trace_info
        document.update(obs_info)
        print(json.dumps(document, default=str))
        return 1 if outcome.failed else 0
    print(
        f"Sweep {args.grid} (scale={scale.value}, workers={args.workers}): "
        f"{summary['total']} points, {summary['completed']} completed, "
        f"{summary['skipped']} skipped, {summary['failed']} failed"
    )
    print(f"cache: {cache['hits']} hits, {cache['misses']} misses")
    print(f"store: {store.path}")
    if outcome.stragglers:
        print(f"stragglers: {len(outcome.stragglers)}")
    if trace_info is not None:
        print(f"trace: {trace_info['spans']} spans -> {trace_info['path']}")
    if "events" in obs_info:
        print(f"events: {obs_info['events']['path']}")
    if "metrics" in obs_info:
        print(
            f"metrics: {obs_info['metrics']['series']} series -> "
            f"{obs_info['metrics']['path']}"
        )
    if exported is not None:
        print(f"exported {exported} rows to {args.csv}")
    return 1 if outcome.failed else 0


def _run_sweep_status(args: argparse.Namespace) -> int:
    try:
        store = ResultStore(args.store)
    except OSError as exc:
        print(f"error: cannot open result store at {args.store}: {exc}", file=sys.stderr)
        return 2
    if len(store) == 0:
        print(f"no records in {args.store}", file=sys.stderr)
        return 1
    health = store.summarize_health()
    if getattr(args, "status_json", False):
        print(json.dumps(health, default=str))
        return 1 if health["failed"] else 0
    durations = health["duration_s"]
    print(
        f"Sweep store {store.path}: {health['total']} points, "
        f"{health['completed']} completed, {health['failed']} failed "
        f"({100.0 * float(health['failure_rate']):.1f}% failure rate)"
    )
    print(
        f"duration_s: p50={durations['p50']} p95={durations['p95']} "
        f"p99={durations['p99']} max={durations['max']}"
    )
    for straggler in health["stragglers"]:
        print(
            f"straggler: {straggler['key']} ({straggler['task']}) "
            f"{straggler['duration_s']:.3f}s = x{straggler['ratio']} median"
        )
    for failure in health["failures"]:
        print(
            f"failed: {failure['key']} ({failure['task']}, "
            f"{failure['attempts']} attempts) "
            f"{failure['error_type'] or '?'}: {failure['error']}"
        )
        if failure.get("traceback"):
            print("  " + str(failure["traceback"]).rstrip().replace("\n", "\n  "))
    return 1 if health["failed"] else 0


def _run_trace(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    if args.trace_command == "flamegraph":
        if args.out:
            path = write_collapsed_stacks(args.out, spans)
            print(f"collapsed stacks: {len(collapsed_stacks(spans))} -> {path}")
        else:
            print("\n".join(collapsed_stacks(spans)))
        return 0
    if getattr(args, "json", False):
        print(json.dumps(summarize_trace(spans, top=args.top)))
        return 0
    print(render_span_tree(spans))
    print()
    print(render_top_spans(spans, top=args.top))
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    try:
        with open(args.path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics dump {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        text = render_prometheus(document, prefix=args.prefix)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: malformed metrics dump {args.path}: {exc}", file=sys.stderr)
        return 2
    if not text:
        print(f"no series matching prefix {args.prefix!r}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"exposition -> {args.out}")
    else:
        print(text, end="")
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    spans = []
    events = []
    metrics_doc = None
    if not (args.trace or args.events or args.metrics):
        print(
            "error: obs report needs at least one of --trace/--events/--metrics",
            file=sys.stderr,
        )
        return 2
    try:
        if args.trace:
            spans = load_chrome_trace(args.trace)
        if args.events:
            events = read_events(args.events)
        if args.metrics:
            with open(args.metrics, encoding="utf-8") as handle:
                metrics_doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read obs artifact: {exc}", file=sys.stderr)
        return 2
    report = build_report(spans, events=events, metrics_doc=metrics_doc, top=args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report -> {args.out}")
    else:
        print(report, end="")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    try:
        diff = diff_bench_files(
            args.baseline, args.candidate, tolerance=args.tolerance, slack=args.slack
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.as_dict()))
    else:
        print(diff.report())
    return 0 if diff.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "compile": _run_compile,
        "compare": _run_compare,
        "experiment": _run_experiment,
        "sweep": _run_sweep,
        "trace": _run_trace,
        "metrics": _run_metrics,
        "obs": _run_obs,
        "bench": _run_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
