"""`repro obs report`: merge trace + event log + metrics into one markdown.

A run leaves up to three artifacts behind — a Chrome trace (``--trace``), an
event-log journal (``--events``) and a metrics dump (``--metrics``).  Each
answers one question; :func:`build_report` merges whichever subset exists
into a single markdown run report:

* a **run header** (run id, span count, clock unit);
* the **span self-time table** (where the time went, no double counting);
* **top memory spans** when resource sampling annotated RSS deltas or
  tracemalloc peaks onto spans;
* an **event summary** (counts per event kind) plus every ``error`` event
  with its exception type and message;
* a **failure / straggler summary** from the sweep health monitor's
  ``sweep.point`` events;
* a **metrics snapshot** (counters and histogram quantiles).

The report deliberately contains no filesystem paths and no wall-clock
text of its own: under ``DCMBQC_TRACE_DETERMINISTIC=1`` every input is a
pure function of the compile, so the rendered markdown is byte-identical
across runs and golden-pinnable — the property the report golden test and
the CI obs-report smoke step both pin.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.export import self_time_rows
from repro.obs.trace import SpanRecord

__all__ = ["build_report"]


def _markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(" --- " for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _format_duration(value: float, unit: str) -> str:
    if unit == "ticks":
        return f"{value:.0f}"
    return f"{value:.4f}"


def _self_time_section(spans: Sequence[SpanRecord], unit: str, top: int) -> str:
    rows = self_time_rows(spans, top=top)
    table = _markdown_table(
        ("span", "count", f"self ({unit})", f"total ({unit})", "share"),
        [
            (
                row["name"],
                row["count"],
                _format_duration(float(row["self"]), unit),
                _format_duration(float(row["total"]), unit),
                f"{row['share']}%",
            )
            for row in rows
        ],
    )
    return f"## Span self-time (top {len(rows)})\n\n{table}"


def _memory_section(spans: Sequence[SpanRecord], top: int) -> Optional[str]:
    keys = ("rss_kb_delta", "py_alloc_peak_kb", "cpu_ms")
    sampled = [
        span for span in spans
        if any(key in span.attributes for key in keys)
    ]
    if not sampled:
        return None
    ranked = sorted(
        sampled,
        key=lambda span: (
            -float(span.attributes.get("rss_kb_delta", 0) or 0),
            -float(span.attributes.get("py_alloc_peak_kb", 0) or 0),
            span.name,
            span.span_id,
        ),
    )[:top]
    table = _markdown_table(
        ("span", "rss Δ (kB)", "py alloc peak (kB)", "cpu (ms)"),
        [
            (
                span.name,
                span.attributes.get("rss_kb_delta", ""),
                span.attributes.get("py_alloc_peak_kb", ""),
                span.attributes.get("cpu_ms", ""),
            )
            for span in ranked
        ],
    )
    return f"## Top memory spans\n\n{table}"


def _events_section(events: Sequence[Mapping[str, object]]) -> Optional[str]:
    if not events:
        return None
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    table = _markdown_table(
        ("event", "count"), sorted(counts.items())
    )
    parts = [f"## Events ({len(events)} total)\n\n{table}"]
    errors = [event for event in events if event.get("event") == "error"]
    if errors:
        error_rows = [
            (
                event.get("error_type", "?"),
                str(event.get("message", "")).replace("|", "\\|"),
                event.get("point", event.get("stage", "")),
            )
            for event in errors
        ]
        parts.append(
            "### Errors\n\n"
            + _markdown_table(("type", "message", "where"), error_rows)
        )
    return "\n\n".join(parts)


def _sweep_section(events: Sequence[Mapping[str, object]]) -> Optional[str]:
    points = [event for event in events if event.get("event") == "sweep.point"]
    if not points:
        return None
    failed = [p for p in points if p.get("status") == "failed"]
    stragglers = [p for p in points if p.get("straggler")]
    lines = [
        "## Sweep health",
        "",
        f"- points: {len(points)}",
        f"- failed: {len(failed)}"
        + (
            f" ({100.0 * len(failed) / len(points):.1f}% failure rate)"
            if points
            else ""
        ),
        f"- stragglers: {len(stragglers)}",
    ]
    if failed:
        lines.append("")
        lines.append(
            _markdown_table(
                ("point", "error type", "error"),
                [
                    (
                        p.get("key", "?"),
                        p.get("error_type", "?"),
                        str(p.get("error", "")).replace("|", "\\|"),
                    )
                    for p in failed
                ],
            )
        )
    if stragglers:
        lines.append("")
        lines.append(
            _markdown_table(
                ("straggler", "duration vs median"),
                [
                    (p.get("key", "?"), p.get("straggler_ratio", "?"))
                    for p in stragglers
                ],
            )
        )
    return "\n".join(lines)


def _metrics_section(doc: Mapping[str, object]) -> Optional[str]:
    counters = list(doc.get("counters", ()))  # type: ignore[arg-type]
    histograms = list(doc.get("histograms", ()))  # type: ignore[arg-type]
    if not counters and not histograms:
        return None
    from repro.obs.metrics import Histogram

    def series_name(entry: Mapping[str, object]) -> str:
        name = str(entry["name"])
        labels = entry.get("labels") or ()
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in labels)  # type: ignore[misc]
            return f"{name}{{{inner}}}"
        return name

    parts = ["## Metrics"]
    if counters:
        parts.append(
            "### Counters\n\n"
            + _markdown_table(
                ("counter", "value"),
                [(series_name(entry), entry["value"]) for entry in counters],
            )
        )
    if histograms:
        rows = []
        for entry in histograms:
            histogram = Histogram.from_parts(
                entry["count"],
                entry["total"],
                entry.get("min"),
                entry.get("max"),
                entry.get("buckets", ()),
            )
            rows.append(
                (
                    series_name(entry),
                    histogram.count,
                    round(histogram.quantile(0.50), 6),
                    round(histogram.quantile(0.95), 6),
                    round(histogram.quantile(0.99), 6),
                    round(histogram.maximum, 6) if histogram.count else "",
                )
            )
        parts.append(
            "### Histograms\n\n"
            + _markdown_table(
                ("histogram", "count", "p50", "p95", "p99", "max"), rows
            )
        )
    return "\n\n".join(parts)


def build_report(
    spans: Sequence[SpanRecord],
    events: Optional[Sequence[Mapping[str, object]]] = None,
    metrics_doc: Optional[Mapping[str, object]] = None,
    top: int = 10,
) -> str:
    """Render the markdown run report for whatever artifacts exist.

    ``spans`` may be empty (event-log-only report); ``events`` and
    ``metrics_doc`` are optional.  Output ends in exactly one newline and
    contains no filesystem paths, so a deterministic run renders
    byte-identical markdown.
    """
    events = list(events or ())
    run_ids = sorted({span.run_id for span in spans if span.run_id})
    if not run_ids:
        run_ids = sorted(
            {
                str(event["run_id"])
                for event in events
                if event.get("event") == "run.start" and event.get("run_id")
            }
        )
    run_id = ", ".join(run_ids) if run_ids else "(unknown)"
    unit = "ticks" if spans and all(
        float(span.start).is_integer() for span in spans
    ) else "s"

    sections: List[str] = [
        f"# Run report: {run_id}",
        "\n".join(
            [
                "## Run",
                "",
                f"- spans: {len(spans)}",
                f"- clock unit: {unit}",
                f"- events: {len(events)}",
            ]
        ),
    ]
    if spans:
        sections.append(_self_time_section(spans, unit, top))
        memory = _memory_section(spans, top)
        if memory:
            sections.append(memory)
    for section in (
        _events_section(events),
        _sweep_section(events),
        _metrics_section(metrics_doc or {}),
    ):
        if section:
            sections.append(section)
    return "\n\n".join(sections) + "\n"
