"""Hierarchical span tracing across compile → schedule → runtime → sweep.

One :class:`Tracer` per process records a flat buffer of completed
:class:`SpanRecord` objects.  Spans form a tree through parent links (a
thread-local stack tracks the active span per thread), carry free-form
attributes (stage name, QPU count, topology, cache outcome, …) and capture
the :data:`~repro.utils.counters.OP_COUNTERS` delta over their lifetime, so
a Perfetto timeline shows *which* scheduler cycles and evaluate calls a
given BDIR iteration spent.

Tracing is **off by default** and the disabled fast path is a no-op:
:meth:`Tracer.span` returns a shared null context manager without
allocating, touching the clock or snapshotting counters.  Enable it with
:meth:`Tracer.enable`, the CLI ``--trace`` flag, or ``DCMBQC_TRACE=1`` in
the environment (which is how sweep worker processes inherit the setting —
their buffers serialize back to the parent inside point records, see
:func:`repro.sweep.runner.execute_point`).

Deterministic clock mode (``DCMBQC_TRACE_DETERMINISTIC=1``) timestamps
spans by **op-counter ticks** — the running total of
:data:`~repro.utils.counters.OP_COUNTERS` plus a per-process sequence —
instead of wall clock, so the exported span tree (names, nesting, counts
*and* timestamps) is byte-stable across runs of the same compile and CI can
pin it with a golden file.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.resources import RESOURCES

__all__ = [
    "DETERMINISTIC_ENV",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "span",
    "traced",
    "tracing_enabled",
]

#: Set to a truthy value to enable tracing process-wide (inherited by
#: sweep worker processes through the environment).
TRACE_ENV = "DCMBQC_TRACE"

#: Set to a truthy value to timestamp spans by op-counter ticks instead of
#: wall clock (byte-stable traces for CI pinning).
DETERMINISTIC_ENV = "DCMBQC_TRACE_DETERMINISTIC"


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


@dataclass
class SpanRecord:
    """One completed span.

    Attributes:
        name: Dot-namespaced span name (``stage.partition``,
            ``bdir.iteration``, ``runtime.replay`` …).
        span_id: Unique (per tracer) integer identifier.
        parent_id: ``span_id`` of the enclosing span, or ``None`` for roots.
        run_id: Identifier of the traced run this span belongs to.
        start / end: Timestamps — ``time.perf_counter()`` seconds in wall
            mode, op-counter ticks in deterministic mode.
        attributes: Free-form key → JSON-serialisable value annotations.
        counter_deltas: Non-zero op-counter increments over the span.
        tid: Small per-process thread ordinal (0 for the first thread that
            emitted a span).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    run_id: str
    start: float
    end: float
    attributes: Dict[str, object] = field(default_factory=dict)
    counter_deltas: Dict[str, int] = field(default_factory=dict)
    tid: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form used to ship spans across process boundaries."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": self.run_id,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "counter_deltas": dict(self.counter_deltas),
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if payload.get("parent_id") is None
                else int(payload["parent_id"])  # type: ignore[arg-type]
            ),
            run_id=str(payload.get("run_id", "")),
            start=float(payload["start"]),  # type: ignore[arg-type]
            end=float(payload["end"]),  # type: ignore[arg-type]
            attributes=dict(payload.get("attributes") or {}),
            counter_deltas={
                str(k): int(v)  # type: ignore[arg-type]
                for k, v in (payload.get("counter_deltas") or {}).items()
            },
            tid=int(payload.get("tid", 0)),  # type: ignore[arg-type]
        )


class _NullSpan:
    """Shared no-op span: the entire cost of tracing when it is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: object) -> None:
        pass

    def set_attribute(self, key: str, value: object) -> None:
        pass


#: The singleton returned by :meth:`Tracer.span` while tracing is disabled.
NULL_SPAN = _NullSpan()


class Span:
    """An open span; use as a context manager (returned by :meth:`Tracer.span`)."""

    __slots__ = (
        "_tracer",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "_start",
        "_counters_before",
        "_resources_before",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0
        self._counters_before: Optional[Dict[str, int]] = None
        self._resources_before = None

    def set(self, **attributes: object) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attributes.update(attributes)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False


class Tracer:
    """Per-process span collector with a thread-local active-span stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buffer: List[SpanRecord] = []
        self._local = threading.local()
        self._next_span_id = 1
        self._next_run = 1
        self._next_tid = 0
        self._seq = 0
        self.enabled = False
        self.deterministic = False
        self.run_id: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def enable(
        self,
        run_id: Optional[str] = None,
        deterministic: Optional[bool] = None,
    ) -> str:
        """Turn tracing on; returns the run identifier.

        Deterministic mode defaults to ``DCMBQC_TRACE_DETERMINISTIC``.  In
        that mode the run id is a per-process sequence (``run-0001``) so two
        fresh processes produce byte-identical traces; otherwise it is a
        random UUID suffix.
        """
        with self._lock:
            self.deterministic = (
                _env_truthy(DETERMINISTIC_ENV) if deterministic is None else deterministic
            )
            if run_id is None:
                if self.deterministic:
                    run_id = f"run-{self._next_run:04d}"
                    self._next_run += 1
                else:
                    run_id = f"run-{uuid.uuid4().hex[:12]}"
            self.run_id = run_id
            self.enabled = True
            return run_id

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all buffered spans and restart id/clock sequences."""
        with self._lock:
            self._buffer.clear()
            self._next_span_id = 1
            self._next_tid = 0
            self._seq = 0
            self._local = threading.local()

    def ensure_enabled_from_environment(self) -> bool:
        """Enable tracing if ``DCMBQC_TRACE`` is set (sweep-worker path)."""
        if not self.enabled and _env_truthy(TRACE_ENV):
            self.enable()
        return self.enabled

    # ------------------------------------------------------------------ #
    # Span API
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attributes: object):
        """Open a span named ``name``; no-op singleton while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, dict(attributes))

    def traced(self, name: Optional[str] = None, **attributes: object):
        """Decorator form: trace every call of the wrapped function."""

        def decorate(fn):
            span_name = name or f"{fn.__module__.rpartition('.')[2]}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------ #
    # Buffer access
    # ------------------------------------------------------------------ #

    def spans(self) -> List[SpanRecord]:
        """Copy of every buffered (completed) span, in completion order."""
        with self._lock:
            return list(self._buffer)

    def mark(self) -> int:
        """Current buffer length; pair with :meth:`drain_since`."""
        with self._lock:
            return len(self._buffer)

    def drain_since(self, mark: int) -> List[Dict[str, object]]:
        """Remove and serialize the spans completed after ``mark``.

        Sweep workers call this once per point so their buffers never grow
        across tasks; the returned dicts travel through the result pipe.
        """
        with self._lock:
            drained = self._buffer[mark:]
            del self._buffer[mark:]
            return [record.as_dict() for record in drained]

    def adopt(self, payload: List[Dict[str, object]]) -> int:
        """Merge spans serialized by another process into this buffer.

        Span ids are re-allocated (parent links inside the payload are
        remapped consistently), the run id is rewritten to this tracer's,
        and payload roots are attached under the calling thread's active
        span, so a sweep's worker spans nest under its ``sweep.run`` span
        with no lost or duplicated entries.  Returns the adopted count.
        """
        if not payload:
            return 0
        parent = self.current_span_id()
        records = [SpanRecord.from_dict(entry) for entry in payload]
        with self._lock:
            id_map: Dict[int, int] = {}
            for record in records:
                id_map[record.span_id] = self._next_span_id
                self._next_span_id += 1
            run_id = self.run_id or ""
            for record in records:
                record.span_id = id_map[record.span_id]
                if record.parent_id is not None and record.parent_id in id_map:
                    record.parent_id = id_map[record.parent_id]
                else:
                    record.parent_id = parent
                record.run_id = run_id
                self._buffer.append(record)
        return len(records)

    def current_span_id(self) -> Optional[int]:
        """Id of the calling thread's innermost open span (None outside)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _clock(self) -> float:
        if self.deterministic:
            from repro.utils.counters import OP_COUNTERS

            with self._lock:
                self._seq += 1
                seq = self._seq
            # Op-counter ticks: a span's duration reads as "hot-path ops
            # executed inside it"; the sequence keeps the clock strictly
            # monotonic between counter increments.
            return float(sum(OP_COUNTERS.snapshot().values()) + seq)
        return time.perf_counter()

    def _thread_ordinal(self) -> int:
        tid = getattr(self._local, "tid", None)
        if tid is None:
            with self._lock:
                tid = self._next_tid
                self._next_tid += 1
            self._local.tid = tid
        return tid

    def _open(self, span_obj: Span) -> None:
        from repro.utils.counters import OP_COUNTERS

        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span_obj.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_obj.span_id = self._next_span_id
            self._next_span_id += 1
        span_obj._counters_before = OP_COUNTERS.snapshot()
        if RESOURCES.enabled:
            span_obj._resources_before = RESOURCES.before()
        span_obj._start = self._clock()
        stack.append(span_obj)

    def _close(self, span_obj: Span) -> None:
        from repro.utils.counters import OP_COUNTERS

        end = self._clock()
        deltas: Dict[str, int] = {}
        if span_obj._counters_before is not None:
            for name, value in OP_COUNTERS.delta_since(span_obj._counters_before).items():
                if value:
                    deltas[name] = value
        if span_obj._resources_before is not None:
            for key, value in RESOURCES.delta(span_obj._resources_before).items():
                span_obj.attributes.setdefault(key, value)
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif stack and span_obj in stack:  # unbalanced exit: drop descendants
            while stack and stack[-1] is not span_obj:
                stack.pop()
            if stack:
                stack.pop()
        record = SpanRecord(
            name=span_obj.name,
            span_id=span_obj.span_id,
            parent_id=span_obj.parent_id,
            run_id=self.run_id or "",
            start=span_obj._start,
            end=end,
            attributes=span_obj.attributes,
            counter_deltas=deltas,
            tid=self._thread_ordinal(),
        )
        with self._lock:
            self._buffer.append(record)


#: Process-global tracer used by every instrumented subsystem.
TRACER = Tracer()


def span(name: str, **attributes: object):
    """Module-level convenience for ``TRACER.span`` (the common call site)."""
    if not TRACER.enabled:
        return NULL_SPAN
    return TRACER.span(name, **attributes)


def traced(name: Optional[str] = None, **attributes: object):
    """Module-level convenience for ``TRACER.traced``."""
    return TRACER.traced(name, **attributes)


def tracing_enabled() -> bool:
    return TRACER.enabled
