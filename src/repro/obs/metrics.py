"""Unified metrics core: counters, gauges and quantile histograms with labels.

Before this module existed the repo had two disjoint counter registries —
:class:`repro.pipeline.telemetry.TelemetryRegistry` (per-stage wall time and
cache hits) and :class:`repro.utils.counters.OpCounters` (deterministic
hot-path op counts) — each with its own lock, snapshot and reset
boilerplate.  Both are now thin compatibility views over one
:class:`MetricsRegistry`:

* **counters** — monotonically increasing integers (``inc``);
* **gauges** — last-written floats (``set_gauge``);
* **histograms** — fixed log-bucketed :class:`Histogram` series with
  streaming count/total/min/max and p50/p95/p99 estimates (``observe``);
  the pre-quantile :class:`HistogramSummary` stays available as a view
  (:meth:`MetricsRegistry.histogram`).

Every instrument takes optional **label dimensions** (``stage="translate"``,
``source="disk"``), so one metric name fans out into a family of labelled
series — the convention used by Prometheus-style metric systems.  Metric
names are dot-separated, namespaced by subsystem (``ops.*`` for the compile
hot path, ``pipeline.*`` for stage telemetry, ``sweep.*`` for the sweep
health monitor), and :meth:`MetricsRegistry.reset` accepts a prefix so one
view can reset its namespace without clobbering the others.

The registry is per process, mirroring the registries it replaced: sweep
workers own a private copy and ship deltas back through their point records.
:meth:`MetricsRegistry.dump` serialises the full registry (histogram buckets
included) so a metrics snapshot can cross a process boundary as JSON —
``repro metrics export`` renders such a snapshot as Prometheus text and
``repro obs report`` merges one into a run report.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "METRICS",
    "is_volatile_metric",
    "registry_from_dump",
]

#: Schema identifier stamped on registry dumps.
DUMP_SCHEMA = "dcmbqc-metrics/1"

#: Canonical label identity: sorted (key, value) string pairs.
LabelKey = Tuple[Tuple[str, str], ...]

_NO_LABELS: LabelKey = ()


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    if not labels:
        return _NO_LABELS
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _render(name: str, key: LabelKey) -> str:
    """Display form of one labelled series: ``name{k=v,...}``."""
    if not key:
        return name
    inner = ",".join(f"{label}={value}" for label, value in key)
    return f"{name}{{{inner}}}"


def _volatile_heuristic(name: str) -> bool:
    lowered = name.lower()
    return (
        lowered.endswith(("_s", ".s", "_seconds", ".seconds", "_ms", ".ms"))
        or "duration" in lowered
        or "wall" in lowered
    )


def is_volatile_metric(name: str) -> bool:
    """True when a metric carries wall-clock values (non-deterministic).

    The same naming heuristic :mod:`repro.obs.bench_diff` applies to BENCH
    rows: series whose name ends in ``_s``/``_seconds``/``_ms`` or mentions a
    duration hold timings that vary run to run.  Deterministic registry dumps
    (``--metrics`` under ``DCMBQC_TRACE_DETERMINISTIC=1``) drop them so the
    snapshot — and every report derived from it — is a pure function of the
    compile.
    """
    return _volatile_heuristic(name)


def _default_bounds() -> Tuple[float, ...]:
    """Fixed log-bucket boundaries: a 1/2.5/5 ladder per decade, 1e-6..1e8.

    One shared ladder serves every histogram — sub-millisecond stage timings,
    multi-second sweep points and six-figure cycle counts alike — so two
    registries always agree on bucket identity and dumps can round-trip
    buckets by boundary value.
    """
    bounds: List[float] = []
    for exponent in range(-6, 9):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0 ** exponent)
    return tuple(bounds)


#: Shared log-bucket upper bounds (inclusive, ``le`` semantics); values above
#: the last bound land in the implicit overflow (``+Inf``) bucket.
BUCKET_BOUNDS: Tuple[float, ...] = _default_bounds()

#: Canonical string form of each bound (used as the dump/exposition key).
_BOUND_LABELS: Tuple[str, ...] = tuple(f"{bound:.10g}" for bound in BUCKET_BOUNDS)
_BOUND_INDEX: Dict[str, int] = {label: i for i, label in enumerate(_BOUND_LABELS)}

#: Label of the overflow bucket.
INF_LABEL = "+Inf"


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram series (no stored samples)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def copy(self) -> "HistogramSummary":
        return HistogramSummary(self.count, self.total, self.minimum, self.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.minimum, 6) if self.count else None,
            "max": round(self.maximum, 6) if self.count else None,
            "mean": round(self.mean, 6),
        }


class Histogram:
    """Fixed log-bucketed histogram with streaming summary and quantiles.

    Observations land in the shared :data:`BUCKET_BOUNDS` ladder (``le``
    semantics; values above the last bound go to the overflow bucket), so a
    histogram costs one ``bisect`` per sample and a constant ~46 ints of
    memory regardless of sample count.  Quantiles are estimated by linear
    interpolation inside the bucket containing the target rank, clamped to
    the exact observed min/max — for a single sample every quantile is exact.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._buckets[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        index = len(self._buckets) - 1
        for i, bucket_count in enumerate(self._buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                index = i
                break
            cumulative += bucket_count
        lower = 0.0 if index == 0 else BUCKET_BOUNDS[index - 1]
        upper = self.maximum if index >= len(BUCKET_BOUNDS) else BUCKET_BOUNDS[index]
        bucket_count = self._buckets[index] or 1
        fraction = min(1.0, max(0.0, (rank - cumulative) / bucket_count))
        estimate = lower + fraction * (upper - lower)
        return min(self.maximum, max(self.minimum, estimate))

    def summary(self) -> HistogramSummary:
        """The legacy count/total/min/max view of this histogram."""
        return HistogramSummary(self.count, self.total, self.minimum, self.maximum)

    def copy(self) -> "Histogram":
        clone = Histogram()
        clone.count = self.count
        clone.total = self.total
        clone.minimum = self.minimum
        clone.maximum = self.maximum
        clone._buckets = list(self._buckets)
        return clone

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        """Non-cumulative ``(le label, count)`` pairs for occupied buckets."""
        out: List[Tuple[str, int]] = []
        for i, bucket_count in enumerate(self._buckets):
            if bucket_count:
                label = INF_LABEL if i >= len(BUCKET_BOUNDS) else _BOUND_LABELS[i]
                out.append((label, bucket_count))
        return out

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """Cumulative ``(le label, count)`` pairs over every defined bound.

        This is the Prometheus histogram contract: every ``le`` bound appears
        with the running total of samples at or below it, ending in the
        ``+Inf`` bucket equal to the sample count.
        """
        out: List[Tuple[str, int]] = []
        running = 0
        for i, label in enumerate(_BOUND_LABELS):
            running += self._buckets[i]
            out.append((label, running))
        out.append((INF_LABEL, self.count))
        return out

    def as_dict(self) -> Dict[str, object]:
        """Summary plus quantile estimates (snapshot/report form)."""
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.minimum, 6) if self.count else None,
            "max": round(self.maximum, 6) if self.count else None,
            "mean": round(self.mean, 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }

    @classmethod
    def from_parts(
        cls,
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
        buckets: Sequence[Sequence[object]],
    ) -> "Histogram":
        """Rebuild a histogram from its dumped parts (see ``dump``)."""
        histogram = cls()
        histogram.count = int(count)
        histogram.total = float(total)
        histogram.minimum = float("inf") if minimum is None else float(minimum)
        histogram.maximum = float("-inf") if maximum is None else float(maximum)
        for label, bucket_count in buckets:
            label = str(label)
            index = (
                len(BUCKET_BOUNDS)
                if label == INF_LABEL
                else _BOUND_INDEX.get(label)
            )
            if index is None:  # unknown bound: re-bucket by value
                index = bisect.bisect_left(BUCKET_BOUNDS, float(label))
            histogram._buckets[index] += int(bucket_count)
        return histogram


class MetricsRegistry:
    """Thread-safe labelled counters/gauges/histograms behind one lock.

    This is the shared core the legacy registries delegate to; their
    snapshot/reset/locking boilerplate lives here exactly once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, int]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------------ #
    # Writers
    # ------------------------------------------------------------------ #

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Increment counter ``name`` (labelled series) by ``amount``."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + int(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` (labelled series) to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into histogram ``name`` (labelled series)."""
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = Histogram()
            histogram.observe(float(value))

    # ------------------------------------------------------------------ #
    # Readers
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: object) -> int:
        """Current value of one counter series (0 if never touched)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        key = _label_key(labels)
        with self._lock:
            return self._gauges.get(name, {}).get(key)

    def histogram(self, name: str, **labels: object) -> HistogramSummary:
        """Summary view of one histogram series (empty if never observed)."""
        key = _label_key(labels)
        with self._lock:
            histogram = self._histograms.get(name, {}).get(key)
            return histogram.summary() if histogram is not None else HistogramSummary()

    def histogram_detail(self, name: str, **labels: object) -> Histogram:
        """Full bucketed copy of one histogram series (quantiles included)."""
        key = _label_key(labels)
        with self._lock:
            histogram = self._histograms.get(name, {}).get(key)
            return histogram.copy() if histogram is not None else Histogram()

    def quantile(self, name: str, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile of one histogram series (0.0 if empty)."""
        key = _label_key(labels)
        with self._lock:
            histogram = self._histograms.get(name, {}).get(key)
            return histogram.quantile(q) if histogram is not None else 0.0

    def counter_series(self, name: str) -> Dict[LabelKey, int]:
        """Every labelled series of one counter, keyed by label tuple."""
        with self._lock:
            return dict(self._counters.get(name, {}))

    def histogram_series(self, name: str) -> Dict[LabelKey, HistogramSummary]:
        with self._lock:
            return {
                key: histogram.summary()
                for key, histogram in self._histograms.get(name, {}).items()
            }

    def histogram_detail_series(self, name: str) -> Dict[LabelKey, Histogram]:
        with self._lock:
            return {
                key: histogram.copy()
                for key, histogram in self._histograms.get(name, {}).items()
            }

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Unlabelled counters under ``prefix``, prefix stripped, sorted.

        This is the view :class:`~repro.utils.counters.OpCounters` exposes:
        its namespace holds plain (label-free) counters only.
        """
        with self._lock:
            out: Dict[str, int] = {}
            for name in sorted(self._counters):
                if not name.startswith(prefix):
                    continue
                series = self._counters[name]
                value = series.get(_NO_LABELS)
                if value is not None:
                    out[name[len(prefix):]] = value
            return out

    def label_values(self, name: str, label: str) -> Tuple[str, ...]:
        """Distinct values one label takes across a counter's series."""
        with self._lock:
            seen = []
            for key in self._counters.get(name, {}):
                for key_label, value in key:
                    if key_label == label and value not in seen:
                        seen.append(value)
            return tuple(seen)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full registry dump: rendered series name → value/summary dict."""
        with self._lock:
            return {
                "counters": {
                    _render(name, key): value
                    for name in sorted(self._counters)
                    for key, value in sorted(self._counters[name].items())
                },
                "gauges": {
                    _render(name, key): value
                    for name in sorted(self._gauges)
                    for key, value in sorted(self._gauges[name].items())
                },
                "histograms": {
                    _render(name, key): histogram.as_dict()
                    for name in sorted(self._histograms)
                    for key, histogram in sorted(self._histograms[name].items())
                },
            }

    def dump(self, prefix: str = "", deterministic: bool = False) -> Dict[str, object]:
        """Serialise the registry (histogram buckets included) as plain JSON.

        ``prefix`` restricts the dump to one namespace; ``deterministic``
        drops series :func:`is_volatile_metric` flags as wall-clock-derived,
        so the dump — and any report/exposition built from it — is a pure
        function of the compile under ``DCMBQC_TRACE_DETERMINISTIC=1``.
        The inverse is :func:`registry_from_dump`.
        """
        with self._lock:
            def keep(name: str) -> bool:
                if prefix and not name.startswith(prefix):
                    return False
                return not (deterministic and is_volatile_metric(name))

            counters = [
                {"name": name, "labels": list(key), "value": value}
                for name in sorted(self._counters)
                if keep(name)
                for key, value in sorted(self._counters[name].items())
            ]
            gauges = [
                {"name": name, "labels": list(key), "value": value}
                for name in sorted(self._gauges)
                if keep(name)
                for key, value in sorted(self._gauges[name].items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": list(key),
                    "count": histogram.count,
                    "total": histogram.total,
                    "min": histogram.minimum if histogram.count else None,
                    "max": histogram.maximum if histogram.count else None,
                    "buckets": histogram.nonzero_buckets(),
                }
                for name in sorted(self._histograms)
                if keep(name)
                for key, histogram in sorted(self._histograms[name].items())
            ]
            return {
                "schema": DUMP_SCHEMA,
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
            }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def reset(self, prefix: str = "") -> None:
        """Drop every series whose metric name starts with ``prefix``.

        An empty prefix clears the whole registry; the compatibility views
        pass their namespace so resetting op counters leaves stage telemetry
        (and vice versa) untouched.
        """
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                if not prefix:
                    table.clear()
                else:
                    for name in [n for n in table if n.startswith(prefix)]:
                        del table[name]


def registry_from_dump(doc: Mapping[str, object]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :meth:`MetricsRegistry.dump`.

    Used by ``repro metrics export`` / ``repro obs report`` to render a
    snapshot taken in another process without touching the live registry.
    """
    schema = doc.get("schema")
    if schema != DUMP_SCHEMA:
        raise ValueError(f"unsupported metrics dump schema: {schema!r}")
    registry = MetricsRegistry()
    for entry in doc.get("counters", ()):  # type: ignore[union-attr]
        labels = {key: value for key, value in entry.get("labels", ())}
        registry.inc(str(entry["name"]), int(entry["value"]), **labels)
    for entry in doc.get("gauges", ()):  # type: ignore[union-attr]
        labels = {key: value for key, value in entry.get("labels", ())}
        registry.set_gauge(str(entry["name"]), float(entry["value"]), **labels)
    for entry in doc.get("histograms", ()):  # type: ignore[union-attr]
        labels = {key: value for key, value in entry.get("labels", ())}
        histogram = Histogram.from_parts(
            entry["count"],
            entry["total"],
            entry.get("min"),
            entry.get("max"),
            entry.get("buckets", ()),
        )
        key = _label_key(labels)
        with registry._lock:
            registry._histograms.setdefault(str(entry["name"]), {})[key] = histogram
    return registry


#: Process-global metrics registry; the compatibility views
#: (``TELEMETRY``, ``OP_COUNTERS``) and the tracer all report here.
METRICS = MetricsRegistry()
