"""Unified metrics core: counters, gauges and histograms with labels.

Before this module existed the repo had two disjoint counter registries —
:class:`repro.pipeline.telemetry.TelemetryRegistry` (per-stage wall time and
cache hits) and :class:`repro.utils.counters.OpCounters` (deterministic
hot-path op counts) — each with its own lock, snapshot and reset
boilerplate.  Both are now thin compatibility views over one
:class:`MetricsRegistry`:

* **counters** — monotonically increasing integers (``inc``);
* **gauges** — last-written floats (``set_gauge``);
* **histograms** — streaming count/total/min/max summaries (``observe``).

Every instrument takes optional **label dimensions** (``stage="translate"``,
``source="disk"``), so one metric name fans out into a family of labelled
series — the convention used by Prometheus-style metric systems.  Metric
names are dot-separated, namespaced by subsystem (``ops.*`` for the compile
hot path, ``pipeline.*`` for stage telemetry), and :meth:`MetricsRegistry.reset`
accepts a prefix so one view can reset its namespace without clobbering the
others.

The registry is per process, mirroring the registries it replaced: sweep
workers own a private copy and ship deltas back through their point records.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "METRICS",
]

#: Canonical label identity: sorted (key, value) string pairs.
LabelKey = Tuple[Tuple[str, str], ...]

_NO_LABELS: LabelKey = ()


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    if not labels:
        return _NO_LABELS
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _render(name: str, key: LabelKey) -> str:
    """Display form of one labelled series: ``name{k=v,...}``."""
    if not key:
        return name
    inner = ",".join(f"{label}={value}" for label, value in key)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramSummary:
    """Streaming summary of one histogram series (no stored samples)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def copy(self) -> "HistogramSummary":
        return HistogramSummary(self.count, self.total, self.minimum, self.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.minimum, 6) if self.count else None,
            "max": round(self.maximum, 6) if self.count else None,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """Thread-safe labelled counters/gauges/histograms behind one lock.

    This is the shared core the legacy registries delegate to; their
    snapshot/reset/locking boilerplate lives here exactly once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, int]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, HistogramSummary]] = {}

    # ------------------------------------------------------------------ #
    # Writers
    # ------------------------------------------------------------------ #

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        """Increment counter ``name`` (labelled series) by ``amount``."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + int(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` (labelled series) to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into histogram ``name`` (labelled series)."""
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            summary = series.get(key)
            if summary is None:
                summary = series[key] = HistogramSummary()
            summary.observe(float(value))

    # ------------------------------------------------------------------ #
    # Readers
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: object) -> int:
        """Current value of one counter series (0 if never touched)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        key = _label_key(labels)
        with self._lock:
            return self._gauges.get(name, {}).get(key)

    def histogram(self, name: str, **labels: object) -> HistogramSummary:
        """Copy of one histogram series (empty summary if never observed)."""
        key = _label_key(labels)
        with self._lock:
            summary = self._histograms.get(name, {}).get(key)
            return summary.copy() if summary is not None else HistogramSummary()

    def counter_series(self, name: str) -> Dict[LabelKey, int]:
        """Every labelled series of one counter, keyed by label tuple."""
        with self._lock:
            return dict(self._counters.get(name, {}))

    def histogram_series(self, name: str) -> Dict[LabelKey, HistogramSummary]:
        with self._lock:
            return {
                key: summary.copy()
                for key, summary in self._histograms.get(name, {}).items()
            }

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Unlabelled counters under ``prefix``, prefix stripped, sorted.

        This is the view :class:`~repro.utils.counters.OpCounters` exposes:
        its namespace holds plain (label-free) counters only.
        """
        with self._lock:
            out: Dict[str, int] = {}
            for name in sorted(self._counters):
                if not name.startswith(prefix):
                    continue
                series = self._counters[name]
                value = series.get(_NO_LABELS)
                if value is not None:
                    out[name[len(prefix):]] = value
            return out

    def label_values(self, name: str, label: str) -> Tuple[str, ...]:
        """Distinct values one label takes across a counter's series."""
        with self._lock:
            seen = []
            for key in self._counters.get(name, {}):
                for key_label, value in key:
                    if key_label == label and value not in seen:
                        seen.append(value)
            return tuple(seen)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full registry dump: rendered series name → value/summary dict."""
        with self._lock:
            return {
                "counters": {
                    _render(name, key): value
                    for name in sorted(self._counters)
                    for key, value in sorted(self._counters[name].items())
                },
                "gauges": {
                    _render(name, key): value
                    for name in sorted(self._gauges)
                    for key, value in sorted(self._gauges[name].items())
                },
                "histograms": {
                    _render(name, key): summary.as_dict()
                    for name in sorted(self._histograms)
                    for key, summary in sorted(self._histograms[name].items())
                },
            }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def reset(self, prefix: str = "") -> None:
        """Drop every series whose metric name starts with ``prefix``.

        An empty prefix clears the whole registry; the compatibility views
        pass their namespace so resetting op counters leaves stage telemetry
        (and vice versa) untouched.
        """
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                if not prefix:
                    table.clear()
                else:
                    for name in [n for n in table if n.startswith(prefix)]:
                        del table[name]


#: Process-global metrics registry; the compatibility views
#: (``TELEMETRY``, ``OP_COUNTERS``) and the tracer all report here.
METRICS = MetricsRegistry()
