"""Compare two ``BENCH_*.json`` perf trajectories for counter regressions.

The benchmark harness records machine-readable trajectories
(``benchmarks/results/BENCH_figure10.json``, ``BENCH_optimize.json``): a
``rows`` list where each row mixes deterministic counters (``ops_*`` op
counts, gate/edge/width totals) with volatile wall-clock seconds.  This
module diffs two such files **on the deterministic fields only** — wall
times are reported informationally but can never fail the check, which is
what keeps the CI gate green on noisy runners while still failing a change
that reintroduces a quadratic loop.

A counter regresses when the new value exceeds
``max(old * (1 + tolerance), old + slack)`` — the same two-sided limit the
perf-smoke harness uses, so one extra call on a tiny counter is not a
regression but a 10 % jump on a million-op counter is.

Used by ``repro bench diff A.json B.json`` (exit code 1 on regression).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

__all__ = ["BenchDiff", "CounterChange", "diff_bench_files", "load_bench_rows"]

#: Default allowed relative growth per counter (mirrors perf_smoke.py).
DEFAULT_TOLERANCE = 0.10
#: Default absolute slack for tiny counters.
DEFAULT_SLACK = 8

#: Row-key candidates, in preference order: a figure-10 row is keyed by its
#: qubit count, an optimize row by its circuit width.
_KEY_FIELDS = ("qubits", "width", "instance", "label", "name")


def _is_counter_field(name: str, value: object) -> bool:
    """Deterministic-counter heuristic: integer fields that aren't timings."""
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    lowered = name.lower()
    return not (lowered.endswith("_seconds") or lowered.endswith("_s")
                or "duration" in lowered or "time_s" in lowered)


def load_bench_rows(
    path: Union[str, pathlib.Path],
) -> Tuple[str, Dict[str, Dict[str, object]]]:
    """Load a BENCH json; returns (bench name, row-label → row dict)."""
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    rows = document.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: not a BENCH trajectory (no 'rows' list)")
    table: Dict[str, Dict[str, object]] = {}
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {index} is not an object")
        label = f"row{index}"
        for candidate in _KEY_FIELDS:
            if candidate in row:
                label = f"{candidate}={row[candidate]}"
                break
        table[label] = row
    return str(document.get("name", pathlib.Path(path).stem)), table


@dataclass(frozen=True)
class CounterChange:
    """One counter's old → new movement in one row."""

    row: str
    counter: str
    old: int
    new: int
    limit: float

    @property
    def regressed(self) -> bool:
        return self.new > self.limit

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf" if self.new else 1)

    def describe(self) -> str:
        arrow = f"{self.old} -> {self.new}"
        if self.old:
            arrow += f" ({100.0 * (self.new - self.old) / self.old:+.1f}%)"
        return f"{self.row}: {self.counter} {arrow} (limit {self.limit:.0f})"


@dataclass
class BenchDiff:
    """Full comparison of two trajectories."""

    name_a: str
    name_b: str
    regressions: List[CounterChange] = field(default_factory=list)
    improvements: List[CounterChange] = field(default_factory=list)
    unchanged: int = 0
    missing_rows: List[str] = field(default_factory=list)
    new_rows: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_rows

    def report(self) -> str:
        """Readable per-counter report (the CI failure message)."""
        lines = [f"bench diff: {self.name_a} -> {self.name_b}"]
        for row in self.missing_rows:
            lines.append(f"  MISSING  {row}: row absent from the new trajectory")
        for change in self.regressions:
            lines.append(f"  REGRESS  {change.describe()}")
        for change in self.improvements:
            lines.append(f"  improve  {change.describe()}")
        for row in self.new_rows:
            lines.append(f"  new row  {row}")
        lines.append(
            f"  {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{self.unchanged} counter(s) unchanged"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "baseline": self.name_a,
            "candidate": self.name_b,
            "regressions": [change.describe() for change in self.regressions],
            "improvements": [change.describe() for change in self.improvements],
            "unchanged": self.unchanged,
            "missing_rows": self.missing_rows,
            "new_rows": self.new_rows,
        }


def diff_bench_files(
    baseline_path: Union[str, pathlib.Path],
    candidate_path: Union[str, pathlib.Path],
    tolerance: float = DEFAULT_TOLERANCE,
    slack: int = DEFAULT_SLACK,
) -> BenchDiff:
    """Diff two BENCH files; see the module docstring for the semantics."""
    name_a, rows_a = load_bench_rows(baseline_path)
    name_b, rows_b = load_bench_rows(candidate_path)
    diff = BenchDiff(name_a=name_a, name_b=name_b)

    for label, row_a in rows_a.items():
        row_b = rows_b.get(label)
        if row_b is None:
            diff.missing_rows.append(label)
            continue
        for counter in sorted(row_a):
            old = row_a[counter]
            if not _is_counter_field(counter, old):
                continue
            new = row_b.get(counter)
            if not isinstance(new, int) or isinstance(new, bool):
                # A counter dropped from the trajectory counts as missing
                # data, which is a regression of the record itself.
                diff.regressions.append(
                    CounterChange(label, counter, int(old), -1, limit=-1.0)
                )
                continue
            limit = max(old * (1.0 + tolerance), old + slack)
            change = CounterChange(label, counter, int(old), int(new), limit)
            if change.regressed:
                diff.regressions.append(change)
            elif new < old:
                diff.improvements.append(change)
            else:
                diff.unchanged += 1
    diff.new_rows = [label for label in rows_b if label not in rows_a]
    return diff
