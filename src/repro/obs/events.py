"""Structured event log: an append-only JSONL run journal.

Traces answer "where did the time go"; the event log answers "what
happened, in order" — the thing to read when a run fails half-way.  One
:class:`EventLog` per process appends one JSON object per line to a
``.events.jsonl`` file next to the trace:

* a ``run.start`` manifest (run id, argv-style parameters) when opened and
  a ``run.finish`` summary when closed;
* ``stage.start`` / ``stage.finish`` around every pipeline stage, with the
  cache status (``executed`` / ``memory-hit`` / ``disk-hit`` / …);
* ``cache.hit`` / ``cache.miss`` for artifact-cache probes;
* ``error`` events carrying the exception type and full traceback string;
* per-point ``sweep.point`` events from the sweep health monitor.

Every line carries ``schema``, ``seq`` (monotonic per log), ``ts`` and
``event``.  In wall mode ``ts`` is unix time; under
``DCMBQC_TRACE_DETERMINISTIC=1`` it is the same op-counter tick clock the
tracer uses, so the journal is byte-identical across runs of the same
compile and `repro obs report` can merge it into a golden-pinned report.

Like the tracer, the log is **off by default** and the disabled path is one
attribute read (:data:`EVENTS` ``.enabled``), preserving the perf-smoke
byte-identical guarantee.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback as traceback_module
from typing import Dict, List, Optional

__all__ = ["EVENTS", "EventLog", "read_events"]

#: Schema identifier stamped on every event line.
EVENT_SCHEMA = "dcmbqc-events/1"

_DETERMINISTIC_ENV = "DCMBQC_TRACE_DETERMINISTIC"


class EventLog:
    """Append-only JSONL journal; a process singleton mirroring ``TRACER``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        self.enabled = False
        self.deterministic = False
        self.path: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def open(
        self,
        path: str,
        run_id: str = "",
        deterministic: Optional[bool] = None,
        **manifest: object,
    ) -> None:
        """Start journaling to ``path`` and emit the ``run.start`` manifest."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
            self._handle = open(path, "w", encoding="utf-8")
            self._seq = 0
            self.path = path
            self.deterministic = (
                os.environ.get(_DETERMINISTIC_ENV) == "1"
                if deterministic is None
                else deterministic
            )
            self.enabled = True
        self.emit("run.start", run_id=run_id, **manifest)

    def close(self, **summary: object) -> Optional[str]:
        """Emit ``run.finish`` and stop journaling; returns the log path."""
        if not self.enabled:
            return None
        self.emit("run.finish", **summary)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
            self._handle = None
            self.enabled = False
            path, self.path = self.path, None
            return path

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def _timestamp(self) -> float:
        if self.deterministic:
            from repro.utils.counters import OP_COUNTERS

            # The tracer's tick clock: the journal orders by seq, the tick
            # places each event on the same axis as the trace spans.
            return float(sum(OP_COUNTERS.snapshot().values()))
        return round(time.time(), 6)

    def emit(self, event: str, **fields: object) -> None:
        """Append one event line (no-op while the log is closed)."""
        if not self.enabled:
            return
        ts = self._timestamp()
        with self._lock:
            if self._handle is None:
                return
            self._seq += 1
            line = {"schema": EVENT_SCHEMA, "seq": self._seq, "ts": ts, "event": event}
            line.update(fields)
            json.dump(line, self._handle, sort_keys=False, default=str)
            self._handle.write("\n")
            self._handle.flush()

    def error(self, exc: BaseException, **fields: object) -> None:
        """Emit an ``error`` event with the exception type and traceback."""
        if not self.enabled:
            return
        self.emit(
            "error",
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            **fields,
        )


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse an event-log file back into dicts (skipping malformed lines)."""
    events: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                events.append(entry)
    return events


#: Process-global event log; instrumented subsystems check ``.enabled``.
EVENTS = EventLog()
