"""``repro.obs`` — unified observability: tracing, metrics, run health.

The observability substrate every layer of the compiler reports through:

* :mod:`repro.obs.trace` — hierarchical span tracer (context manager +
  decorator API, per-process buffer, run/span identity, parent links,
  op-counter deltas per span, deterministic clock mode for CI pinning);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` core
  (counters/gauges and fixed log-bucketed quantile histograms with label
  dimensions) that the legacy ``TELEMETRY`` and ``OP_COUNTERS`` registries
  are now views over, plus JSON dump/restore for cross-process snapshots;
* :mod:`repro.obs.resources` — per-span RSS/CPU-time deltas and optional
  tracemalloc peaks (``--trace-resources`` / ``--trace-malloc``);
* :mod:`repro.obs.events` — append-only JSONL run journal (manifest, stage
  and cache events, errors with tracebacks, sweep point health);
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  text span trees, top-N self-time summaries, machine-readable trace
  summaries and collapsed-stack flamegraph export;
* :mod:`repro.obs.exposition` — Prometheus text exposition of any registry
  prefix (``repro metrics export``);
* :mod:`repro.obs.report` — ``repro obs report``: one markdown run report
  merging trace + event log + metrics snapshot;
* :mod:`repro.obs.bench_diff` — ``repro bench diff``: counter-regression
  comparison of two ``BENCH_*.json`` perf trajectories.

Quick start::

    from repro.obs import TRACER, span, write_chrome_trace

    TRACER.enable()
    with span("my.phase", items=3):
        ...
    write_chrome_trace("out.json", TRACER.spans())

Tracing, resource sampling and the event log are all off by default and
the disabled per-span fast path is a no-op; merely importing this package
changes no counter, no timing and no output.
"""

from repro.obs.bench_diff import BenchDiff, CounterChange, diff_bench_files
from repro.obs.events import EVENTS, EventLog, read_events
from repro.obs.export import (
    chrome_trace,
    collapsed_stacks,
    load_chrome_trace,
    render_span_tree,
    render_top_spans,
    self_time_rows,
    span_tree_dict,
    span_tree_signature,
    summarize_trace,
    write_chrome_trace,
    write_collapsed_stacks,
)
from repro.obs.exposition import render_prometheus
from repro.obs.metrics import (
    METRICS,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    is_volatile_metric,
    registry_from_dump,
)
from repro.obs.report import build_report
from repro.obs.resources import RESOURCES, ResourceSampler
from repro.obs.trace import (
    DETERMINISTIC_ENV,
    NULL_SPAN,
    TRACE_ENV,
    TRACER,
    Span,
    SpanRecord,
    Tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "BenchDiff",
    "CounterChange",
    "DETERMINISTIC_ENV",
    "EVENTS",
    "EventLog",
    "Histogram",
    "HistogramSummary",
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "RESOURCES",
    "ResourceSampler",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "build_report",
    "chrome_trace",
    "collapsed_stacks",
    "diff_bench_files",
    "is_volatile_metric",
    "load_chrome_trace",
    "read_events",
    "registry_from_dump",
    "render_prometheus",
    "render_span_tree",
    "render_top_spans",
    "self_time_rows",
    "span",
    "span_tree_dict",
    "span_tree_signature",
    "summarize_trace",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
    "write_collapsed_stacks",
]
