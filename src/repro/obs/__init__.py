"""``repro.obs`` — unified observability: tracing, metrics, exporters.

The observability substrate every layer of the compiler reports through:

* :mod:`repro.obs.trace` — hierarchical span tracer (context manager +
  decorator API, per-process buffer, run/span identity, parent links,
  op-counter deltas per span, deterministic clock mode for CI pinning);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` core
  (counters/gauges/histograms with label dimensions) that the legacy
  ``TELEMETRY`` and ``OP_COUNTERS`` registries are now views over;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  text span trees and top-N self-time summaries;
* :mod:`repro.obs.bench_diff` — ``repro bench diff``: counter-regression
  comparison of two ``BENCH_*.json`` perf trajectories.

Quick start::

    from repro.obs import TRACER, span, write_chrome_trace

    TRACER.enable()
    with span("my.phase", items=3):
        ...
    write_chrome_trace("out.json", TRACER.spans())

Tracing is off by default and the disabled per-span fast path is a no-op;
merely importing this package changes no counter, no timing and no output.
"""

from repro.obs.bench_diff import BenchDiff, CounterChange, diff_bench_files
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    render_span_tree,
    render_top_spans,
    span_tree_signature,
    write_chrome_trace,
)
from repro.obs.metrics import METRICS, HistogramSummary, MetricsRegistry
from repro.obs.trace import (
    DETERMINISTIC_ENV,
    NULL_SPAN,
    TRACE_ENV,
    TRACER,
    Span,
    SpanRecord,
    Tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "BenchDiff",
    "CounterChange",
    "DETERMINISTIC_ENV",
    "HistogramSummary",
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "chrome_trace",
    "diff_bench_files",
    "load_chrome_trace",
    "render_span_tree",
    "render_top_spans",
    "span",
    "span_tree_signature",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
]
