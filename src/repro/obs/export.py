"""Trace exporters: Chrome trace-event JSON, text trees and summaries.

:func:`chrome_trace` turns a span buffer into the Chrome trace-event format
(the ``{"traceEvents": [...]}`` JSON object) loadable by Perfetto and
``chrome://tracing``: one complete (``"ph": "X"``) event per span with
microsecond timestamps, plus process/thread metadata events.  Span
attributes, op-counter deltas and the span/parent/run identity travel in
each event's ``args``, so :func:`load_chrome_trace` can reconstruct the
span records and the ``trace summarize`` subcommand can rebuild the tree
from an exported file alone.

In deterministic clock mode span timestamps are op-counter ticks; the
exporter maps one tick to one microsecond and pins ``pid`` to 0, making the
exported bytes a pure function of the compile (the property the golden
trace test and the CI trace-smoke job pin).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import SpanRecord

__all__ = [
    "chrome_trace",
    "collapsed_stacks",
    "load_chrome_trace",
    "render_span_tree",
    "render_top_spans",
    "self_time_rows",
    "span_tree_dict",
    "span_tree_signature",
    "summarize_trace",
    "write_chrome_trace",
    "write_collapsed_stacks",
]

#: Microseconds per wall-clock second (perf_counter spans) — deterministic
#: ticks are exported 1:1 as microseconds instead.
_US = 1_000_000.0


def chrome_trace(
    spans: Sequence[SpanRecord],
    deterministic: bool = False,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Build the Chrome trace-event JSON object for a span buffer."""
    events: List[Dict[str, object]] = []
    pid = 0 if deterministic else None
    origin = min((span.start for span in spans), default=0.0)
    scale = 1.0 if deterministic else _US

    if pid is None:
        import os

        pid = os.getpid()

    events.append(
        {
            "args": {"name": process_name},
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
        }
    )
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    for span in ordered:
        args: Dict[str, object] = {
            "run_id": span.run_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.attributes:
            args.update(sorted(span.attributes.items()))
        for name, value in sorted(span.counter_deltas.items()):
            args[f"ops.{name}"] = value
        events.append(
            {
                "args": args,
                "cat": span.name.partition(".")[0],
                "dur": round((span.end - span.start) * scale, 3),
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": span.tid,
                "ts": round((span.start - origin) * scale, 3),
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(
    path: Union[str, pathlib.Path],
    spans: Sequence[SpanRecord],
    deterministic: bool = False,
) -> pathlib.Path:
    """Serialize ``spans`` to ``path`` in Chrome trace-event JSON."""
    target = pathlib.Path(path)
    document = chrome_trace(spans, deterministic=deterministic)
    target.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_chrome_trace(path: Union[str, pathlib.Path]) -> List[SpanRecord]:
    """Reconstruct span records from an exported Chrome trace file.

    Wall-clock traces were exported with microsecond timestamps; they are
    converted back to seconds here so loaded spans carry the same units as
    in-memory ones.  Deterministic traces (recognisable by the pinned
    ``pid=0``) use tick timestamps exported 1:1 and are left untouched.
    """
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    events = [
        event
        for event in document.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    deterministic = bool(events) and all(event.get("pid") == 0 for event in events)
    scale = 1.0 if deterministic else 1.0 / _US
    spans: List[SpanRecord] = []
    for event in events:
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        run_id = args.pop("run_id", "")
        deltas = {
            key[len("ops."):]: int(value)
            for key, value in list(args.items())
            if key.startswith("ops.")
        }
        attributes = {
            key: value for key, value in args.items() if not key.startswith("ops.")
        }
        start = float(event.get("ts", 0.0)) * scale
        spans.append(
            SpanRecord(
                name=str(event.get("name", "?")),
                span_id=int(span_id) if span_id is not None else len(spans) + 1,
                parent_id=None if parent_id is None else int(parent_id),
                run_id=str(run_id),
                start=start,
                end=start + float(event.get("dur", 0.0)) * scale,
                attributes=attributes,
                counter_deltas=deltas,
                tid=int(event.get("tid", 0)),
            )
        )
    return spans


def _children_index(
    spans: Sequence[SpanRecord],
) -> Tuple[List[SpanRecord], Dict[int, List[SpanRecord]]]:
    """Roots (start order) and parent-id → children (start order) index."""
    by_id = {span.span_id: span for span in spans}
    roots: List[SpanRecord] = []
    children: Dict[int, List[SpanRecord]] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    order = lambda span: (span.start, span.span_id)
    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children


def span_tree_signature(spans: Sequence[SpanRecord]) -> List[str]:
    """Structural digest of a span buffer: nesting + names + counts.

    Sibling spans with the same name collapse into one ``name xN`` line
    (children aggregated across the group), so the signature is stable in
    shape — exactly what the golden trace test pins — while timestamps and
    attributes stay out of it.
    """
    roots, children = _children_index(spans)

    lines: List[str] = []

    def walk(group: Iterable[SpanRecord], depth: int) -> None:
        groups: Dict[str, List[SpanRecord]] = {}
        for span in group:
            groups.setdefault(span.name, []).append(span)
        for name, members in groups.items():
            count = f" x{len(members)}" if len(members) > 1 else ""
            lines.append(f"{'  ' * depth}{name}{count}")
            merged: List[SpanRecord] = []
            for member in members:
                merged.extend(children.get(member.span_id, []))
            merged.sort(key=lambda span: (span.start, span.span_id))
            walk(merged, depth + 1)

    walk(roots, 0)
    return lines


def render_span_tree(
    spans: Sequence[SpanRecord],
    unit: Optional[str] = None,
    max_depth: int = 12,
) -> str:
    """Human-readable span tree with durations and op totals."""
    if not spans:
        return "(no spans)"
    roots, children = _children_index(spans)
    unit = unit or ("ticks" if all(
        float(span.start).is_integer() for span in spans
    ) else "s")

    lines: List[str] = []

    def describe(span: SpanRecord) -> str:
        duration = span.duration
        if unit == "s":
            timing = f"{duration:.4f}s"
        else:
            timing = f"{duration:.0f} {unit}"
        ops = sum(span.counter_deltas.values())
        suffix = f", {ops} ops" if ops else ""
        attrs = ""
        shown = {
            key: value
            for key, value in span.attributes.items()
            if key in ("status", "program", "qubits", "num_qpus", "topology",
                       "task", "label", "accepted", "stage")
        }
        if shown:
            attrs = " [" + ", ".join(f"{k}={v}" for k, v in sorted(shown.items())) + "]"
        return f"{span.name} ({timing}{suffix}){attrs}"

    def walk(span: SpanRecord, depth: int) -> None:
        if depth > max_depth:
            return
        lines.append(f"{'  ' * depth}{describe(span)}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def self_time_rows(
    spans: Sequence[SpanRecord], top: int = 10
) -> List[Dict[str, object]]:
    """Per-name self-time aggregates, ranked by ``(-self, name)``.

    Self time is a span's duration minus its direct children's durations —
    the quantity that answers "where did this compile actually spend its
    time" without double counting the nesting.  Each row carries ``name``,
    ``count``, ``self``, ``total`` and ``share`` (percent of all self time).
    """
    if not spans:
        return []
    _, children = _children_index(spans)
    totals: Dict[str, List[float]] = {}
    for span in spans:
        child_time = sum(c.duration for c in children.get(span.span_id, []))
        self_time = max(0.0, span.duration - child_time)
        bucket = totals.setdefault(span.name, [0.0, 0.0, 0.0])
        bucket[0] += self_time
        bucket[1] += span.duration
        bucket[2] += 1
    grand_total = sum(bucket[0] for bucket in totals.values()) or 1.0
    ranked = sorted(totals.items(), key=lambda item: (-item[1][0], item[0]))[:top]
    return [
        {
            "name": name,
            "count": int(count),
            "self": round(self_time, 6),
            "total": round(total_time, 6),
            "share": round(100.0 * self_time / grand_total, 1),
        }
        for name, (self_time, total_time, count) in ranked
    ]


def render_top_spans(spans: Sequence[SpanRecord], top: int = 10) -> str:
    """Top-N table of span names by aggregate *self* time (see
    :func:`self_time_rows`)."""
    rows = self_time_rows(spans, top=top)
    if not rows:
        return "(no spans)"
    width = max([len("span")] + [len(str(row["name"])) for row in rows])
    lines = [
        f"{'span'.ljust(width)} | count |     self |    total | share",
        f"{'-' * width}-+-------+----------+----------+------",
    ]
    for row in rows:
        lines.append(
            f"{str(row['name']).ljust(width)} | {row['count']:5d} | {row['self']:8.4f} "
            f"| {row['total']:8.4f} | {row['share']:4.1f}%"
        )
    return "\n".join(lines)


def span_tree_dict(spans: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Nested-dict form of the span tree (the ``--json`` summarize payload).

    Each node carries ``name``, ``duration``, ``ops`` (summed counter
    deltas), selected ``attributes`` and its ``children`` — enough to
    rebuild the text tree, stably ordered by ``(start, span_id)``.
    """
    roots, children = _children_index(spans)

    def node(span: SpanRecord) -> Dict[str, object]:
        return {
            "name": span.name,
            "span_id": span.span_id,
            "duration": round(span.duration, 6),
            "ops": sum(span.counter_deltas.values()),
            "attributes": dict(sorted(span.attributes.items())),
            "children": [node(child) for child in children.get(span.span_id, [])],
        }

    return [node(root) for root in roots]


def summarize_trace(spans: Sequence[SpanRecord], top: int = 10) -> Dict[str, object]:
    """Machine-readable trace summary: span tree + self-time table.

    The JSON twin of ``trace summarize``'s text output, following the
    ``bench diff --json`` convention.
    """
    unit = "ticks" if spans and all(
        float(span.start).is_integer() for span in spans
    ) else "s"
    return {
        "spans": len(spans),
        "unit": unit,
        "tree": span_tree_dict(spans),
        "self_time": self_time_rows(spans, top=top),
    }


def collapsed_stacks(spans: Sequence[SpanRecord]) -> List[str]:
    """Collapsed-stack flamegraph lines: ``root;child;leaf <self-time>``.

    The format flamegraph.pl and speedscope ingest directly: one line per
    distinct span path, the value being the aggregate *self* time spent at
    that path in integer microseconds (wall mode) or ticks (deterministic
    mode).  Lines are sorted so the export is deterministic.
    """
    if not spans:
        return []
    _, children = _children_index(spans)
    by_id = {span.span_id: span for span in spans}
    integral = all(float(span.start).is_integer() for span in spans)
    scale = 1.0 if integral else _US

    def path(span: SpanRecord) -> str:
        parts = [span.name]
        seen = {span.span_id}
        current = span
        while current.parent_id is not None and current.parent_id in by_id:
            current = by_id[current.parent_id]
            if current.span_id in seen:  # defensive: cyclic parent links
                break
            seen.add(current.span_id)
            parts.append(current.name)
        return ";".join(reversed(parts))

    weights: Dict[str, float] = {}
    for span in spans:
        child_time = sum(c.duration for c in children.get(span.span_id, []))
        self_time = max(0.0, span.duration - child_time)
        key = path(span)
        weights[key] = weights.get(key, 0.0) + self_time * scale
    return [
        f"{key} {int(round(value))}"
        for key, value in sorted(weights.items())
        if int(round(value)) > 0
    ]


def write_collapsed_stacks(
    path: Union[str, pathlib.Path], spans: Sequence[SpanRecord]
) -> pathlib.Path:
    """Write :func:`collapsed_stacks` lines to ``path`` (one per line)."""
    target = pathlib.Path(path)
    target.write_text("\n".join(collapsed_stacks(spans)) + "\n", encoding="utf-8")
    return target
