"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsRegistry`.

Renders a registry (or a JSON dump of one, see
:meth:`~repro.obs.metrics.MetricsRegistry.dump`) in the Prometheus text
exposition format — the series a future compile-service daemon will serve
on ``/metrics`` and that ``repro metrics export`` prints today:

* counters → ``# TYPE name counter`` + one sample per labelled series;
* gauges → ``# TYPE name gauge``;
* histograms → the full contract: cumulative ``name_bucket{le="..."}``
  samples over the shared bucket ladder, ``name_sum``, ``name_count``, plus
  ``name_p50`` / ``name_p95`` / ``name_p99`` gauges carrying the quantile
  estimates so dashboards need no PromQL ``histogram_quantile`` call.

Metric names are sanitised to the Prometheus grammar (dots and other
illegal characters become ``_``), label values are escaped, and both
families and labels are emitted in sorted order so the exposition is
deterministic for a deterministic registry.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["render_prometheus"]

_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILE_GAUGES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _sanitize_name(name: str) -> str:
    sanitized = _NAME_ILLEGAL.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Sequence[Sequence[str]], extra: str = "") -> str:
    parts = [
        f'{_sanitize_name(str(key))}="{_escape_label_value(str(value))}"'
        for key, value in sorted(tuple(pair) for pair in labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    source: Union[MetricsRegistry, Mapping[str, object]],
    prefix: str = "",
) -> str:
    """Render ``source`` (registry or registry dump) as Prometheus text.

    ``prefix`` restricts output to one metric namespace (``sweep.`` …).
    Returns the exposition ending in a trailing newline, or an empty string
    when nothing matches.
    """
    doc: Mapping[str, object]
    if isinstance(source, MetricsRegistry):
        doc = source.dump(prefix=prefix)
    else:
        doc = source

    lines: List[str] = []
    by_family: Dict[str, List[Mapping[str, object]]] = {}

    def families(kind: str) -> List[Tuple[str, List[Mapping[str, object]]]]:
        by_family.clear()
        for entry in doc.get(kind, ()):  # type: ignore[union-attr]
            name = str(entry["name"])
            if prefix and not name.startswith(prefix):
                continue
            by_family.setdefault(name, []).append(entry)
        return sorted(by_family.items())

    for name, entries in families("counters"):
        metric = _sanitize_name(name)
        lines.append(f"# TYPE {metric} counter")
        for entry in entries:
            labels = _render_labels(entry.get("labels", ()))  # type: ignore[arg-type]
            lines.append(f"{metric}{labels} {_format_value(entry['value'])}")

    for name, entries in families("gauges"):
        metric = _sanitize_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for entry in entries:
            labels = _render_labels(entry.get("labels", ()))  # type: ignore[arg-type]
            lines.append(f"{metric}{labels} {_format_value(entry['value'])}")

    for name, entries in families("histograms"):
        metric = _sanitize_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for entry in entries:
            histogram = Histogram.from_parts(
                entry["count"],  # type: ignore[arg-type]
                entry["total"],  # type: ignore[arg-type]
                entry.get("min"),  # type: ignore[arg-type]
                entry.get("max"),  # type: ignore[arg-type]
                entry.get("buckets", ()),  # type: ignore[arg-type]
            )
            raw_labels = entry.get("labels", ())
            for le, cumulative in histogram.cumulative_buckets():
                bucket_labels = _render_labels(raw_labels, extra=f'le="{le}"')  # type: ignore[arg-type]
                lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
            labels = _render_labels(raw_labels)  # type: ignore[arg-type]
            lines.append(f"{metric}_sum{labels} {_format_value(histogram.total)}")
            lines.append(f"{metric}_count{labels} {histogram.count}")
            for suffix, q in _QUANTILE_GAUGES:
                lines.append(
                    f"{metric}_{suffix}{labels} "
                    f"{_format_value(round(histogram.quantile(q), 6))}"
                )

    return "\n".join(lines) + "\n" if lines else ""
