"""Per-span resource profiling: RSS/CPU-time deltas and tracemalloc peaks.

The tracer (PR 6) records *when* a span ran; this module records *what it
cost*.  When sampling is enabled (``--trace-resources`` / the
``DCMBQC_TRACE_RESOURCES=1`` environment variable) the tracer snapshots the
process resident-set size and CPU time at span open, and on close attaches
the deltas to the span's attrs:

* ``rss_kb_delta`` — resident-set growth across the span, from
  ``/proc/self/status`` ``VmRSS`` (Linux; 0 where /proc is unavailable);
* ``cpu_ms`` — process CPU time (user+system, via
  :func:`time.process_time`) consumed inside the span, in milliseconds;
* ``py_alloc_peak_kb`` — optional tracemalloc traced-memory peak observed
  during the span (``--trace-malloc`` / ``DCMBQC_TRACE_TRACEMALLOC=1``;
  noticeably slower, so it is a separate opt-in).

The sampler is a process singleton (:data:`RESOURCES`) mirroring ``TRACER``:
disabled it costs one attribute read per span, so the perf-smoke
byte-identical guarantee holds.  Under ``DCMBQC_TRACE_DETERMINISTIC=1``
resource attrs are suppressed entirely — RSS and CPU time are not pure
functions of the compile, and the deterministic trace/report must be.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

__all__ = [
    "RESOURCES",
    "RESOURCES_ENV",
    "ResourceSampler",
    "TRACEMALLOC_ENV",
    "read_rss_kb",
]

#: Environment variable enabling RSS/CPU sampling (inherited by workers).
RESOURCES_ENV = "DCMBQC_TRACE_RESOURCES"

#: Environment variable additionally enabling tracemalloc peak tracking.
TRACEMALLOC_ENV = "DCMBQC_TRACE_TRACEMALLOC"

_DETERMINISTIC_ENV = "DCMBQC_TRACE_DETERMINISTIC"

_PROC_STATUS = "/proc/self/status"


def read_rss_kb() -> int:
    """Current resident-set size in kB from ``/proc/self/status`` (0 if N/A)."""
    try:
        with open(_PROC_STATUS, "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


class ResourceSampler:
    """Samples process resources around spans; disabled by default.

    ``before()`` returns an opaque snapshot tuple (or ``None`` when
    disabled); ``delta(snapshot)`` turns it into span attrs.  The tracer
    calls both, so instrumented code never touches this class directly.
    """

    __slots__ = ("enabled", "_tracemalloc", "_suppressed")

    def __init__(self) -> None:
        self.enabled = False
        self._tracemalloc = False
        self._suppressed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def enable(self, tracemalloc_peaks: bool = False) -> None:
        """Start sampling; optionally also track tracemalloc peaks."""
        # Deterministic traces must stay a pure function of the compile;
        # RSS/CPU numbers are not, so sampling is forced off under the
        # deterministic clock (the flag is remembered for error messages).
        self._suppressed = os.environ.get(_DETERMINISTIC_ENV) == "1"
        self.enabled = not self._suppressed
        self._tracemalloc = bool(tracemalloc_peaks) and self.enabled
        if self._tracemalloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()

    def disable(self) -> None:
        if self._tracemalloc:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()
        self.enabled = False
        self._tracemalloc = False
        self._suppressed = False

    def ensure_enabled_from_environment(self) -> None:
        """Adopt the parent process's sampling config (worker-side hook)."""
        if not self.enabled and os.environ.get(RESOURCES_ENV) == "1":
            self.enable(
                tracemalloc_peaks=os.environ.get(TRACEMALLOC_ENV) == "1"
            )

    @property
    def suppressed(self) -> bool:
        """True when enable() was requested but deterministic mode vetoed it."""
        return self._suppressed

    @property
    def tracemalloc_enabled(self) -> bool:
        return self._tracemalloc

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def before(self) -> Optional[Tuple[int, float, int]]:
        """Snapshot (rss_kb, cpu_seconds, tracemalloc_peak_bytes) or None."""
        if not self.enabled:
            return None
        peak = 0
        if self._tracemalloc:
            import tracemalloc

            # Reset the peak so each span observes its own high-water mark.
            tracemalloc.reset_peak()
            peak = tracemalloc.get_traced_memory()[0]
        return (read_rss_kb(), time.process_time(), peak)

    def delta(
        self, snapshot: Optional[Tuple[int, float, int]]
    ) -> Dict[str, object]:
        """Span attrs for the resources consumed since ``snapshot``."""
        if snapshot is None or not self.enabled:
            return {}
        rss_before, cpu_before, _ = snapshot
        attrs: Dict[str, object] = {
            "rss_kb_delta": read_rss_kb() - rss_before,
            "cpu_ms": round((time.process_time() - cpu_before) * 1000.0, 3),
        }
        if self._tracemalloc:
            import tracemalloc

            _, peak = tracemalloc.get_traced_memory()
            attrs["py_alloc_peak_kb"] = peak // 1024
        return attrs


#: Process-global sampler; the tracer consults it at span open/close.
RESOURCES = ResourceSampler()
