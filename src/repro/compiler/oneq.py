"""OneQ-style baseline compiler.

OneQ (Zhang et al., ISCA 2023) is the paper's baseline: it abstracts the
input program into a computation graph (the *fusion graph*) and maps it onto
the 3D resource grid of a single QPU.  This class is a faithful functional
stand-in: it accepts a circuit, a measurement pattern, or a pre-built
computation graph and produces a :class:`SingleQPUSchedule` whose execution
time and required photon lifetime play the role of the "Baseline" columns of
Tables III-V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph, computation_graph_from_pattern
from repro.compiler.execution import SingleQPUSchedule
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern
from repro.mbqc.translate import circuit_to_pattern

__all__ = ["OneQCompiler"]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]


@dataclass
class OneQCompiler:
    """Single-QPU photonic MBQC compiler (the paper's baseline).

    Attributes:
        grid_size: Side length of the QPU's logical resource layer.
        rsg_type: Resource-state shape used by the RSGs.
        seed: Seed for any randomised tie-breaking inside the mapper.
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    seed: int = 0

    def _to_computation_graph(self, program: CompilationInput) -> ComputationGraph:
        if isinstance(program, ComputationGraph):
            return program
        if isinstance(program, Pattern):
            return computation_graph_from_pattern(program)
        if isinstance(program, QuantumCircuit):
            return computation_graph_from_pattern(circuit_to_pattern(program))
        raise TypeError(f"cannot compile object of type {type(program).__name__}")

    def compile(self, program: CompilationInput) -> SingleQPUSchedule:
        """Compile ``program`` for a single QPU.

        Args:
            program: A :class:`QuantumCircuit`, a :class:`Pattern`, or a
                :class:`ComputationGraph`.
        """
        computation = self._to_computation_graph(program)
        config = MapperConfig(
            grid_size=self.grid_size,
            rsg_type=ResourceStateType.from_name(self.rsg_type),
            seed=self.seed,
        )
        return LayeredGridMapper(config).map(computation)
