"""OneQ-style baseline compiler.

OneQ (Zhang et al., ISCA 2023) is the paper's baseline: it abstracts the
input program into a computation graph (the *fusion graph*) and maps it onto
the 3D resource grid of a single QPU.  This class is a faithful functional
stand-in: it accepts a circuit, a measurement pattern, or a pre-built
computation graph and produces a :class:`SingleQPUSchedule` whose execution
time and required photon lifetime play the role of the "Baseline" columns of
Tables III-V.

Compilation routes through the staged pipeline (:mod:`repro.pipeline`):
translate → compgraph → grid mapping, with every stage memoised in the
process-local cache and — when ``DCMBQC_ARTIFACT_CACHE_DIR`` is set — the
shared on-disk artifact store.  Repeated compiles of the same program are
cache hits, and the upstream pattern/computation-graph artifacts are shared
with :class:`~repro.compiler.oneadapt.OneAdaptCompiler` and the distributed
compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph
from repro.compiler.execution import SingleQPUSchedule
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern

__all__ = ["OneQCompiler"]

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]

_DEFAULT_STORE = object()  # sentinel: resolve the store from the environment


@dataclass
class OneQCompiler:
    """Single-QPU photonic MBQC compiler (the paper's baseline).

    Attributes:
        grid_size: Side length of the QPU's logical resource layer.
        rsg_type: Resource-state shape used by the RSGs.
        placement_jitter: Randomised tie-breaking of placement candidates;
            0 keeps the mapper fully deterministic.
        seed: Seed for the mapper's randomised tie-breaking.
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    placement_jitter: float = 0.0
    seed: int = 0

    def _pipeline(self, store, use_cache: bool, no_cache_stages=(), memo=None):
        from repro.pipeline import Pipeline, resolve_store, single_qpu_stages

        if store is _DEFAULT_STORE:
            store = resolve_store(enabled=use_cache)
        return Pipeline(
            single_qpu_stages(
                grid_size=self.grid_size,
                rsg_type=self.rsg_type,
                placement_jitter=self.placement_jitter,
                seed=self.seed,
            ),
            store=store,
            use_cache=use_cache,
            no_cache_stages=no_cache_stages,
            memo=memo,
        )

    def compile_run(
        self,
        program: CompilationInput,
        store=_DEFAULT_STORE,
        use_cache: bool = True,
        no_cache_stages=(),
        memo=None,
    ) -> Tuple[SingleQPUSchedule, "object"]:
        """Compile ``program`` and return ``(schedule, pipeline run)``.

        The pipeline run carries the provenance manifest (per-stage cache
        status, keys and timing) used by the CLI and by telemetry tests.
        ``no_cache_stages`` forces the named stages to execute (no cache
        lookup) while still publishing their artifacts; ``memo`` overrides
        the process-global in-memory cache (runtime benchmarks use a private
        one so their stage reuse is deterministic).
        """
        from repro.pipeline.stages import initial_program_state

        run = self._pipeline(store, use_cache, no_cache_stages, memo).run(
            initial_program_state(program)
        )
        return run.state["schedule"], run

    def compile(self, program: CompilationInput) -> SingleQPUSchedule:
        """Compile ``program`` for a single QPU.

        Args:
            program: A :class:`QuantumCircuit`, a :class:`Pattern`, or a
                :class:`ComputationGraph`.
        """
        return self.compile_run(program)[0]
