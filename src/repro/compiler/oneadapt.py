"""OneAdapt-style compiler: dynamic refresh and boundary reservation.

OneAdapt (Zhang et al., 2025) bounds the storage time of every photon with a
*dynamic refresh* mechanism: a photon about to exceed a predefined lifetime
limit is remapped (refreshed) onto a fresh photon in a later layer, at the
cost of extra resource-state consumption.  For the distributed comparison of
Section V-C, the paper additionally models the inter-QPU communication
overhead of a monolithic compiler by reserving the boundary resource states
of every layer as communication interfaces, shrinking the usable grid by 2
in each dimension.

This implementation reproduces both behaviours on top of the shared grid
mapper:

* fusee waits are capped at ``refresh_limit``; every refresh consumes one
  extra resource cell, and the aggregate overhead is appended to the
  schedule as additional layers (the execution-time cost of refreshing),
* ``boundary_reservation=True`` compiles on a ``(L-2) x (L-2)`` grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph, computation_graph_from_pattern
from repro.compiler.execution import ExecutionLayer, SingleQPUSchedule
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern
from repro.mbqc.translate import circuit_to_pattern

__all__ = ["OneAdaptCompiler"]

DEFAULT_REFRESH_LIMIT = 20
"""Default photon-lifetime bound enforced by dynamic refresh."""

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]


@dataclass
class OneAdaptCompiler:
    """Single-QPU compiler with a bounded required photon lifetime.

    Attributes:
        grid_size: Side length of the QPU's logical resource layer.
        rsg_type: Resource-state shape used by the RSGs.
        refresh_limit: Maximum storage duration before a photon is refreshed.
        boundary_reservation: Reserve the boundary ring of every layer for
            communication interfaces (the distributed-comparison model).
        seed: Seed for the mapper's randomised tie-breaking.
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    refresh_limit: int = DEFAULT_REFRESH_LIMIT
    boundary_reservation: bool = False
    seed: int = 0

    def _to_computation_graph(self, program: CompilationInput) -> ComputationGraph:
        if isinstance(program, ComputationGraph):
            return program
        if isinstance(program, Pattern):
            return computation_graph_from_pattern(program)
        if isinstance(program, QuantumCircuit):
            return computation_graph_from_pattern(circuit_to_pattern(program))
        raise TypeError(f"cannot compile object of type {type(program).__name__}")

    def compile(self, program: CompilationInput) -> SingleQPUSchedule:
        """Compile ``program`` with dynamic refresh enabled."""
        if self.refresh_limit < 1:
            raise ValueError("refresh limit must be at least one clock cycle")
        computation = self._to_computation_graph(program)
        config = MapperConfig(
            grid_size=self.grid_size,
            rsg_type=ResourceStateType.from_name(self.rsg_type),
            boundary_reservation=self.boundary_reservation,
            seed=self.seed,
        )
        schedule = LayeredGridMapper(config).map(computation)

        # Count the refreshes needed to keep every fusee wait below the limit
        # and convert them into an execution-time overhead: each refresh
        # consumes one resource cell, and a layer provides roughly as many
        # spare cells as the average number of photons it hosts.
        node_layer = schedule.node_layer_index()
        refreshes = 0
        for u, v in schedule.fusee_pairs:
            span = abs(node_layer[u] - node_layer[v])
            if span > self.refresh_limit:
                refreshes += (span - 1) // self.refresh_limit
        extra_layers = 0
        if refreshes and schedule.num_layers:
            average_nodes = max(
                1.0, computation.num_nodes / schedule.num_layers
            )
            extra_layers = int(math.ceil(refreshes / average_nodes))

        layers = list(schedule.layers)
        for offset in range(extra_layers):
            layers.append(
                ExecutionLayer(index=schedule.num_layers + offset, node_cells={})
            )
        return SingleQPUSchedule(
            layers=layers,
            computation=computation,
            grid_size=self.grid_size,
            rsg_type=ResourceStateType.from_name(self.rsg_type),
            fusee_pairs=list(schedule.fusee_pairs),
            lifetime_cap=self.refresh_limit,
            overflow_nodes=set(schedule.overflow_nodes),
        )
