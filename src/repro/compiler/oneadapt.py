"""OneAdapt-style compiler: dynamic refresh and boundary reservation.

OneAdapt (Zhang et al., 2025) bounds the storage time of every photon with a
*dynamic refresh* mechanism: a photon about to exceed a predefined lifetime
limit is remapped (refreshed) onto a fresh photon in a later layer, at the
cost of extra resource-state consumption.  For the distributed comparison of
Section V-C, the paper additionally models the inter-QPU communication
overhead of a monolithic compiler by reserving the boundary resource states
of every layer as communication interfaces, shrinking the usable grid by 2
in each dimension.

This implementation reproduces both behaviours on top of the shared grid
mapper:

* fusee waits are capped at ``refresh_limit``; every refresh consumes one
  extra resource cell, and the aggregate overhead is appended to the
  schedule as additional layers (the execution-time cost of refreshing),
* ``boundary_reservation=True`` compiles on a ``(L-2) x (L-2)`` grid.

The translate/compgraph/mapping phases route through the staged pipeline
(:mod:`repro.pipeline`), so the mapped schedule is a cached artifact shared
with OneQ (when ``boundary_reservation`` is off) and reused across refresh
limits; the compiler's ``seed`` threads into the mapper's randomised
tie-breaking, which keeps repeated compiles bit-identical — the property
artifact caching relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compgraph import ComputationGraph
from repro.compiler.execution import ExecutionLayer, SingleQPUSchedule
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.pattern import Pattern

__all__ = ["OneAdaptCompiler"]

DEFAULT_REFRESH_LIMIT = 20
"""Default photon-lifetime bound enforced by dynamic refresh."""

CompilationInput = Union[QuantumCircuit, Pattern, ComputationGraph]

_DEFAULT_STORE = object()  # sentinel: resolve the store from the environment


@dataclass
class OneAdaptCompiler:
    """Single-QPU compiler with a bounded required photon lifetime.

    Attributes:
        grid_size: Side length of the QPU's logical resource layer.
        rsg_type: Resource-state shape used by the RSGs.
        refresh_limit: Maximum storage duration before a photon is refreshed.
        boundary_reservation: Reserve the boundary ring of every layer for
            communication interfaces (the distributed-comparison model).
        placement_jitter: Randomised tie-breaking of placement candidates;
            0 keeps the mapper fully deterministic.
        seed: Seed for the mapper's randomised tie-breaking.
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    refresh_limit: int = DEFAULT_REFRESH_LIMIT
    boundary_reservation: bool = False
    placement_jitter: float = 0.0
    seed: int = 0

    def _pipeline(self, store, use_cache: bool):
        from repro.pipeline import Pipeline, resolve_store, single_qpu_stages

        if store is _DEFAULT_STORE:
            store = resolve_store(enabled=use_cache)
        return Pipeline(
            single_qpu_stages(
                grid_size=self.grid_size,
                rsg_type=self.rsg_type,
                boundary_reservation=self.boundary_reservation,
                placement_jitter=self.placement_jitter,
                seed=self.seed,
            ),
            store=store,
            use_cache=use_cache,
        )

    def compile_run(
        self,
        program: CompilationInput,
        store=_DEFAULT_STORE,
        use_cache: bool = True,
    ) -> Tuple[SingleQPUSchedule, "object"]:
        """Compile with dynamic refresh; returns ``(schedule, pipeline run)``."""
        from repro.pipeline.stages import initial_program_state

        if self.refresh_limit < 1:
            raise ValueError("refresh limit must be at least one clock cycle")
        run = self._pipeline(store, use_cache).run(initial_program_state(program))
        schedule = self._apply_refresh(
            run.state["schedule"], run.state["computation"]
        )
        return schedule, run

    def compile(self, program: CompilationInput) -> SingleQPUSchedule:
        """Compile ``program`` with dynamic refresh enabled."""
        return self.compile_run(program)[0]

    def _apply_refresh(
        self, schedule: SingleQPUSchedule, computation: ComputationGraph
    ) -> SingleQPUSchedule:
        """Convert over-limit fusee waits into refresh execution overhead.

        Count the refreshes needed to keep every fusee wait below the limit
        and convert them into an execution-time overhead: each refresh
        consumes one resource cell, and a layer provides roughly as many
        spare cells as the average number of photons it hosts.
        """
        node_layer = schedule.node_layer_index()
        refreshes = 0
        for u, v in schedule.fusee_pairs:
            span = abs(node_layer[u] - node_layer[v])
            if span > self.refresh_limit:
                refreshes += (span - 1) // self.refresh_limit
        extra_layers = 0
        if refreshes and schedule.num_layers:
            average_nodes = max(
                1.0, computation.num_nodes / schedule.num_layers
            )
            extra_layers = int(math.ceil(refreshes / average_nodes))

        layers = list(schedule.layers)
        for offset in range(extra_layers):
            layers.append(
                ExecutionLayer(index=schedule.num_layers + offset, node_cells={})
            )
        return SingleQPUSchedule(
            layers=layers,
            computation=computation,
            grid_size=self.grid_size,
            rsg_type=ResourceStateType.from_name(self.rsg_type),
            fusee_pairs=list(schedule.fusee_pairs),
            lifetime_cap=self.refresh_limit,
            overflow_nodes=set(schedule.overflow_nodes),
        )
