"""Greedy layered mapping of computation graphs onto the 3D resource grid.

The mapper realises the second compilation stage described in Section II-C:
every computation-graph node is assigned to a (layer, cell) position on the
QPU's ``L x L`` grid such that every edge is realised by fusions — an
intra-layer routing path (a chain of fusions through neighbouring cells,
Figure 4 (c)) when both photons belong to the same layer, or a delay-line
wait plus a routing hop in the later photon's layer when they do not.

The algorithm is greedy, deterministic, and driven by two constraints:

* **dependency feasibility** — a photon whose measurement basis depends on
  the outcome of another photon is never generated before that photon's
  layer has passed (generating it earlier would only add storage time), so a
  node's earliest layer is one past the latest layer of its real-time
  dependency parents;
* **layer capacity** — a layer's ``L x L`` cells are shared between hosted
  photons, intra-layer routing segments and degree-expansion cells; when a
  layer has no free cell the node spills to a later layer.

Nodes are processed in measurement order and placed into the earliest
feasible layer, at the free cell closest to the centroid of their placed
neighbours.  Resource-state shapes influence the mapping through
``routing_uses`` (the 6-ring provides two routing segments per cell) and
``native_degree`` (high-degree nodes claim extra expansion cells), which is
how the Figure 7 resource-state comparison arises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.compgraph import ComputationGraph
from repro.compiler.execution import ExecutionLayer, SingleQPUSchedule
from repro.hardware.resource_states import (
    RESOURCE_STATE_LIBRARY,
    ResourceStateSpec,
    ResourceStateType,
)
from repro.obs.trace import TRACER
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import CompilationError
from repro.utils.grid import GridPoint, l_shaped_path, manhattan_distance, spiral_order
from repro.utils.rng import make_rng

__all__ = ["MapperConfig", "LayeredGridMapper"]


@dataclass(frozen=True)
class MapperConfig:
    """Configuration of the layered grid mapper.

    Attributes:
        grid_size: Side length of the QPU's 2D logical resource layer.
        rsg_type: Resource-state shape emitted by the RSGs.
        boundary_reservation: Reserve the outermost ring of cells for
            communication interfaces (used to model OneAdapt's distributed
            adaptation, Section V-C); shrinks the usable grid by 2.
        placement_jitter: Optional randomised tie-breaking of placement
            candidates; 0 keeps the mapper fully deterministic.
        seed: Seed for the jitter RNG.
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    boundary_reservation: bool = False
    placement_jitter: float = 0.0
    seed: int = 0

    @property
    def usable_grid_size(self) -> int:
        """Grid side length actually available for computation."""
        if self.boundary_reservation:
            return max(1, self.grid_size - 2)
        return self.grid_size

    @property
    def resource_spec(self) -> ResourceStateSpec:
        """Combinatorial capabilities of the configured resource state."""
        return RESOURCE_STATE_LIBRARY[ResourceStateType.from_name(self.rsg_type)]


class _LayerState:
    """Mutable bookkeeping for one (still open) execution layer."""

    def __init__(self, index: int, size: int, routing_uses: int = 1) -> None:
        self.index = index
        self.size = size
        self.routing_uses = max(1, routing_uses)
        self.node_cells: Dict[int, GridPoint] = {}
        self.routing_cells: Dict[GridPoint, int] = {}
        self.routing_segments = 0
        # Occupied-cell set mirroring node_cells.values(); keeps the hot
        # is_free/routing_cell_available probes O(1) instead of scanning
        # every hosted photon per candidate cell.
        self._occupied: set = set()

    def is_free(self, cell: GridPoint) -> bool:
        """True if a node could be placed on ``cell``."""
        return cell not in self._occupied and cell not in self.routing_cells

    def has_space(self) -> bool:
        """True if the layer can still host another photon.

        Two budgets must both have head-room: the geometric one (every cell
        is either a photon or a routing cell) and the aggregate routing one
        (each resource state provides ``routing_uses`` routing segments, so
        the total number of segments the layer can supply is bounded by the
        cells not hosting photons).  The aggregate budget also accounts for
        congested connections that could not reserve exact cells.
        """
        cells = self.size * self.size
        geometric = len(self.node_cells) + len(self.routing_cells)
        if geometric >= cells:
            return False
        routing_budget = (cells - len(self.node_cells) - 1) * self.routing_uses
        return self.routing_segments < routing_budget

    def place_node(self, node: int, cell: GridPoint) -> None:
        self.node_cells[node] = cell
        self._occupied.add(cell)

    def routing_cell_available(self, cell: GridPoint, routing_uses: int) -> bool:
        if cell in self._occupied:
            return False
        return self.routing_cells.get(cell, 0) < routing_uses

    def mark_routing(self, cell: GridPoint) -> None:
        self.routing_cells[cell] = self.routing_cells.get(cell, 0) + 1

    def to_execution_layer(self) -> ExecutionLayer:
        return ExecutionLayer(
            index=self.index,
            node_cells=dict(self.node_cells),
            routing_segments=self.routing_segments,
        )


class LayeredGridMapper:
    """Map a computation graph onto execution layers of one QPU."""

    def __init__(self, config: MapperConfig) -> None:
        if config.grid_size < 1:
            raise CompilationError("grid size must be positive")
        self.config = config
        self._rng = make_rng(config.seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def map(self, computation: ComputationGraph) -> SingleQPUSchedule:
        """Produce a :class:`SingleQPUSchedule` for ``computation``."""
        with TRACER.span(
            "mapper.map",
            grid_size=self.config.grid_size,
            nodes=computation.graph.number_of_nodes(),
        ):
            return self._map(computation)

    def _map(self, computation: ComputationGraph) -> SingleQPUSchedule:
        size = self.config.usable_grid_size
        spec = self.config.resource_spec
        spiral = spiral_order(size)

        layers: List[_LayerState] = [_LayerState(0, size, spec.routing_uses)]
        node_layer: Dict[int, int] = {}
        node_cell: Dict[int, GridPoint] = {}
        fusee_pairs: List[Tuple[int, int]] = []
        overflow: Set[int] = set()
        earliest_open = 0  # layers before this index are known to be full

        def layer_at(index: int) -> _LayerState:
            while index >= len(layers):
                layers.append(_LayerState(len(layers), size, spec.routing_uses))
            return layers[index]

        dependency = computation.dependency.graph

        for node in computation.order:
            neighbors = computation.neighbors(node)
            placed_neighbors = [v for v in neighbors if v in node_layer]

            # Earliest layer allowed by real-time measurement dependencies.
            min_layer = 0
            if node in dependency:
                for parent in dependency.predecessors(node):
                    if parent in node_layer:
                        min_layer = max(min_layer, node_layer[parent] + 1)

            # Find the earliest feasible layer with a free cell.  Layers
            # before ``earliest_open`` are known to be full already.
            index = max(min_layer, earliest_open)
            chosen_layer: Optional[_LayerState] = None
            chosen_cell: Optional[GridPoint] = None
            while True:
                candidate = layer_at(index)
                if candidate.has_space():
                    target = self._placement_target(
                        placed_neighbors, node_cell, node_layer, candidate, spiral
                    )
                    cell = self._nearest_free_cell(candidate, target, size)
                    if cell is not None:
                        chosen_layer, chosen_cell = candidate, cell
                        break
                index += 1
                if index > len(computation.order) + len(layers) + 1:
                    # Defensive: should be unreachable because fresh layers
                    # are always empty.
                    overflow.add(node)
                    chosen_layer = layer_at(index)
                    chosen_cell = spiral[0]
                    break

            assert chosen_layer is not None and chosen_cell is not None
            chosen_layer.place_node(node, chosen_cell)
            node_layer[node] = chosen_layer.index
            node_cell[node] = chosen_cell
            while earliest_open < len(layers) and not layers[earliest_open].has_space():
                earliest_open += 1

            # Degree expansion: high-degree nodes claim extra adjacent cells.
            extra_cells = max(0, (len(neighbors) - spec.native_degree + 1) // 2)
            self._claim_expansion_cells(chosen_layer, chosen_cell, extra_cells, size)

            # Realise edges towards already-placed neighbours.
            for neighbor in placed_neighbors:
                fusee_pairs.append((neighbor, node))
                later_index = max(node_layer[neighbor], chosen_layer.index)
                routing_layer = layers[later_index]
                source = node_cell[node]
                destination = node_cell[neighbor]
                cross_layer = node_layer[neighbor] != chosen_layer.index
                self._route_intra_layer(
                    routing_layer, source, destination, spec.routing_uses
                )
                # Every connection consumes one fusion segment; a connection
                # whose partner waited in a delay line additionally needs an
                # inter-layer fusion to re-inject the stored photon.
                routing_layer.routing_segments += 2 if cross_layer else 1

        OP_COUNTERS.add("mapper.placements", len(computation.order))
        execution_layers = [layer.to_execution_layer() for layer in layers]
        # Drop trailing layers that ended up empty (no photons generated).
        while execution_layers and not execution_layers[-1].node_cells:
            execution_layers.pop()

        schedule = SingleQPUSchedule(
            layers=execution_layers,
            computation=computation,
            grid_size=self.config.grid_size,
            rsg_type=ResourceStateType.from_name(self.config.rsg_type),
            fusee_pairs=fusee_pairs,
            overflow_nodes=overflow,
        )
        schedule.validate()
        return schedule

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #

    def _placement_target(
        self,
        placed_neighbors: Sequence[int],
        node_cell: Dict[int, GridPoint],
        node_layer: Dict[int, int],
        layer: _LayerState,
        spiral: Sequence[GridPoint],
    ) -> GridPoint:
        """Choose the cell the node would ideally occupy in ``layer``."""
        anchors = [node_cell[neighbor] for neighbor in placed_neighbors]
        if anchors:
            row = round(sum(a.row for a in anchors) / len(anchors))
            col = round(sum(a.col for a in anchors) / len(anchors))
            if self.config.placement_jitter > 0.0:
                row += int(self._rng.integers(-1, 2))
                col += int(self._rng.integers(-1, 2))
            size = layer.size
            return GridPoint(min(max(row, 0), size - 1), min(max(col, 0), size - 1))
        index = min(len(layer.node_cells), len(spiral) - 1)
        return spiral[index]

    @staticmethod
    def _nearest_free_cell(
        layer: _LayerState, target: GridPoint, size: int
    ) -> Optional[GridPoint]:
        """Find the free cell closest (by expanding Chebyshev rings) to ``target``."""
        if target.in_bounds(size) and layer.is_free(target):
            OP_COUNTERS.add("mapper.cell_probes")
            return target
        probes = 1
        result: Optional[GridPoint] = None
        for radius in range(1, size):
            best: Optional[GridPoint] = None
            best_distance: Optional[int] = None
            for d_row in range(-radius, radius + 1):
                for d_col in range(-radius, radius + 1):
                    if max(abs(d_row), abs(d_col)) != radius:
                        continue
                    probes += 1
                    cell = target.shifted(d_row, d_col)
                    if cell.in_bounds(size) and layer.is_free(cell):
                        distance = manhattan_distance(cell, target)
                        if best is None or distance < best_distance:
                            best, best_distance = cell, distance
            if best is not None:
                result = best
                break
        OP_COUNTERS.add("mapper.cell_probes", probes)
        return result

    def _claim_expansion_cells(
        self, layer: _LayerState, around: GridPoint, count: int, size: int
    ) -> None:
        """Reserve ``count`` free cells adjacent to a high-degree node."""
        if count <= 0:
            return
        claimed = 0
        for radius in range(1, size):
            if claimed >= count:
                return
            for d_row in range(-radius, radius + 1):
                for d_col in range(-radius, radius + 1):
                    if max(abs(d_row), abs(d_col)) != radius:
                        continue
                    cell = around.shifted(d_row, d_col)
                    if cell.in_bounds(size) and layer.is_free(cell):
                        layer.mark_routing(cell)
                        layer.routing_segments += 1
                        claimed += 1
                        if claimed >= count:
                            return

    def _route_intra_layer(
        self,
        layer: _LayerState,
        source: GridPoint,
        destination: GridPoint,
        routing_uses: int,
    ) -> None:
        """Reserve routing cells for a connection realised in ``layer``.

        Two L-shaped bends are tried; if both are congested the connection
        is still counted (abstract overflow) so compilation always succeeds,
        but the consumed segments make the layer fill up and close sooner.
        """
        distance = manhattan_distance(source, destination)
        if distance <= 1:
            return
        for path in (
            l_shaped_path(source, destination),
            list(reversed(l_shaped_path(destination, source))),
        ):
            interior = [cell for cell in path[1:-1]]
            if all(layer.routing_cell_available(cell, routing_uses) for cell in interior):
                for cell in interior:
                    layer.mark_routing(cell)
                layer.routing_segments += len(interior)
                return
        # Congested: account for the segments without reserving exact cells.
        layer.routing_segments += max(0, distance - 1)
