"""Single-QPU photonic MBQC compilation.

This package provides the paper's *substrate* compilers — the engines that
map a computation graph onto the 3D (2D-spatial + 1D-temporal) resource grid
of one photonic QPU (Section II-C):

* :mod:`~repro.compiler.compgraph` — the computation graph extracted from a
  measurement pattern (nodes = photons, edges = fusions) together with its
  real-time dependency structure,
* :mod:`~repro.compiler.execution` — the execution-layer IR produced by the
  mappers,
* :mod:`~repro.compiler.mapper` — the greedy layered grid mapper with
  explicit cell accounting (placement, intra-layer routing, vertical
  carries),
* :mod:`~repro.compiler.oneq` — the OneQ-style baseline compiler,
* :mod:`~repro.compiler.oneadapt` — the OneAdapt-style variant with a
  bounded photon lifetime (dynamic refresh) and boundary reservation.
"""

from repro.compiler.compgraph import ComputationGraph, computation_graph_from_pattern
from repro.compiler.execution import ExecutionLayer, SingleQPUSchedule
from repro.compiler.mapper import LayeredGridMapper, MapperConfig
from repro.compiler.oneq import OneQCompiler
from repro.compiler.oneadapt import OneAdaptCompiler

__all__ = [
    "ComputationGraph",
    "computation_graph_from_pattern",
    "ExecutionLayer",
    "SingleQPUSchedule",
    "LayeredGridMapper",
    "MapperConfig",
    "OneQCompiler",
    "OneAdaptCompiler",
]
