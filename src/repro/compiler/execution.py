"""Execution-layer intermediate representation.

The output of a single-QPU compilation pass is a time-ordered sequence of
:class:`ExecutionLayer` objects: each layer says which photons are generated
in that logical clock cycle, where they sit on the 2D grid, and how many
cells the layer spends on routing and on vertical carries.  The
:class:`SingleQPUSchedule` bundles the layers with the computation graph and
exposes the two paper metrics (execution time and required photon lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.compgraph import ComputationGraph
from repro.hardware.resource_states import ResourceStateType
from repro.metrics.exec_time import execution_time_of_layers
from repro.metrics.lifetime import LifetimeReport, required_photon_lifetime
from repro.utils.errors import ValidationError
from repro.utils.grid import GridPoint

__all__ = ["ExecutionLayer", "SingleQPUSchedule"]


@dataclass
class ExecutionLayer:
    """One logical clock cycle of a compiled program on one QPU.

    Attributes:
        index: Position of the layer in the schedule (0-based).
        node_cells: Placement of every photon generated in this layer.
        routing_segments: Number of routing segments consumed by intra-layer
            connections established in this layer.
        carried_nodes: Photons from earlier layers whose grid cell is kept
            reserved in this layer (vertical tracks for pending connections).
        is_connection_layer: True for the special layers inserted by the
            distributed compiler to route connectors to communication
            resources (Section IV, Figure 6(b)).
    """

    index: int
    node_cells: Dict[int, GridPoint] = field(default_factory=dict)
    routing_segments: int = 0
    carried_nodes: Set[int] = field(default_factory=set)
    is_connection_layer: bool = False

    @property
    def nodes(self) -> List[int]:
        """Photons generated in this layer."""
        return sorted(self.node_cells)

    @property
    def num_nodes(self) -> int:
        """Number of photons generated in this layer."""
        return len(self.node_cells)

    def cell_of(self, node: int) -> GridPoint:
        """Grid cell of ``node`` (raises if the node is not in this layer)."""
        return self.node_cells[node]


@dataclass
class SingleQPUSchedule:
    """The compiled output for one QPU.

    Attributes:
        layers: Execution layers in time order.
        computation: The computation (sub)graph this schedule realises.
        grid_size: Side length of the QPU's resource grid.
        rsg_type: Resource-state shape assumed by the mapper.
        fusee_pairs: Photon pairs joined by a fusion, including cross-layer
            connections realised through vertical carries.
        lifetime_cap: Optional bound applied to individual fusee waits by a
            dynamic-refresh compiler (OneAdapt); ``None`` for OneQ.
        overflow_nodes: Photons that could not be placed within capacity and
            were force-placed (diagnostic; empty in normal operation).
    """

    layers: List[ExecutionLayer]
    computation: ComputationGraph
    grid_size: int
    rsg_type: ResourceStateType
    fusee_pairs: List[Tuple[int, int]] = field(default_factory=list)
    lifetime_cap: Optional[int] = None
    overflow_nodes: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        """Number of execution layers."""
        return len(self.layers)

    def node_layer_index(self) -> Dict[int, int]:
        """Map every placed photon to the index of its execution layer."""
        placement: Dict[int, int] = {}
        for layer in self.layers:
            for node in layer.node_cells:
                if node in placement:
                    raise ValidationError(f"node {node} placed in two layers")
                placement[node] = layer.index
        return placement

    def layer_of(self, node: int) -> int:
        """Layer index of one photon."""
        for layer in self.layers:
            if node in layer.node_cells:
                return layer.index
        raise KeyError(f"node {node} is not placed in this schedule")

    def validate(self) -> None:
        """Check structural consistency of the schedule.

        Every computation-graph node must be placed exactly once, layer
        indices must be consecutive, and fusee pairs must reference placed
        photons.
        """
        placement = self.node_layer_index()
        expected = set(self.computation.graph.nodes)
        missing = expected - set(placement)
        if missing:
            raise ValidationError(f"{len(missing)} nodes were never placed")
        for position, layer in enumerate(self.layers):
            if layer.index != position:
                raise ValidationError("layer indices are not consecutive")
        for u, v in self.fusee_pairs:
            if u not in placement or v not in placement:
                raise ValidationError(f"fusee pair ({u}, {v}) references unplaced nodes")

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    @property
    def execution_time(self) -> int:
        """Execution time in logical clock cycles."""
        return execution_time_of_layers(self.num_layers)

    def lifetime_report(self) -> LifetimeReport:
        """Required photon lifetime of this schedule (Algorithm 1).

        When the schedule was produced by a dynamic-refresh compiler the
        individual fusee waits are capped at :attr:`lifetime_cap` before the
        maximum is taken, mirroring OneAdapt's refresh mechanism.
        """
        layer_index = self.node_layer_index()
        report = required_photon_lifetime(
            layer_index,
            self.fusee_pairs,
            self.computation.dependency,
            removed_nodes=self.computation.removed_nodes,
        )
        if self.lifetime_cap is None:
            return report
        capped_fusee = min(report.tau_fusee, self.lifetime_cap)
        capped_measuree = min(report.tau_measuree, max(self.lifetime_cap, 1))
        return LifetimeReport(
            tau_fusee=capped_fusee,
            tau_measuree=capped_measuree,
            tau_remote=report.tau_remote,
            worst_fusee_pair=report.worst_fusee_pair,
            worst_measuree=report.worst_measuree,
        )

    @property
    def required_photon_lifetime(self) -> int:
        """Convenience accessor for ``lifetime_report().tau_photon``."""
        return self.lifetime_report().tau_photon

    def utilisation(self) -> float:
        """Average fraction of grid cells hosting photons per layer."""
        if not self.layers:
            return 0.0
        cells = self.grid_size * self.grid_size
        used = sum(layer.num_nodes for layer in self.layers)
        return used / (cells * len(self.layers))

    def summary(self) -> Dict[str, object]:
        """Return a plain-dict summary for reports and tests."""
        report = self.lifetime_report()
        return {
            "name": self.computation.name,
            "nodes": self.computation.num_nodes,
            "fusions": self.computation.num_fusions,
            "layers": self.num_layers,
            "execution_time": self.execution_time,
            "tau_fusee": report.tau_fusee,
            "tau_measuree": report.tau_measuree,
            "required_photon_lifetime": report.tau_photon,
            "utilisation": round(self.utilisation(), 4),
        }
