"""The computation graph consumed by the mappers and the partitioner.

Following OneQ's abstraction (Section II-C), the computation graph has one
node per photon of the logical graph state and one edge per required fusion
(i.e. per graph-state entanglement edge).  It also carries the real-time
(X-only, signal-shifted) dependency graph and the measurement order, which
are what the required-photon-lifetime metric and the grid mapper need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.mbqc.dependency import DependencyGraph, build_dependency_graph, measurement_order
from repro.mbqc.pattern import Pattern
from repro.mbqc.signal_shift import signal_shift
from repro.utils.errors import CompilationError

__all__ = ["ComputationGraph", "computation_graph_from_pattern"]


@dataclass
class ComputationGraph:
    """A computation graph plus the ordering information needed to map it.

    Attributes:
        graph: Undirected graph; nodes are photons, edges are fusions.
        dependency: Real-time dependency DAG (X-dependencies only).
        order: Total order over nodes (measurement order); mappers place
            nodes in this order.
        output_nodes: Nodes carrying the logical output (never measured).
        removed_nodes: Removees (Z-basis removals), excluded from lifetime.
        name: Label for reports.
    """

    graph: nx.Graph
    dependency: DependencyGraph
    order: List[int]
    output_nodes: List[int] = field(default_factory=list)
    removed_nodes: Set[int] = field(default_factory=set)
    name: str = "computation"

    def __post_init__(self) -> None:
        missing = [node for node in self.order if node not in self.graph]
        if missing:
            raise CompilationError(f"order mentions unknown nodes: {missing[:5]}")
        if len(set(self.order)) != self.graph.number_of_nodes():
            raise CompilationError("order must list every node exactly once")

    # ------------------------------------------------------------------ #
    # Basic views
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of photons."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of fusions (computation-graph edges)."""
        return self.graph.number_of_edges()

    @property
    def num_fusions(self) -> int:
        """Alias for :attr:`num_edges`, matching the paper's terminology."""
        return self.num_edges

    def nodes(self) -> List[int]:
        """Sorted node list."""
        return sorted(self.graph.nodes)

    def edges(self) -> List[Tuple[int, int]]:
        """Sorted edge list with each edge as an ascending pair."""
        return sorted((min(a, b), max(a, b)) for a, b in self.graph.edges)

    def neighbors(self, node: int) -> Set[int]:
        """Graph neighbourhood of ``node``."""
        return set(self.graph.neighbors(node))

    def degree_statistics(self) -> Dict[str, float]:
        """Return min / mean / max degree — used in reports."""
        degrees = [d for _, d in self.graph.degree()]
        if not degrees:
            return {"min": 0, "mean": 0.0, "max": 0}
        return {
            "min": min(degrees),
            "mean": sum(degrees) / len(degrees),
            "max": max(degrees),
        }

    # ------------------------------------------------------------------ #
    # Partition support
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Iterable[int], name: Optional[str] = None) -> "ComputationGraph":
        """Return the computation graph induced on ``nodes``.

        The dependency DAG is restricted to the same node set (dependencies
        crossing the boundary are handled globally by the layer scheduler),
        and the measurement order keeps its relative ordering.
        """
        node_set = set(nodes)
        unknown = node_set - set(self.graph.nodes)
        if unknown:
            raise CompilationError(f"unknown nodes in subgraph request: {sorted(unknown)[:5]}")
        sub_graph = self.graph.subgraph(node_set).copy()
        # The subgraph view walks only the adjacency of the requested nodes
        # (instead of scanning every dependency edge per part) and keeps the
        # typed "kind" attributes as-is.
        sub_dependency = DependencyGraph()
        sub_dependency.graph.add_nodes_from(node_set)
        sub_dependency.graph.add_edges_from(
            self.dependency.graph.subgraph(node_set).edges(data=True)
        )
        sub_order = [node for node in self.order if node in node_set]
        return ComputationGraph(
            graph=sub_graph,
            dependency=sub_dependency,
            order=sub_order,
            output_nodes=[n for n in self.output_nodes if n in node_set],
            removed_nodes=self.removed_nodes & node_set,
            name=name or f"{self.name}_sub",
        )

    def cut_edges(self, assignment: Dict[int, int]) -> List[Tuple[int, int]]:
        """Return edges whose endpoints live in different parts of ``assignment``."""
        cut: List[Tuple[int, int]] = []
        for a, b in self.graph.edges:
            if assignment.get(a) != assignment.get(b):
                cut.append((min(a, b), max(a, b)))
        return sorted(cut)

    def content_hash(self) -> str:
        """Stable content hash (topology, dependencies, order, outputs).

        The root key for every partition/mapping/scheduling artifact cached
        by :mod:`repro.pipeline`.
        """
        from repro.pipeline.hashing import computation_hash  # deferred: layering

        return computation_hash(self)


def computation_graph_from_pattern(
    pattern: Pattern, apply_signal_shifting: bool = True
) -> ComputationGraph:
    """Build the computation graph of a measurement pattern.

    Args:
        pattern: The source pattern.
        apply_signal_shifting: Run signal shifting first so that only
            X-dependencies constrain real-time execution (the default, and
            what the paper assumes).
    """
    working = signal_shift(pattern) if apply_signal_shifting else pattern
    graph = nx.Graph()
    graph.add_nodes_from(working.nodes)
    graph.add_edges_from(working.edges())
    dependency = build_dependency_graph(working)
    if not apply_signal_shifting:
        dependency = dependency.x_only()
    # After signal shifting every t-domain is empty, so the dependency graph
    # contains X edges only and the x_only restriction would be an identical
    # (but expensive) copy.
    order = measurement_order(working)
    return ComputationGraph(
        graph=graph,
        dependency=dependency,
        order=order,
        output_nodes=list(working.output_nodes),
        removed_nodes=set(working.removed_nodes),
        name=pattern.name,
    )
