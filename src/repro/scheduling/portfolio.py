"""Multi-start BDIR portfolio — best-of-N seeded refinement starts.

BDIR (Algorithm 3) is a simulated-annealing descent from one initial
schedule; like any annealer it can park in a local minimum whose depth
depends on the initial priority order and the RNG stream.  With the
incremental inner loop (delta evaluation, active-set repair scheduling) a
refinement start is cheap enough to afford several of them: the portfolio
runs ``N`` independently seeded starts under a *shared* move budget and
keeps the best schedule found by any of them.

Start ``0`` is the canonical single-start refinement: the caller's initial
schedule, the configured seed, and — when ``starts == 1`` — the exact
number of iterations, so a one-start portfolio is bit-identical (same RNG
stream, same schedule) to calling :class:`~repro.scheduling.bdir.BDIRScheduler`
directly.  Every further start draws a decorrelated seed via
:func:`~repro.utils.rng.derive_seed` and begins from a fresh list schedule
built with *jittered* default priorities, so the starts explore genuinely
different basins rather than replaying the same descent with different
acceptance coins.

The problem's route table is mutable state shared by all starts (sparse
re-route moves write to it), so each start begins from the pristine route
snapshot and the winner's routes are re-applied before returning — the
returned schedule and the problem's route table always agree, matching the
single-start contract.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.hardware.system import SystemModel
from repro.obs.trace import TRACER
from repro.scheduling.bdir import BDIRConfig, BDIRScheduler
from repro.scheduling.list_scheduler import default_priorities, list_schedule
from repro.scheduling.problem import LayerSchedulingProblem, Schedule
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import SchedulingError
from repro.utils.rng import derive_seed, make_rng

__all__ = ["portfolio_refine", "split_budget"]


def split_budget(total: int, starts: int) -> List[int]:
    """Split ``total`` annealing moves across ``starts`` (earlier get spares).

    >>> split_budget(20, 3)
    [7, 7, 6]
    """
    if starts < 1:
        raise SchedulingError("portfolio needs at least one start")
    base, spare = divmod(total, starts)
    return [base + (1 if index < spare else 0) for index in range(starts)]


def _jittered_priorities(
    problem: LayerSchedulingProblem, seed: int
) -> Dict[Tuple, float]:
    """Default priorities with a seeded uniform jitter in ``[0, 1)``.

    ``default_priorities`` yields tasks in a canonical order (main tasks in
    QPU/layer order, then syncs), so the jitter stream is reproducible from
    the seed alone.  One unit of jitter is enough to swap tasks across
    adjacent priority levels (mains sit on integers, syncs on
    half-integers) without scrambling the global order.
    """
    rng = make_rng(seed)
    return {
        key: priority + float(rng.random())
        for key, priority in default_priorities(problem).items()
    }


def portfolio_refine(
    problem: LayerSchedulingProblem,
    config: BDIRConfig,
    initial: Optional[Schedule] = None,
    *,
    starts: int = 1,
    system: Optional[SystemModel] = None,
) -> Schedule:
    """Refine with a best-of-``starts`` BDIR portfolio under a shared budget.

    Args:
        problem: The layer scheduling problem (route table may be mutated;
            it is left matching the returned schedule).
        config: Annealing parameters; ``config.max_iterations`` is the
            portfolio's *total* move budget, divided across the starts.
        initial: Optional initial schedule for start 0 (the canonical
            single-start path); further starts build their own.
        starts: Number of independently seeded refinement starts.
        system: Optional system model for cached alternate-route lookups.

    Returns:
        The best schedule over all starts, ranked by
        ``(tau_photon, makespan, start index)``.
    """
    if starts < 1:
        raise SchedulingError("portfolio needs at least one start")
    if starts == 1:
        return BDIRScheduler(problem, config, system=system).refine(initial)

    with TRACER.span("bdir.portfolio", starts=starts) as span:
        budgets = split_budget(config.max_iterations, starts)
        pristine_routes = {
            sync.sync_id: sync.route for sync in problem.sync_tasks
        }

        best: Optional[Schedule] = None
        best_rank: Optional[Tuple[int, int, int]] = None
        best_routes = pristine_routes
        for index, budget in enumerate(budgets):
            OP_COUNTERS.add("bdir.portfolio_starts")
            _restore_routes(problem, pristine_routes)
            if index == 0:
                start_config = replace(config, max_iterations=budget)
                start_initial = initial
            else:
                seed = derive_seed(config.seed, "portfolio", index)
                start_config = replace(
                    config, max_iterations=budget, seed=seed
                )
                start_initial = list_schedule(
                    problem, priorities=_jittered_priorities(problem, seed)
                )
            schedule = BDIRScheduler(
                problem, start_config, system=system
            ).refine(start_initial)
            evaluation = problem.evaluate(schedule)
            rank = (int(evaluation.tau_photon), int(evaluation.makespan), index)
            if best_rank is None or rank < best_rank:
                best, best_rank = schedule, rank
                best_routes = {
                    sync.sync_id: sync.route for sync in problem.sync_tasks
                }
        _restore_routes(problem, best_routes)
        span.set(best_tau=best_rank[0], best_start=best_rank[2])
    return best


def _restore_routes(
    problem: LayerSchedulingProblem, routes: Dict[int, Tuple[int, ...]]
) -> None:
    for sync in problem.sync_tasks:
        if sync.route != routes[sync.sync_id]:
            problem.set_route(sync.sync_id, routes[sync.sync_id])
