"""List-scheduling the not-yet-executed task frontier after a fault.

When a QPU or link dies (or browns out) at cycle ``t`` mid-replay, work
that already executed is history — only the *frontier* (main tasks that
have not started and synchronisations whose entanglement has not been
delivered) can still be replanned.  :func:`reschedule_frontier` keeps every
non-frontier task at its recorded start time, books its resource windows as
immovable occupancy, and greedily re-places the frontier at the earliest
feasible cycles ``>= t`` against the degraded system: dead QPUs host
nothing, re-routed syncs follow caller-supplied detour routes, and
per-cycle capacity callables model brownout windows.

The shared :class:`~repro.scheduling.problem.LayerSchedulingProblem` is
never mutated — route overrides are applied to local
:func:`dataclasses.replace` copies of the sync tasks — so a recovery
attempt leaves the original compilation result byte-identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.obs.trace import TRACER
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    Schedule,
    SyncTask,
    TaskKey,
)
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import SchedulingError

__all__ = ["reschedule_frontier"]


def reschedule_frontier(
    problem: LayerSchedulingProblem,
    schedule: Schedule,
    frontier_start: int,
    *,
    pending: Sequence[TaskKey],
    routes: Optional[Dict[int, Tuple[int, ...]]] = None,
    dead_qpus: FrozenSet[int] = frozenset(),
    dead_links: FrozenSet[Tuple[int, int]] = frozenset(),
    qpu_capacity: Optional[Callable[[int, int], int]] = None,
    link_capacity: Optional[Callable[[Tuple[int, int], int], int]] = None,
    buffer_capacity: Optional[Callable[[int, int], int]] = None,
) -> Schedule:
    """Re-place the pending task frontier on a degraded system.

    Args:
        problem: The original scheduling problem (not mutated).
        schedule: The original schedule; non-pending tasks keep their
            start times verbatim.
        frontier_start: First cycle the degraded system is in effect; no
            pending task may start (or occupy any window) before it.
        pending: Task keys to re-place.  Per-QPU main-task order is
            preserved automatically because main starts strictly increase,
            so a pending main's predecessors are either fixed or pending
            with a smaller index.
        routes: Optional ``sync_id -> route`` overrides (detours around
            dead elements); applied to local copies of the sync tasks.
        dead_qpus / dead_links: Elements unusable from ``frontier_start``
            onwards.
        qpu_capacity / link_capacity / buffer_capacity: Optional per-cycle
            capacity callables replacing the problem's static tables at
            cycles ``>= frontier_start`` (brownout windows).

    Returns:
        A new :class:`Schedule` covering every task of the problem.

    Raises:
        SchedulingError: if a pending task cannot be placed — its QPU is
            dead, its route crosses a dead element, or no feasible cycle
            exists within the search horizon.
    """
    OP_COUNTERS.add("frontier.calls")
    routes = routes or {}
    pending_set = set(pending)
    dead_link_keys = {(min(a, b), max(a, b)) for a, b in dead_links}
    pipelined = problem.pipelined

    def q_cap(qpu: int, cycle: int) -> int:
        if qpu_capacity is not None and cycle >= frontier_start:
            return qpu_capacity(qpu, cycle)
        return problem.capacity_of(qpu)

    def l_cap(link: Tuple[int, int], cycle: int) -> int:
        if link_capacity is not None and cycle >= frontier_start:
            return link_capacity(link, cycle)
        return problem.link_capacity_of(link)

    def b_cap(qpu: int, cycle: int) -> int:
        if buffer_capacity is not None and cycle >= frontier_start:
            return buffer_capacity(qpu, cycle)
        return problem.buffer_limit_of(qpu)

    # Effective sync tasks: route overrides on local copies only.
    effective: Dict[TaskKey, SyncTask] = {}
    for sync in problem.sync_tasks:
        if sync.sync_id in routes:
            effective[sync.key] = replace(sync, route=tuple(routes[sync.sync_id]))
        else:
            effective[sync.key] = sync

    known_keys = {task.key for task in problem.all_main_tasks()} | set(effective)
    unknown = pending_set - known_keys
    if unknown:
        raise SchedulingError(f"unknown pending task keys: {sorted(unknown)}")

    with TRACER.span(
        "scheduling.frontier",
        frontier_start=frontier_start,
        pending=len(pending_set),
        dead_qpus=len(dead_qpus),
        dead_links=len(dead_link_keys),
    ) as span:
        new_schedule = _place(
            problem,
            schedule,
            frontier_start,
            pending_set,
            effective,
            dead_qpus,
            dead_link_keys,
            q_cap,
            l_cap,
            b_cap,
            pipelined,
        )
        span.set(makespan=new_schedule.makespan)
    return new_schedule


def _place(
    problem: LayerSchedulingProblem,
    schedule: Schedule,
    frontier_start: int,
    pending_set,
    effective: Dict[TaskKey, SyncTask],
    dead_qpus,
    dead_link_keys,
    q_cap,
    l_cap,
    b_cap,
    pipelined: bool,
) -> Schedule:
    main_at: Dict[Tuple[int, int], TaskKey] = {}
    sync_at: Dict[Tuple[int, int], int] = {}
    link_at: Dict[Tuple[Tuple[int, int], int], int] = {}
    buffer_at: Dict[Tuple[int, int], int] = {}
    new_starts: Dict[TaskKey, int] = {}
    last_main_end: Dict[int, int] = {}

    def book_sync(sync: SyncTask, start: int) -> None:
        for qpu, cycle in sync.qpu_windows(start, pipelined):
            sync_at[(qpu, cycle)] = sync_at.get((qpu, cycle), 0) + 1
        for link, cycle in sync.link_windows(start, pipelined):
            link_at[(link, cycle)] = link_at.get((link, cycle), 0) + 1
        for qpu, cycle in sync.buffer_windows(start, pipelined):
            buffer_at[(qpu, cycle)] = buffer_at.get((qpu, cycle), 0) + 1

    # Fixed tasks keep their recorded starts and occupy their windows.
    for task in problem.all_main_tasks():
        if task.key in pending_set:
            continue
        start = schedule.start_of(task.key)
        new_starts[task.key] = start
        main_at[(task.qpu, start)] = task.key
        last_main_end[task.qpu] = max(last_main_end.get(task.qpu, 0), start + 1)
    for key, sync in effective.items():
        if key in pending_set:
            continue
        start = schedule.start_of(key)
        new_starts[key] = start
        book_sync(sync, start)

    total_hops = sum(sync.relay_hops for sync in effective.values())
    horizon = (
        frontier_start
        + 4 * (problem.num_main_tasks + problem.num_sync_tasks)
        + 16
        + 4 * total_hops
    )

    def order_key(key: TaskKey):
        return (schedule.start_of(key), 0 if key[0] == "main" else 1, key)

    for key in sorted(pending_set, key=order_key):
        if key[0] == "main":
            _, qpu, index = key
            if qpu in dead_qpus:
                raise SchedulingError(
                    f"main task {key} cannot be re-placed: QPU {qpu} is dead"
                )
            start = max(frontier_start, last_main_end.get(qpu, 0))
            while start < horizon and (
                (qpu, start) in main_at or sync_at.get((qpu, start), 0) > 0
            ):
                start += 1
            if start >= horizon:
                raise SchedulingError(
                    f"frontier rescheduling exceeded the search horizon "
                    f"({horizon}) placing main task {key}"
                )
            new_starts[key] = start
            main_at[(qpu, start)] = key
            last_main_end[qpu] = start + 1
            OP_COUNTERS.add("frontier.placements")
        else:
            sync = effective[key]
            route = sync.route_qpus
            dead_on_route = [qpu for qpu in route if qpu in dead_qpus]
            if dead_on_route:
                raise SchedulingError(
                    f"sync task {sync.sync_id} route {route} crosses dead "
                    f"QPU(s) {dead_on_route}"
                )
            dead_crossed = [
                link for link in sync.links if link in dead_link_keys
            ]
            if dead_crossed:
                raise SchedulingError(
                    f"sync task {sync.sync_id} route {route} crosses dead "
                    f"link(s) {dead_crossed}"
                )
            start = frontier_start
            while start < horizon and not _fits(
                sync, start, pipelined, main_at, sync_at, link_at, buffer_at,
                q_cap, l_cap, b_cap,
            ):
                start += 1
                OP_COUNTERS.add("frontier.cycles_scanned")
            if start >= horizon:
                raise SchedulingError(
                    f"frontier rescheduling exceeded the search horizon "
                    f"({horizon}) placing sync task {sync.sync_id}"
                )
            new_starts[key] = start
            book_sync(sync, start)
            OP_COUNTERS.add("frontier.placements")

    return Schedule(new_starts)


def _fits(
    sync: SyncTask,
    start: int,
    pipelined: bool,
    main_at,
    sync_at,
    link_at,
    buffer_at,
    q_cap,
    l_cap,
    b_cap,
) -> bool:
    for qpu, cycle in sync.qpu_windows(start, pipelined):
        if (qpu, cycle) in main_at:
            return False
        if sync_at.get((qpu, cycle), 0) + 1 > q_cap(qpu, cycle):
            return False
    for link, cycle in sync.link_windows(start, pipelined):
        if link_at.get((link, cycle), 0) + 1 > l_cap(link, cycle):
            return False
    for qpu, cycle in sync.buffer_windows(start, pipelined):
        if buffer_at.get((qpu, cycle), 0) + 1 > b_cap(qpu, cycle):
            return False
    return True
