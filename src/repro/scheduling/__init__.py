"""Layer scheduling (Section IV-B).

After partitioning and per-QPU compilation, the distributed program consists
of *main tasks* (the execution layers of each QPU) and *synchronisation
tasks* (inter-QPU communication events tied to pairs of main tasks).  The
layer scheduling problem assigns a start time to every task subject to
machine exclusivity (a QPU runs one main task or up to ``K_max``
synchronisation tasks per cycle) so as to minimise the required photon
lifetime.  The problem is NP-hard (Theorem IV.2), so the package provides a
priority-based list scheduler and the paper's Bottleneck-Driven Iterative
Refinement (BDIR) simulated-annealing heuristic.
"""

from repro.scheduling.problem import (
    MainTask,
    SyncTask,
    LayerSchedulingProblem,
    Schedule,
    ScheduleEvaluation,
)
from repro.scheduling.list_scheduler import list_schedule, default_priorities
from repro.scheduling.frontier import reschedule_frontier
from repro.scheduling.bdir import BDIRScheduler, BDIRConfig
from repro.scheduling.portfolio import portfolio_refine, split_budget
from repro.scheduling.bounds import (
    makespan_lower_bound,
    lifetime_lower_bound,
    schedule_quality,
)

__all__ = [
    "MainTask",
    "SyncTask",
    "LayerSchedulingProblem",
    "Schedule",
    "ScheduleEvaluation",
    "list_schedule",
    "default_priorities",
    "reschedule_frontier",
    "BDIRScheduler",
    "BDIRConfig",
    "portfolio_refine",
    "split_budget",
    "makespan_lower_bound",
    "lifetime_lower_bound",
    "schedule_quality",
]
