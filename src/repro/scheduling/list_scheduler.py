"""Priority-based list scheduling for the layer scheduling problem.

This is the baseline heuristic of Section IV-B: a main task ``J_{i,j}``
receives priority ``j`` and a synchronisation task associated with
``(J_{i,j}, J_{i',j'})`` receives priority ``(j + j') / 2``, so communication
events are slotted near the execution layers they connect.  The scheduler
walks the time axis one cycle at a time; each cycle every QPU either runs its
next main task or hosts up to ``K_max`` pending synchronisation tasks whose
priority has come due.

The same routine doubles as the ``PinAndReschedule`` primitive of the BDIR
algorithm: callers may pass explicit per-task priorities (the start times of
an existing schedule, to preserve its relative order) and *pin* one task to a
specific cycle.

Implementation notes: the inner loop works on flat per-QPU integer/float
arrays.  Scheduled synchronisation tasks are compacted out of the pending
list between cycles (the seed implementation re-scanned the full sync list
twice per cycle, which is quadratic in the number of connectors), and the
"next main priority" of each QPU is computed once per cycle instead of once
per candidate sync.

Relayed syncs book *windows*: under the pipelined store-and-forward model a
sync starting at ``t`` occupies each route QPU, link, and intermediate
buffer slot at its own hop cycle (``t``, ``t + 1``, …), so occupancy is kept
in global ``(resource, cycle)`` maps rather than per-cycle arrays — a claim
in cycle ``t`` may reserve capacity several cycles ahead.  Direct syncs book
exactly one cycle and reproduce the pre-pipelining scheduler bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.obs.trace import TRACER
from repro.scheduling.problem import LayerSchedulingProblem, Schedule, SyncTask, TaskKey
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import SchedulingError

__all__ = ["default_priorities", "list_schedule"]

_INF = float("inf")


def default_priorities(problem: LayerSchedulingProblem) -> Dict[TaskKey, float]:
    """The paper's default priorities: ``j`` for mains, ``(j + j')/2`` for syncs."""
    priorities: Dict[TaskKey, float] = {}
    for tasks in problem.main_tasks:
        for task in tasks:
            priorities[task.key] = float(task.index)
    for sync in problem.sync_tasks:
        priorities[sync.key] = (sync.index_a + sync.index_b) / 2.0
    return priorities


def list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]] = None,
    pinned: Optional[Mapping[TaskKey, int]] = None,
) -> Schedule:
    """Produce a feasible schedule by priority-based list scheduling.

    Args:
        problem: The layer scheduling problem.
        priorities: Optional per-task priorities (lower runs earlier);
            defaults to :func:`default_priorities`.
        pinned: Optional mapping of task keys to the earliest cycle they may
            start (the task is scheduled at the first feasible cycle at or
            after the pin).  Used by BDIR's ``PinAndReschedule``.

    Returns:
        A schedule satisfying all hard constraints.
    """
    with TRACER.span(
        "scheduler.list_schedule",
        mains=problem.num_main_tasks,
        syncs=problem.num_sync_tasks,
    ):
        return _list_schedule(problem, priorities, pinned)


def _list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]],
    pinned: Optional[Mapping[TaskKey, int]],
) -> Schedule:
    prio = dict(priorities) if priorities is not None else default_priorities(problem)
    pins = dict(pinned or {})
    for key in pins:
        if key not in prio:
            raise SchedulingError(f"pinned task {key} is not part of the problem")

    num_qpus = problem.num_qpus
    capacity = [problem.capacity_of(qpu) for qpu in range(num_qpus)]
    buffer_limit = [problem.buffer_limit_of(qpu) for qpu in range(num_qpus)]
    link_limits = problem.link_capacities
    pipelined = problem.pipelined

    # Flat per-QPU views of the main-task queues.
    main_prio: List[List[float]] = [
        [prio[task.key] for task in tasks] for tasks in problem.main_tasks
    ]
    main_pin: List[List[int]] = [
        [pins.get(task.key, 0) for task in tasks] for tasks in problem.main_tasks
    ]

    # Pending syncs in (priority, sync_id) order; scheduled entries are
    # compacted out between cycles.  A sync claims a communication slot on
    # every QPU of its relay route and one capacity unit per route link —
    # at its own hop offset under the pipelined model, for the whole
    # transfer window under the atomic one.  Window offsets are
    # start-relative, so they are precomputed once per sync.
    pending: List[SyncTask] = sorted(
        problem.sync_tasks, key=lambda s: (prio[s.key], s.sync_id)
    )
    sync_prio: Dict[int, float] = {s.sync_id: prio[s.key] for s in problem.sync_tasks}
    sync_pin: Dict[int, int] = {
        s.sync_id: pins.get(s.key, 0) for s in problem.sync_tasks
    }
    sync_qpu_windows: Dict[int, tuple] = {
        s.sync_id: s.qpu_windows(0, pipelined) for s in problem.sync_tasks
    }
    sync_link_windows: Dict[int, tuple] = {
        s.sync_id: s.link_windows(0, pipelined) for s in problem.sync_tasks
    }
    sync_buffer_windows: Dict[int, tuple] = {
        s.sync_id: s.buffer_windows(0, pipelined) for s in problem.sync_tasks
    }
    relayed = any(s.relay_hops for s in problem.sync_tasks)

    # Global occupancy, keyed by (resource, cycle): pipelined relays book
    # future cycles, so per-cycle arrays are not enough.
    sync_at: Dict[tuple, int] = {}
    link_at: Dict[tuple, int] = {}
    buffer_at: Dict[tuple, int] = {}
    route_reevals = 0
    buffer_conflicts = 0

    def claim(sync: SyncTask, time: int) -> bool:
        """Check route capacity hop by hop and, if feasible, book the windows."""
        nonlocal route_reevals, buffer_conflicts
        sync_id = sync.sync_id
        if relayed and sync.relay_hops:
            route_reevals += 1
        for qpu, offset in sync_qpu_windows[sync_id]:
            if sync_at.get((qpu, time + offset), 0) >= capacity[qpu]:
                return False
        if link_limits is not None:
            for link, offset in sync_link_windows[sync_id]:
                if link_at.get((link, time + offset), 0) >= link_limits[link]:
                    return False
        for qpu, offset in sync_buffer_windows[sync_id]:
            if buffer_at.get((qpu, time + offset), 0) >= buffer_limit[qpu]:
                buffer_conflicts += 1
                return False
        for qpu, offset in sync_qpu_windows[sync_id]:
            slot = (qpu, time + offset)
            sync_at[slot] = sync_at.get(slot, 0) + 1
        if link_limits is not None:
            for link, offset in sync_link_windows[sync_id]:
                slot = (link, time + offset)
                link_at[slot] = link_at.get(slot, 0) + 1
        for qpu, offset in sync_buffer_windows[sync_id]:
            slot = (qpu, time + offset)
            buffer_at[slot] = buffer_at.get(slot, 0) + 1
        return True

    schedule = Schedule()
    start_times = schedule.start_times
    next_main_index = [0] * num_qpus
    total_tasks = problem.num_main_tasks + problem.num_sync_tasks
    total_relay_hops = sum(s.relay_hops for s in problem.sync_tasks)
    horizon_limit = 4 * total_tasks + 16 + 4 * total_relay_hops

    time = 0
    cycles = 0
    sync_scans = 0
    while len(start_times) < total_tasks:
        cycles += 1
        sync_scans += len(pending)
        if time > horizon_limit:
            raise SchedulingError(
                "list scheduling exceeded its time horizon; the problem is inconsistent"
            )
        scheduled_this_slot = 0
        scheduled_syncs: List[int] = []  # positions in ``pending`` to compact

        # Priority of each QPU's next runnable main task, fixed for the
        # cycle (phase 2 runs after every sync decision).
        next_prio = [_INF] * num_qpus
        for qpu in range(num_qpus):
            index = next_main_index[qpu]
            if index < len(main_prio[qpu]) and main_pin[qpu][index] <= time:
                next_prio[qpu] = main_prio[qpu][index]

        # Phase 1: synchronisation tasks whose priority has come due on both
        # of their QPUs claim communication resources first (relay routes
        # book a slot on every intermediate QPU and every crossed link).
        for position, sync in enumerate(pending):
            if sync_pin[sync.sync_id] > time:
                continue
            qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
            priority = sync_prio[sync.sync_id]
            if priority > next_prio[qpu_a] or priority > next_prio[qpu_b]:
                continue
            if not claim(sync, time):
                continue
            start_times[sync.key] = time
            scheduled_syncs.append(position)
            scheduled_this_slot += 1

        # Phase 1b: top up connection layers.  A QPU that already switched to
        # communication mode this cycle wastes nothing by hosting more
        # synchronisation tasks, so pending syncs whose priority is close to
        # the ones already running are pulled forward up to ``K_max``.  This
        # mirrors the paper's connection layers serving several connectors.
        if scheduled_this_slot:
            taken = set(scheduled_syncs)
            sync_scans += len(pending)
            for position, sync in enumerate(pending):
                if position in taken:
                    continue
                if sync_pin[sync.sync_id] > time:
                    continue
                qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
                if (
                    sync_at.get((qpu_a, time), 0) == 0
                    and sync_at.get((qpu_b, time), 0) == 0
                ):
                    continue
                window = float(min(capacity[qpu_a], capacity[qpu_b]))
                due = min(next_prio[qpu_a], next_prio[qpu_b]) + window
                if sync_prio[sync.sync_id] > due:
                    continue
                if not claim(sync, time):
                    continue
                start_times[sync.key] = time
                scheduled_syncs.append(position)
                scheduled_this_slot += 1

        # Phase 2: every QPU without synchronisation work this cycle runs its
        # next main task (in compilation order).  Relay windows booked by
        # earlier cycles count: a QPU forwarding a store-and-forward photon
        # is in communication mode and cannot run a main task.
        for qpu in range(num_qpus):
            if sync_at.get((qpu, time), 0) > 0:
                continue
            index = next_main_index[qpu]
            if index >= len(main_prio[qpu]):
                continue
            if main_pin[qpu][index] > time:
                continue
            task = problem.main_tasks[qpu][index]
            start_times[task.key] = time
            next_main_index[qpu] = index + 1
            scheduled_this_slot += 1

        # Phase 3: guarantee progress.  If nothing could be scheduled (for
        # example every remaining task is pinned to a later cycle), jump to
        # the next relevant time instead of spinning.
        if scheduled_this_slot == 0:
            future_pins = [
                pin for key, pin in pins.items()
                if key not in start_times and pin > time
            ]
            if future_pins:
                time = min(future_pins)
                continue
            # Otherwise force the lowest-priority pending synchronisation
            # through at the earliest cycle whose whole hop window is free
            # (for direct syncs that is the current cycle: the partner QPUs
            # are idle by construction here; relayed syncs may have to step
            # past windows booked by earlier claims).
            if pending:
                forced = pending[0]
                forced_start = time
                while not claim(forced, forced_start):
                    forced_start += 1
                    if forced_start > horizon_limit:
                        raise SchedulingError(
                            "list scheduling exceeded its time horizon; "
                            "the problem is inconsistent"
                        )
                start_times[forced.key] = forced_start
                scheduled_syncs.append(0)
            else:
                # Every remaining task is a main task on a QPU whose
                # communication layer is busy this cycle with a relay
                # window booked by an earlier claim; the window passes,
                # so skip ahead rather than declaring a stall.
                blocked = any(
                    next_main_index[qpu] < len(main_prio[qpu])
                    and sync_at.get((qpu, time), 0) > 0
                    for qpu in range(num_qpus)
                )
                if not blocked:
                    raise SchedulingError(
                        "list scheduling stalled with unscheduled tasks"
                    )
        if scheduled_syncs:
            taken = set(scheduled_syncs)
            pending = [
                sync for position, sync in enumerate(pending) if position not in taken
            ]
        time += 1

    OP_COUNTERS.add("scheduler.calls")
    OP_COUNTERS.add("scheduler.cycles", cycles)
    OP_COUNTERS.add("scheduler.sync_scans", sync_scans)
    if route_reevals:
        OP_COUNTERS.add("scheduler.route_reevals", route_reevals)
    if buffer_conflicts:
        OP_COUNTERS.add("scheduler.buffer_conflicts", buffer_conflicts)
    problem.validate(schedule)
    return schedule
