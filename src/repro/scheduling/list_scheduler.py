"""Priority-based list scheduling for the layer scheduling problem.

This is the baseline heuristic of Section IV-B: a main task ``J_{i,j}``
receives priority ``j`` and a synchronisation task associated with
``(J_{i,j}, J_{i',j'})`` receives priority ``(j + j') / 2``, so communication
events are slotted near the execution layers they connect.  The scheduler
walks the time axis one cycle at a time; each cycle every QPU either runs its
next main task or hosts up to ``K_max`` pending synchronisation tasks whose
priority has come due.

The same routine doubles as the ``PinAndReschedule`` primitive of the BDIR
algorithm: callers may pass explicit per-task priorities (the start times of
an existing schedule, to preserve its relative order) and *pin* one task to a
specific cycle.

Implementation notes: the inner loop works on flat per-QPU integer/float
arrays.  Scheduled synchronisation tasks are compacted out of the pending
list between cycles (the seed implementation re-scanned the full sync list
twice per cycle, which is quadratic in the number of connectors), and the
"next main priority" of each QPU is computed once per cycle instead of once
per candidate sync.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.obs.trace import TRACER
from repro.scheduling.problem import LayerSchedulingProblem, Schedule, SyncTask, TaskKey
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import SchedulingError

__all__ = ["default_priorities", "list_schedule"]

_INF = float("inf")


def default_priorities(problem: LayerSchedulingProblem) -> Dict[TaskKey, float]:
    """The paper's default priorities: ``j`` for mains, ``(j + j')/2`` for syncs."""
    priorities: Dict[TaskKey, float] = {}
    for tasks in problem.main_tasks:
        for task in tasks:
            priorities[task.key] = float(task.index)
    for sync in problem.sync_tasks:
        priorities[sync.key] = (sync.index_a + sync.index_b) / 2.0
    return priorities


def list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]] = None,
    pinned: Optional[Mapping[TaskKey, int]] = None,
) -> Schedule:
    """Produce a feasible schedule by priority-based list scheduling.

    Args:
        problem: The layer scheduling problem.
        priorities: Optional per-task priorities (lower runs earlier);
            defaults to :func:`default_priorities`.
        pinned: Optional mapping of task keys to the earliest cycle they may
            start (the task is scheduled at the first feasible cycle at or
            after the pin).  Used by BDIR's ``PinAndReschedule``.

    Returns:
        A schedule satisfying all hard constraints.
    """
    with TRACER.span(
        "scheduler.list_schedule",
        mains=problem.num_main_tasks,
        syncs=problem.num_sync_tasks,
    ):
        return _list_schedule(problem, priorities, pinned)


def _list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]],
    pinned: Optional[Mapping[TaskKey, int]],
) -> Schedule:
    prio = dict(priorities) if priorities is not None else default_priorities(problem)
    pins = dict(pinned or {})
    for key in pins:
        if key not in prio:
            raise SchedulingError(f"pinned task {key} is not part of the problem")

    num_qpus = problem.num_qpus
    capacity = [problem.capacity_of(qpu) for qpu in range(num_qpus)]
    link_limits = problem.link_capacities

    # Flat per-QPU views of the main-task queues.
    main_prio: List[List[float]] = [
        [prio[task.key] for task in tasks] for tasks in problem.main_tasks
    ]
    main_pin: List[List[int]] = [
        [pins.get(task.key, 0) for task in tasks] for tasks in problem.main_tasks
    ]

    # Pending syncs in (priority, sync_id) order; scheduled entries are
    # compacted out between cycles.  A sync claims a communication slot on
    # every QPU of its relay route and one capacity unit per route link.
    pending: List[SyncTask] = sorted(
        problem.sync_tasks, key=lambda s: (prio[s.key], s.sync_id)
    )
    sync_prio: Dict[int, float] = {s.sync_id: prio[s.key] for s in problem.sync_tasks}
    sync_pin: Dict[int, int] = {
        s.sync_id: pins.get(s.key, 0) for s in problem.sync_tasks
    }
    sync_route: Dict[int, tuple] = {s.sync_id: s.route_qpus for s in problem.sync_tasks}
    sync_links: Dict[int, tuple] = {s.sync_id: s.links for s in problem.sync_tasks}

    def claim(sync: SyncTask, sync_count: List[int], link_used: Dict) -> bool:
        """Check route capacity and, if feasible, book the sync's resources."""
        route = sync_route[sync.sync_id]
        for qpu in route:
            if sync_count[qpu] >= capacity[qpu]:
                return False
        if link_limits is not None:
            for link in sync_links[sync.sync_id]:
                if link_used.get(link, 0) >= link_limits[link]:
                    return False
        for qpu in route:
            sync_count[qpu] += 1
        if link_limits is not None:
            for link in sync_links[sync.sync_id]:
                link_used[link] = link_used.get(link, 0) + 1
        return True

    schedule = Schedule()
    start_times = schedule.start_times
    next_main_index = [0] * num_qpus
    total_tasks = problem.num_main_tasks + problem.num_sync_tasks
    horizon_limit = 4 * total_tasks + 16

    time = 0
    cycles = 0
    sync_scans = 0
    while len(start_times) < total_tasks:
        cycles += 1
        sync_scans += len(pending)
        if time > horizon_limit:
            raise SchedulingError(
                "list scheduling exceeded its time horizon; the problem is inconsistent"
            )
        scheduled_this_slot = 0
        sync_count = [0] * num_qpus
        link_used: Dict[tuple, int] = {}
        scheduled_syncs: List[int] = []  # positions in ``pending`` to compact

        # Priority of each QPU's next runnable main task, fixed for the
        # cycle (phase 2 runs after every sync decision).
        next_prio = [_INF] * num_qpus
        for qpu in range(num_qpus):
            index = next_main_index[qpu]
            if index < len(main_prio[qpu]) and main_pin[qpu][index] <= time:
                next_prio[qpu] = main_prio[qpu][index]

        # Phase 1: synchronisation tasks whose priority has come due on both
        # of their QPUs claim communication resources first (relay routes
        # book a slot on every intermediate QPU and every crossed link).
        for position, sync in enumerate(pending):
            if sync_pin[sync.sync_id] > time:
                continue
            qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
            priority = sync_prio[sync.sync_id]
            if priority > next_prio[qpu_a] or priority > next_prio[qpu_b]:
                continue
            if not claim(sync, sync_count, link_used):
                continue
            start_times[sync.key] = time
            scheduled_syncs.append(position)
            scheduled_this_slot += 1

        # Phase 1b: top up connection layers.  A QPU that already switched to
        # communication mode this cycle wastes nothing by hosting more
        # synchronisation tasks, so pending syncs whose priority is close to
        # the ones already running are pulled forward up to ``K_max``.  This
        # mirrors the paper's connection layers serving several connectors.
        if scheduled_this_slot:
            taken = set(scheduled_syncs)
            sync_scans += len(pending)
            for position, sync in enumerate(pending):
                if position in taken:
                    continue
                if sync_pin[sync.sync_id] > time:
                    continue
                qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
                if sync_count[qpu_a] == 0 and sync_count[qpu_b] == 0:
                    continue
                window = float(min(capacity[qpu_a], capacity[qpu_b]))
                due = min(next_prio[qpu_a], next_prio[qpu_b]) + window
                if sync_prio[sync.sync_id] > due:
                    continue
                if not claim(sync, sync_count, link_used):
                    continue
                start_times[sync.key] = time
                scheduled_syncs.append(position)
                scheduled_this_slot += 1

        # Phase 2: every QPU without synchronisation work runs its next main
        # task (in compilation order).
        for qpu in range(num_qpus):
            if sync_count[qpu] > 0:
                continue
            index = next_main_index[qpu]
            if index >= len(main_prio[qpu]):
                continue
            if main_pin[qpu][index] > time:
                continue
            task = problem.main_tasks[qpu][index]
            start_times[task.key] = time
            next_main_index[qpu] = index + 1
            scheduled_this_slot += 1

        # Phase 3: guarantee progress.  If nothing could be scheduled (for
        # example every remaining task is pinned to a later cycle), jump to
        # the next relevant time instead of spinning.
        if scheduled_this_slot == 0:
            future_pins = [
                pin for key, pin in pins.items()
                if key not in start_times and pin > time
            ]
            if future_pins:
                time = min(future_pins)
                continue
            # Otherwise force the lowest-priority pending synchronisation
            # through (its partner QPUs are idle by construction here).
            if pending:
                start_times[pending[0].key] = time
                scheduled_syncs.append(0)
            else:
                raise SchedulingError("list scheduling stalled with unscheduled tasks")
        if scheduled_syncs:
            taken = set(scheduled_syncs)
            pending = [
                sync for position, sync in enumerate(pending) if position not in taken
            ]
        time += 1

    OP_COUNTERS.add("scheduler.calls")
    OP_COUNTERS.add("scheduler.cycles", cycles)
    OP_COUNTERS.add("scheduler.sync_scans", sync_scans)
    problem.validate(schedule)
    return schedule
