"""Priority-based list scheduling for the layer scheduling problem.

This is the baseline heuristic of Section IV-B: a main task ``J_{i,j}``
receives priority ``j`` and a synchronisation task associated with
``(J_{i,j}, J_{i',j'})`` receives priority ``(j + j') / 2``, so communication
events are slotted near the execution layers they connect.  The scheduler
walks the time axis one cycle at a time; each cycle every QPU either runs its
next main task or hosts up to ``K_max`` pending synchronisation tasks whose
priority has come due.

The same routine doubles as the ``PinAndReschedule`` primitive of the BDIR
algorithm: callers may pass explicit per-task priorities (the start times of
an existing schedule, to preserve its relative order) and *pin* one task to a
specific cycle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.scheduling.problem import LayerSchedulingProblem, Schedule, SyncTask, TaskKey
from repro.utils.errors import SchedulingError

__all__ = ["default_priorities", "list_schedule"]


def default_priorities(problem: LayerSchedulingProblem) -> Dict[TaskKey, float]:
    """The paper's default priorities: ``j`` for mains, ``(j + j')/2`` for syncs."""
    priorities: Dict[TaskKey, float] = {}
    for tasks in problem.main_tasks:
        for task in tasks:
            priorities[task.key] = float(task.index)
    for sync in problem.sync_tasks:
        priorities[sync.key] = (sync.index_a + sync.index_b) / 2.0
    return priorities


def list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]] = None,
    pinned: Optional[Mapping[TaskKey, int]] = None,
) -> Schedule:
    """Produce a feasible schedule by priority-based list scheduling.

    Args:
        problem: The layer scheduling problem.
        priorities: Optional per-task priorities (lower runs earlier);
            defaults to :func:`default_priorities`.
        pinned: Optional mapping of task keys to the earliest cycle they may
            start (the task is scheduled at the first feasible cycle at or
            after the pin).  Used by BDIR's ``PinAndReschedule``.

    Returns:
        A schedule satisfying all hard constraints.
    """
    prio = dict(priorities) if priorities is not None else default_priorities(problem)
    pins = dict(pinned or {})
    for key in pins:
        if key not in prio:
            raise SchedulingError(f"pinned task {key} is not part of the problem")

    schedule = Schedule()
    next_main_index = [0] * problem.num_qpus
    pending_syncs: List[SyncTask] = sorted(
        problem.sync_tasks, key=lambda s: (prio[s.key], s.sync_id)
    )
    total_tasks = problem.num_main_tasks + problem.num_sync_tasks
    horizon_limit = 4 * total_tasks + 16

    time = 0
    while len(schedule.start_times) < total_tasks:
        if time > horizon_limit:
            raise SchedulingError(
                "list scheduling exceeded its time horizon; the problem is inconsistent"
            )
        scheduled_this_slot = 0
        main_this_slot: Dict[int, bool] = {}
        sync_count: Dict[int, int] = {}

        def next_main_priority(qpu: int) -> float:
            index = next_main_index[qpu]
            if index >= len(problem.main_tasks[qpu]):
                return float("inf")
            key = problem.main_tasks[qpu][index].key
            if pins.get(key, 0) > time:
                return float("inf")
            return prio[key]

        # Phase 1: synchronisation tasks whose priority has come due on both
        # of their QPUs claim communication resources first.
        for sync in pending_syncs:
            if sync.key in schedule.start_times:
                continue
            if pins.get(sync.key, 0) > time:
                continue
            qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
            if main_this_slot.get(qpu_a) or main_this_slot.get(qpu_b):
                continue
            if sync_count.get(qpu_a, 0) >= problem.connection_capacity:
                continue
            if sync_count.get(qpu_b, 0) >= problem.connection_capacity:
                continue
            if prio[sync.key] > next_main_priority(qpu_a) or prio[sync.key] > next_main_priority(qpu_b):
                continue
            schedule.start_times[sync.key] = time
            sync_count[qpu_a] = sync_count.get(qpu_a, 0) + 1
            sync_count[qpu_b] = sync_count.get(qpu_b, 0) + 1
            scheduled_this_slot += 1

        # Phase 1b: top up connection layers.  A QPU that already switched to
        # communication mode this cycle wastes nothing by hosting more
        # synchronisation tasks, so pending syncs whose priority is close to
        # the ones already running are pulled forward up to ``K_max``.  This
        # mirrors the paper's connection layers serving several connectors.
        if sync_count:
            window = float(problem.connection_capacity)
            for sync in pending_syncs:
                if sync.key in schedule.start_times:
                    continue
                if pins.get(sync.key, 0) > time:
                    continue
                qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
                if main_this_slot.get(qpu_a) or main_this_slot.get(qpu_b):
                    continue
                if sync_count.get(qpu_a, 0) == 0 and sync_count.get(qpu_b, 0) == 0:
                    continue
                if sync_count.get(qpu_a, 0) >= problem.connection_capacity:
                    continue
                if sync_count.get(qpu_b, 0) >= problem.connection_capacity:
                    continue
                due = min(next_main_priority(qpu_a), next_main_priority(qpu_b)) + window
                if prio[sync.key] > due:
                    continue
                schedule.start_times[sync.key] = time
                sync_count[qpu_a] = sync_count.get(qpu_a, 0) + 1
                sync_count[qpu_b] = sync_count.get(qpu_b, 0) + 1
                scheduled_this_slot += 1

        # Phase 2: every QPU without synchronisation work runs its next main
        # task (in compilation order).
        for qpu in range(problem.num_qpus):
            if sync_count.get(qpu, 0) > 0:
                continue
            index = next_main_index[qpu]
            if index >= len(problem.main_tasks[qpu]):
                continue
            task = problem.main_tasks[qpu][index]
            if pins.get(task.key, 0) > time:
                continue
            schedule.start_times[task.key] = time
            next_main_index[qpu] = index + 1
            main_this_slot[qpu] = True
            scheduled_this_slot += 1

        # Phase 3: guarantee progress.  If nothing could be scheduled (for
        # example every remaining task is pinned to a later cycle), jump to
        # the next relevant time instead of spinning.
        if scheduled_this_slot == 0:
            future_pins = [
                pin for key, pin in pins.items()
                if key not in schedule.start_times and pin > time
            ]
            if future_pins:
                time = min(future_pins)
                continue
            # Otherwise force the lowest-priority pending synchronisation
            # through (its partner QPUs are idle by construction here).
            forced = False
            for sync in pending_syncs:
                if sync.key in schedule.start_times:
                    continue
                schedule.start_times[sync.key] = time
                forced = True
                break
            if not forced:
                raise SchedulingError("list scheduling stalled with unscheduled tasks")
        time += 1

    problem.validate(schedule)
    return schedule
