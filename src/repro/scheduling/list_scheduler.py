"""Priority-based list scheduling for the layer scheduling problem.

This is the baseline heuristic of Section IV-B: a main task ``J_{i,j}``
receives priority ``j`` and a synchronisation task associated with
``(J_{i,j}, J_{i',j'})`` receives priority ``(j + j') / 2``, so communication
events are slotted near the execution layers they connect.  The scheduler
walks the time axis one cycle at a time; each cycle every QPU either runs its
next main task or hosts up to ``K_max`` pending synchronisation tasks whose
priority has come due.

The same routine doubles as the ``PinAndReschedule`` primitive of the BDIR
algorithm: callers may pass explicit per-task priorities (the start times of
an existing schedule, to preserve its relative order) and *pin* one task to a
specific cycle.

Implementation notes — the decision sequence is reproduced *exactly* (the
schedule is bit-identical to the straightforward scan-everything loop), but
the per-cycle work is sub-linear in the number of syncs:

* **Active-set scan.**  Instead of re-scanning every unscheduled sync each
  cycle, each QPU keeps its endpoint syncs in (priority, sync_id) order
  behind a release pointer with threshold ``next_prio[q] + K_max[q]`` — a
  provable superset of both the phase-1 strict-due condition and the
  phase-1b top-up window (the thresholds are per-endpoint upper bounds of
  the exact conditions, which are re-checked verbatim at scan time; float
  addition is monotone, so the superset survives rounding).  A sync enters
  the shared active list once both endpoints have released it; started
  entries are compacted out lazily.  ``next_prio`` is *not* monotone (pins
  flip it to infinity and back), which is why the release is a superset
  with exact re-checks rather than the decision itself.
* **Cached statics.**  Per-sync hop windows (start-relative offsets),
  capacity tables and relay totals depend only on the problem and its route
  table, so they are cached on the problem keyed by the route version
  instead of being rebuilt per call — BDIR calls this scheduler once per
  annealing iteration.
* **Optional validation.**  ``validate=False`` skips the post-hoc
  constraint check for trusted inner-loop callers (BDIR validates the best
  schedule once per refine instead of every candidate).

Relayed syncs book *windows*: under the pipelined store-and-forward model a
sync starting at ``t`` occupies each route QPU, link, and intermediate
buffer slot at its own hop cycle (``t``, ``t + 1``, …), so occupancy is kept
in global ``(resource, cycle)`` maps rather than per-cycle arrays — a claim
in cycle ``t`` may reserve capacity several cycles ahead.  Direct syncs book
exactly one cycle and reproduce the pre-pipelining scheduler bit for bit.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Mapping, Optional

from repro.obs.trace import TRACER
from repro.scheduling.problem import LayerSchedulingProblem, Schedule, SyncTask, TaskKey
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import SchedulingError

__all__ = ["default_priorities", "list_schedule"]

_INF = float("inf")


def default_priorities(problem: LayerSchedulingProblem) -> Dict[TaskKey, float]:
    """The paper's default priorities: ``j`` for mains, ``(j + j')/2`` for syncs."""
    priorities: Dict[TaskKey, float] = {}
    for tasks in problem.main_tasks:
        for task in tasks:
            priorities[task.key] = float(task.index)
    for sync in problem.sync_tasks:
        priorities[sync.key] = (sync.index_a + sync.index_b) / 2.0
    return priorities


class _SchedulerStatics:
    """Per-problem scheduler inputs that only depend on the route table."""

    __slots__ = (
        "route_version",
        "capacity",
        "buffer_limit",
        "syncs",
        "qpu_windows",
        "link_windows",
        "buffer_windows",
        "relayed",
        "total_tasks",
        "horizon_limit",
    )

    def __init__(self, problem: LayerSchedulingProblem) -> None:
        self.route_version = getattr(problem, "_route_version", 0)
        pipelined = problem.pipelined
        num_qpus = problem.num_qpus
        self.capacity = [problem.capacity_of(qpu) for qpu in range(num_qpus)]
        self.buffer_limit = [problem.buffer_limit_of(qpu) for qpu in range(num_qpus)]
        self.syncs: List[SyncTask] = list(problem.sync_tasks)
        self.qpu_windows = {
            s.sync_id: s.qpu_windows(0, pipelined) for s in self.syncs
        }
        self.link_windows = {
            s.sync_id: s.link_windows(0, pipelined) for s in self.syncs
        }
        self.buffer_windows = {
            s.sync_id: s.buffer_windows(0, pipelined) for s in self.syncs
        }
        self.relayed = any(s.relay_hops for s in self.syncs)
        self.total_tasks = problem.num_main_tasks + problem.num_sync_tasks
        total_relay_hops = sum(s.relay_hops for s in self.syncs)
        self.horizon_limit = 4 * self.total_tasks + 16 + 4 * total_relay_hops


def _statics(problem: LayerSchedulingProblem) -> _SchedulerStatics:
    cached = getattr(problem, "_scheduler_statics", None)
    if cached is not None and cached.route_version == getattr(
        problem, "_route_version", 0
    ):
        return cached
    cached = _SchedulerStatics(problem)
    problem._scheduler_statics = cached
    return cached


def list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]] = None,
    pinned: Optional[Mapping[TaskKey, int]] = None,
    *,
    validate: bool = True,
) -> Schedule:
    """Produce a feasible schedule by priority-based list scheduling.

    Args:
        problem: The layer scheduling problem.
        priorities: Optional per-task priorities (lower runs earlier);
            defaults to :func:`default_priorities`.
        pinned: Optional mapping of task keys to the earliest cycle they may
            start (the task is scheduled at the first feasible cycle at or
            after the pin).  Used by BDIR's ``PinAndReschedule``.
        validate: Check the result against all hard constraints (default).
            Trusted inner-loop callers (BDIR's repair) skip this and
            validate only the schedule they return.

    Returns:
        A schedule satisfying all hard constraints.
    """
    with TRACER.span(
        "scheduler.list_schedule",
        mains=problem.num_main_tasks,
        syncs=problem.num_sync_tasks,
    ):
        return _list_schedule(problem, priorities, pinned, validate)


def _list_schedule(
    problem: LayerSchedulingProblem,
    priorities: Optional[Mapping[TaskKey, float]],
    pinned: Optional[Mapping[TaskKey, int]],
    validate: bool = True,
) -> Schedule:
    prio = dict(priorities) if priorities is not None else default_priorities(problem)
    pins = dict(pinned or {})
    for key in pins:
        if key not in prio:
            raise SchedulingError(f"pinned task {key} is not part of the problem")

    num_qpus = problem.num_qpus
    statics = _statics(problem)
    capacity = statics.capacity
    buffer_limit = statics.buffer_limit
    link_limits = problem.link_capacities
    sync_qpu_windows = statics.qpu_windows
    sync_link_windows = statics.link_windows
    sync_buffer_windows = statics.buffer_windows
    relayed = statics.relayed

    # Flat per-QPU views of the main-task queues.
    main_prio: List[List[float]] = [
        [prio[task.key] for task in tasks] for tasks in problem.main_tasks
    ]
    main_pin: List[List[int]] = [
        [pins.get(task.key, 0) for task in tasks] for tasks in problem.main_tasks
    ]

    # Syncs in global (priority, sync_id) order — the scan order of every
    # phase.  ``order`` holds positions into ``syncs``; per-endpoint release
    # lists are the same order filtered by QPU.
    syncs = statics.syncs
    sync_count = len(syncs)
    sync_prio: List[float] = [prio[s.key] for s in syncs]
    sync_pin: List[int] = [pins.get(s.key, 0) for s in syncs]
    order: List[int] = sorted(
        range(sync_count), key=lambda i: (sync_prio[i], syncs[i].sync_id)
    )
    endpoint_lists: List[List[int]] = [[] for _ in range(num_qpus)]
    for i in order:
        endpoint_lists[syncs[i].qpu_a].append(i)
        endpoint_lists[syncs[i].qpu_b].append(i)
    release_ptr = [0] * num_qpus
    release_count = [0] * sync_count
    started = [False] * sync_count
    # Active list: released-on-both-endpoints syncs, ascending (prio, id).
    active: List[tuple] = []
    global_ptr = 0  # into ``order``: first not-yet-started sync

    # Global occupancy, keyed by (resource, cycle): pipelined relays book
    # future cycles, so per-cycle arrays are not enough.
    sync_at: Dict[tuple, int] = {}
    link_at: Dict[tuple, int] = {}
    buffer_at: Dict[tuple, int] = {}
    route_reevals = 0
    buffer_conflicts = 0

    def claim(sync: SyncTask, time: int) -> bool:
        """Check route capacity hop by hop and, if feasible, book the windows."""
        nonlocal route_reevals, buffer_conflicts
        sync_id = sync.sync_id
        if relayed and sync.relay_hops:
            route_reevals += 1
        for qpu, offset in sync_qpu_windows[sync_id]:
            if sync_at.get((qpu, time + offset), 0) >= capacity[qpu]:
                return False
        if link_limits is not None:
            for link, offset in sync_link_windows[sync_id]:
                if link_at.get((link, time + offset), 0) >= link_limits[link]:
                    return False
        for qpu, offset in sync_buffer_windows[sync_id]:
            if buffer_at.get((qpu, time + offset), 0) >= buffer_limit[qpu]:
                buffer_conflicts += 1
                return False
        for qpu, offset in sync_qpu_windows[sync_id]:
            slot = (qpu, time + offset)
            sync_at[slot] = sync_at.get(slot, 0) + 1
        if link_limits is not None:
            for link, offset in sync_link_windows[sync_id]:
                slot = (link, time + offset)
                link_at[slot] = link_at.get(slot, 0) + 1
        for qpu, offset in sync_buffer_windows[sync_id]:
            slot = (qpu, time + offset)
            buffer_at[slot] = buffer_at.get(slot, 0) + 1
        return True

    schedule = Schedule()
    start_times = schedule.start_times
    next_main_index = [0] * num_qpus
    total_tasks = statics.total_tasks
    horizon_limit = statics.horizon_limit

    time = 0
    cycles = 0
    sync_scans = 0
    while len(start_times) < total_tasks:
        cycles += 1
        if time > horizon_limit:
            raise SchedulingError(
                "list scheduling exceeded its time horizon; the problem is inconsistent"
            )
        scheduled_this_slot = 0

        # Priority of each QPU's next runnable main task, fixed for the
        # cycle (phase 2 runs after every sync decision).
        next_prio = [_INF] * num_qpus
        for qpu in range(num_qpus):
            index = next_main_index[qpu]
            if index < len(main_prio[qpu]) and main_pin[qpu][index] <= time:
                next_prio[qpu] = main_prio[qpu][index]

        # Release: advance each QPU's pointer up to this cycle's threshold
        # (an upper bound of every due condition below); a sync joins the
        # active list once both endpoints have released it.  Thresholds
        # fluctuate with ``next_prio``, so released syncs are a superset of
        # the due ones and the exact conditions are re-checked per scan.
        for qpu in range(num_qpus):
            endpoint = endpoint_lists[qpu]
            pointer = release_ptr[qpu]
            threshold = next_prio[qpu] + capacity[qpu]
            while pointer < len(endpoint) and sync_prio[endpoint[pointer]] <= threshold:
                i = endpoint[pointer]
                pointer += 1
                release_count[i] += 1
                if release_count[i] == 2 and not started[i]:
                    insort(active, (sync_prio[i], syncs[i].sync_id, i))
            release_ptr[qpu] = pointer

        # Phase 1: synchronisation tasks whose priority has come due on both
        # of their QPUs claim communication resources first (relay routes
        # book a slot on every intermediate QPU and every crossed link).
        stale = 0
        for priority, _sync_id, i in active:
            if started[i]:
                stale += 1
                continue
            sync_scans += 1
            sync = syncs[i]
            if sync_pin[sync.sync_id] > time:
                continue
            if priority > next_prio[sync.qpu_a] or priority > next_prio[sync.qpu_b]:
                continue
            if not claim(sync, time):
                continue
            started[i] = True
            start_times[sync.key] = time
            scheduled_this_slot += 1

        # Phase 1b: top up connection layers.  A QPU that already switched to
        # communication mode this cycle wastes nothing by hosting more
        # synchronisation tasks, so pending syncs whose priority is close to
        # the ones already running are pulled forward up to ``K_max``.  This
        # mirrors the paper's connection layers serving several connectors.
        if scheduled_this_slot:
            for priority, _sync_id, i in active:
                if started[i]:
                    continue
                sync_scans += 1
                sync = syncs[i]
                if sync_pin[sync.sync_id] > time:
                    continue
                qpu_a, qpu_b = sync.qpu_a, sync.qpu_b
                if (
                    sync_at.get((qpu_a, time), 0) == 0
                    and sync_at.get((qpu_b, time), 0) == 0
                ):
                    continue
                window = float(min(capacity[qpu_a], capacity[qpu_b]))
                due = min(next_prio[qpu_a], next_prio[qpu_b]) + window
                if priority > due:
                    continue
                if not claim(sync, time):
                    continue
                started[i] = True
                start_times[sync.key] = time
                scheduled_this_slot += 1

        # Phase 2: every QPU without synchronisation work this cycle runs its
        # next main task (in compilation order).  Relay windows booked by
        # earlier cycles count: a QPU forwarding a store-and-forward photon
        # is in communication mode and cannot run a main task.
        for qpu in range(num_qpus):
            if sync_at.get((qpu, time), 0) > 0:
                continue
            index = next_main_index[qpu]
            if index >= len(main_prio[qpu]):
                continue
            if main_pin[qpu][index] > time:
                continue
            task = problem.main_tasks[qpu][index]
            start_times[task.key] = time
            next_main_index[qpu] = index + 1
            scheduled_this_slot += 1

        # Phase 3: guarantee progress.  If nothing could be scheduled (for
        # example every remaining task is pinned to a later cycle), jump to
        # the next relevant time instead of spinning.
        if scheduled_this_slot == 0:
            future_pins = [
                pin for key, pin in pins.items()
                if key not in start_times and pin > time
            ]
            if future_pins:
                time = min(future_pins)
                continue
            # Otherwise force the lowest-priority pending synchronisation
            # through at the earliest cycle whose whole hop window is free
            # (for direct syncs that is the current cycle: the partner QPUs
            # are idle by construction here; relayed syncs may have to step
            # past windows booked by earlier claims).
            while global_ptr < len(order) and started[order[global_ptr]]:
                global_ptr += 1
            if global_ptr < len(order):
                forced_index = order[global_ptr]
                forced = syncs[forced_index]
                forced_start = time
                while not claim(forced, forced_start):
                    forced_start += 1
                    if forced_start > horizon_limit:
                        raise SchedulingError(
                            "list scheduling exceeded its time horizon; "
                            "the problem is inconsistent"
                        )
                started[forced_index] = True
                start_times[forced.key] = forced_start
            else:
                # Every remaining task is a main task on a QPU whose
                # communication layer is busy this cycle with a relay
                # window booked by an earlier claim; the window passes,
                # so skip ahead rather than declaring a stall.
                blocked = any(
                    next_main_index[qpu] < len(main_prio[qpu])
                    and sync_at.get((qpu, time), 0) > 0
                    for qpu in range(num_qpus)
                )
                if not blocked:
                    raise SchedulingError(
                        "list scheduling stalled with unscheduled tasks"
                    )
        if stale > len(active) // 2:
            active = [entry for entry in active if not started[entry[2]]]
        time += 1

    OP_COUNTERS.add("scheduler.calls")
    OP_COUNTERS.add("scheduler.cycles", cycles)
    OP_COUNTERS.add("scheduler.sync_scans", sync_scans)
    if route_reevals:
        OP_COUNTERS.add("scheduler.route_reevals", route_reevals)
    if buffer_conflicts:
        OP_COUNTERS.add("scheduler.buffer_conflicts", buffer_conflicts)
    if validate:
        problem.validate(schedule)
    return schedule
