"""Bottleneck-Driven Iterative Refinement (BDIR) — Algorithm 3 of the paper.

BDIR wraps a *smart* neighbourhood generator inside a lightweight simulated
annealing loop.  A neighbour is produced in three steps:

1. ``FindBottleneckTask`` identifies the task responsible for the current
   required photon lifetime — the main task holding the worst fusee or
   measuree, or the synchronisation task with the worst remote gap;
2. ``CalculateBalancePoint`` picks a target cycle for that task: the
   temporal midpoint of the start times of everything the task is coupled to
   (fusion partners, dependency neighbours, attached synchronisation tasks),
   holding all other tasks fixed;
3. ``PinAndReschedule`` pins the task to that cycle and rebuilds the rest of
   the schedule with the list scheduler, using the *original start times as
   priorities* so the existing relative order is preserved while any
   violated constraints are repaired.

The annealing loop accepts improving neighbours unconditionally and worse
ones with probability ``exp(-dE / T)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    Schedule,
    SyncTask,
    TaskKey,
)
from repro.utils.rng import make_rng

__all__ = ["BDIRConfig", "BDIRScheduler"]


@dataclass(frozen=True)
class BDIRConfig:
    """Simulated-annealing parameters of Algorithm 3.

    The defaults match the paper's experimental setup (Section V-A):
    ``T0 = 10``, cooling rate ``0.95`` and 20 iterations.
    """

    initial_temperature: float = 10.0
    cooling_rate: float = 0.95
    max_iterations: int = 20
    seed: int = 0


@dataclass
class BDIRScheduler:
    """Refine an initial schedule with bottleneck-driven simulated annealing."""

    problem: LayerSchedulingProblem
    config: BDIRConfig = field(default_factory=BDIRConfig)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def refine(self, initial: Optional[Schedule] = None) -> Schedule:
        """Run Algorithm 3 and return the best schedule found."""
        rng = make_rng(self.config.seed)
        current = initial.copy() if initial is not None else list_schedule(self.problem)
        best = current.copy()
        best_cost = self._cost(best)
        temperature = self.config.initial_temperature

        for _ in range(self.config.max_iterations):
            neighbour = self._generate_neighbor(current)
            if neighbour is None:
                break
            current_cost = self._cost(current)
            neighbour_cost = self._cost(neighbour)
            delta = neighbour_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current = neighbour
                current_cost = neighbour_cost
            if current_cost < best_cost:
                best = current.copy()
                best_cost = current_cost
            temperature *= self.config.cooling_rate
        return best

    # ------------------------------------------------------------------ #
    # Algorithm 3 primitives
    # ------------------------------------------------------------------ #

    def _cost(self, schedule: Schedule) -> float:
        return float(self.problem.evaluate(schedule).tau_photon)

    def _generate_neighbor(self, schedule: Schedule) -> Optional[Schedule]:
        bottleneck = self._find_bottleneck_task(schedule)
        if bottleneck is None:
            return None
        target = self._calculate_balance_point(schedule, bottleneck)
        return self._pin_and_reschedule(schedule, bottleneck, target)

    def _find_bottleneck_task(self, schedule: Schedule) -> Optional[TaskKey]:
        """Identify the task responsible for the current objective value."""
        evaluation = self.problem.evaluate(schedule)
        node_task = self.problem.node_task_map()

        if evaluation.tau_remote >= evaluation.tau_local:
            worst_sync: Optional[SyncTask] = None
            worst_gap = -1
            for sync in self.problem.sync_tasks:
                sync_start = schedule.start_of(sync.key)
                gap = max(
                    abs(sync_start - schedule.start_of(key)) for key in sync.main_keys
                )
                if gap > worst_gap:
                    worst_gap = gap
                    worst_sync = sync
            return worst_sync.key if worst_sync is not None else None

        report = evaluation.lifetime_report
        if report.tau_fusee >= report.tau_measuree and report.worst_fusee_pair:
            u, v = report.worst_fusee_pair
            node_start = self._node_start_times(schedule)
            # Move the later of the two photons' tasks.
            later = u if node_start.get(u, 0) >= node_start.get(v, 0) else v
            return node_task.get(later)
        if report.worst_measuree is not None:
            return node_task.get(report.worst_measuree)
        return None

    def _node_start_times(self, schedule: Schedule) -> Dict[int, int]:
        node_start: Dict[int, int] = {}
        for tasks in self.problem.main_tasks:
            for task in tasks:
                start = schedule.start_of(task.key)
                for node in task.nodes:
                    node_start[node] = start
        return node_start

    def _calculate_balance_point(self, schedule: Schedule, key: TaskKey) -> int:
        """Temporal equilibrium point of a task given everything else fixed."""
        anchors: List[int] = []
        if key[0] == "sync":
            sync = next(s for s in self.problem.sync_tasks if s.key == key)
            anchors = [schedule.start_of(k) for k in sync.main_keys]
        else:
            _, qpu, index = key
            task = self.problem.main_tasks[qpu][index]
            task_nodes = set(task.nodes)
            node_start = self._node_start_times(schedule)
            node_task = self.problem.node_task_map()
            # Fusion partners located in other main tasks.
            for u, v in self.problem.local_fusee_pairs:
                if (u in task_nodes) == (v in task_nodes):
                    continue
                other = v if u in task_nodes else u
                if other in node_start:
                    anchors.append(node_start[other])
            # Dependency neighbours located in other main tasks.
            if self.problem.dependency is not None:
                graph = self.problem.dependency.graph
                for node in task_nodes:
                    if node not in graph:
                        continue
                    for neighbour in list(graph.predecessors(node)) + list(
                        graph.successors(node)
                    ):
                        other_key = node_task.get(neighbour)
                        if other_key is not None and other_key != key:
                            anchors.append(schedule.start_of(other_key))
            # Attached synchronisation tasks.
            for sync in self.problem.syncs_of_main(key):
                anchors.append(schedule.start_of(sync.key))
        if not anchors:
            return schedule.start_of(key)
        return int(round((min(anchors) + max(anchors)) / 2.0))

    def _pin_and_reschedule(
        self, schedule: Schedule, key: TaskKey, target: int
    ) -> Schedule:
        """Pin ``key`` near ``target`` and rebuild the schedule around it."""
        priorities: Dict[TaskKey, float] = {
            task_key: float(start) for task_key, start in schedule.start_times.items()
        }
        # Give the pinned task a priority equal to its target so the list
        # scheduler naturally slots it there, and pin it so it cannot run
        # earlier.
        priorities[key] = float(target)
        pinned = {key: max(0, target)}
        return list_schedule(self.problem, priorities=priorities, pinned=pinned)
