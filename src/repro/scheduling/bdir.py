"""Bottleneck-Driven Iterative Refinement (BDIR) — Algorithm 3 of the paper.

BDIR wraps a *smart* neighbourhood generator inside a lightweight simulated
annealing loop.  A neighbour is produced in three steps:

1. ``FindBottleneckTask`` identifies the task responsible for the current
   required photon lifetime — the main task holding the worst fusee or
   measuree, or the synchronisation task with the worst remote gap;
2. ``CalculateBalancePoint`` picks a target cycle for that task: the
   temporal midpoint of the start times of everything the task is coupled to
   (fusion partners, dependency neighbours, attached synchronisation tasks),
   holding all other tasks fixed;
3. ``PinAndReschedule`` pins the task to that cycle and rebuilds the rest of
   the schedule with the list scheduler, using the *original start times as
   priorities* so the existing relative order is preserved while any
   violated constraints are repaired.

The annealing loop accepts improving neighbours unconditionally and worse
ones with probability ``exp(-dE / T)``.

On sparse interconnects (a link-capacity table with at least one relayed
sync) two further move classes join the classic balance-point pin:

* **re-route** — the bottleneck sync is moved onto one of the
  interconnect's alternate paths (``SystemModel.alternate_routes``),
  scored by the pipelined remote gap plus the congestion its hop windows
  would add;
* **link shift** — the most saturated link's worst sync is re-routed onto
  the least-loaded alternative that avoids that link.

Both mutate the problem's route table (``LayerSchedulingProblem.set_route``)
and are rolled back when the annealing step rejects the neighbour; the
route table matching the best schedule is restored before returning.  The
balance point of a relayed sync accounts for congested-route cycles: the
ideal cycle under the pipelined gap formula, nudged to the nearby cycle
whose hop windows add the least link over-subscription.  Fully-connected
problems never take these paths, so their refinement (including the RNG
stream) is unchanged.

Every static view the primitives need (node→task map, fusion partners and
dependency neighbours per main task, syncs per main task) is precomputed
once per scheduler, and each candidate schedule is evaluated exactly once —
the evaluation is the annealing loop's inner product and used to be
recomputed three times per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hardware.system import SystemModel, enumerate_routes
from repro.obs.trace import TRACER
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    Schedule,
    ScheduleEvaluation,
    SyncTask,
    TaskKey,
    remote_sync_gaps,
)
from repro.utils.counters import OP_COUNTERS
from repro.utils.rng import make_rng

__all__ = ["BDIRConfig", "BDIRScheduler"]


@dataclass(frozen=True)
class BDIRConfig:
    """Simulated-annealing parameters of Algorithm 3.

    The defaults match the paper's experimental setup (Section V-A):
    ``T0 = 10``, cooling rate ``0.95`` and 20 iterations.
    """

    initial_temperature: float = 10.0
    cooling_rate: float = 0.95
    max_iterations: int = 20
    seed: int = 0


@dataclass
class BDIRScheduler:
    """Refine an initial schedule with bottleneck-driven simulated annealing."""

    problem: LayerSchedulingProblem
    config: BDIRConfig = field(default_factory=BDIRConfig)
    system: Optional[SystemModel] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def refine(self, initial: Optional[Schedule] = None) -> Schedule:
        """Run Algorithm 3 and return the best schedule found."""
        with TRACER.span(
            "bdir.refine", max_iterations=self.config.max_iterations
        ) as refine_span:
            rng = make_rng(self.config.seed)
            self._prepare_static_views()
            current = (
                initial.copy() if initial is not None else list_schedule(self.problem)
            )
            # The delta evaluator keeps the accepted schedule's full kernel
            # state and re-propagates only the cone a move actually touches;
            # the priming pass below is the one authoritative full evaluate.
            evaluator = self.problem.delta_evaluator()
            with TRACER.span("schedule.evaluate"):
                current_eval = evaluator.prime(current)
            if self._sparse:
                self._build_link_loads(current)
            best = current.copy()
            best_cost = float(current_eval.tau_photon)
            best_routes = self._routes_snapshot()
            temperature = self.config.initial_temperature

            for iteration in range(self.config.max_iterations):
                OP_COUNTERS.add("bdir.iterations")
                with TRACER.span("bdir.iteration", index=iteration) as step_span:
                    neighbour, undo_route = self._generate_neighbor(
                        current, current_eval, rng
                    )
                    if neighbour is None:
                        step_span.set(outcome="exhausted")
                        break
                    with TRACER.span("schedule.evaluate"):
                        neighbour_eval = evaluator.propose(neighbour)
                    delta = (
                        float(neighbour_eval.tau_photon)
                        - float(current_eval.tau_photon)
                    )
                    accepted = delta <= 0 or rng.random() < math.exp(
                        -delta / max(temperature, 1e-9)
                    )
                    if accepted:
                        evaluator.accept()
                        if self._sparse:
                            self._update_link_loads(
                                neighbour,
                                undo_route[0] if undo_route is not None else None,
                            )
                        current, current_eval = neighbour, neighbour_eval
                    else:
                        evaluator.reject()
                        OP_COUNTERS.add("bdir.rollbacks")
                        if undo_route is not None:
                            # Rejected route moves must not leak into later
                            # iterations: restore the sync's previous route.
                            self.problem.set_route(*undo_route)
                    if float(current_eval.tau_photon) < best_cost:
                        best = current.copy()
                        best_cost = float(current_eval.tau_photon)
                        best_routes = self._routes_snapshot()
                    step_span.set(accepted=accepted, tau=int(current_eval.tau_photon))
                temperature *= self.config.cooling_rate
            # The returned schedule and the problem's route table must agree.
            self._restore_routes(best_routes)
            # Inner repairs skip per-candidate validation; the schedule that
            # leaves the annealing loop is checked once, under its routes.
            self.problem.validate(best)
            refine_span.set(best_tau=int(best_cost))
        return best

    def _routes_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        return {sync.sync_id: sync.route for sync in self.problem.sync_tasks}

    def _restore_routes(self, routes: Dict[int, Tuple[int, ...]]) -> None:
        for sync in self.problem.sync_tasks:
            if sync.route != routes[sync.sync_id]:
                self.problem.set_route(sync.sync_id, routes[sync.sync_id])

    # ------------------------------------------------------------------ #
    # Static problem views (route-independent, cached on the problem)
    # ------------------------------------------------------------------ #

    def _prepare_static_views(self) -> None:
        problem = self.problem
        # Congestion-aware moves only make sense on sparse interconnects:
        # a link table to measure load against, and at least one relayed
        # sync.  Fully-connected problems (the paper's default systems)
        # never enter these paths, keeping their refinement bit-identical.
        # Relay hops follow the mutable route table, so this is re-derived
        # per refine rather than cached with the structural views.
        self._sparse = problem.link_capacities is not None and any(
            sync.relay_hops for sync in problem.sync_tasks
        )
        views = getattr(problem, "_bdir_views", None)
        if views is None:
            views = self._build_static_views()
            problem._bdir_views = views
        self._node_task, self._sync_position, self._main_anchors = views

    def _build_static_views(self):
        """Node→task map, sync positions, and per-main anchor sets.

        All three depend only on the problem's task structure — never on
        routes or schedules — so a portfolio of refinement starts (and any
        repeated refine on the same problem) shares one construction; the
        anchor pass walks every dependency edge and dominates refine setup
        on 64-qubit problems otherwise.
        """
        problem = self.problem
        self._node_task: Dict[int, TaskKey] = problem.node_task_map()
        # Routes are mutable (re-route moves), so syncs are looked up live
        # by position instead of caching possibly-stale task objects.
        self._sync_position: Dict[int, int] = {
            sync.sync_id: position for position, sync in enumerate(problem.sync_tasks)
        }
        syncs_of_main: Dict[TaskKey, List[TaskKey]] = {}
        for sync in problem.sync_tasks:
            for key in sync.main_keys:
                syncs_of_main.setdefault(key, []).append(sync.key)

        # Anchor tasks per main task: the tasks generating fusion partners
        # and dependency neighbours of any of its photons, plus its attached
        # synchronisation tasks.  Only the min/max anchor start matters, so
        # the anchors collapse to a set of task keys.
        anchors: Dict[TaskKey, Set[TaskKey]] = {}
        for tasks in problem.main_tasks:
            for task in tasks:
                anchors[task.key] = set()
        for u, v in problem.local_fusee_pairs:
            task_u = self._node_task.get(u)
            task_v = self._node_task.get(v)
            if task_u is None or task_v is None or task_u == task_v:
                continue
            anchors[task_u].add(task_v)
            anchors[task_v].add(task_u)
        if problem.dependency is not None:
            graph = problem.dependency.graph
            for source, target in graph.edges():
                task_s = self._node_task.get(source)
                task_t = self._node_task.get(target)
                if task_s is None or task_t is None or task_s == task_t:
                    continue
                anchors[task_s].add(task_t)
                anchors[task_t].add(task_s)
        for key, sync_keys in syncs_of_main.items():
            anchors[key].update(sync_keys)
        self._main_anchors = anchors
        return self._node_task, self._sync_position, anchors

    # ------------------------------------------------------------------ #
    # Algorithm 3 primitives
    # ------------------------------------------------------------------ #

    def _sync_of(self, key: TaskKey) -> SyncTask:
        """The live sync task for a key (routes may have been replaced)."""
        return self.problem.sync_tasks[self._sync_position[key[1]]]

    def _sync_gap(self, schedule: Schedule, sync: SyncTask) -> int:
        """Remote gap of one sync under the problem's relay model."""
        return int(
            remote_sync_gaps(
                schedule.start_of(sync.key),
                schedule.start_of(sync.main_keys[0]),
                schedule.start_of(sync.main_keys[1]),
                sync.relay_hops,
                pipelined=self.problem.pipelined,
            )
        )

    def _generate_neighbor(
        self, schedule: Schedule, evaluation: ScheduleEvaluation, rng
    ) -> Tuple[Optional[Schedule], Optional[Tuple[int, Tuple[int, ...]]]]:
        """Produce a neighbour schedule and, for route moves, an undo record."""
        bottleneck = self._find_bottleneck_task(schedule, evaluation)
        if bottleneck is None:
            return None, None
        if self._sparse:
            roll = rng.random()
            if roll < 1.0 / 3.0 and bottleneck[0] == "sync":
                move = self._reroute_move(schedule, self._sync_of(bottleneck))
                if move is not None:
                    return move
            elif roll < 2.0 / 3.0:
                move = self._link_shift_move(schedule)
                if move is not None:
                    return move
        target = self._calculate_balance_point(schedule, bottleneck)
        return self._pin_and_reschedule(schedule, bottleneck, target), None

    def _find_bottleneck_task(
        self, schedule: Schedule, evaluation: ScheduleEvaluation
    ) -> Optional[TaskKey]:
        """Identify the task responsible for the current objective value."""
        if evaluation.tau_remote >= evaluation.tau_local:
            # The evaluation already computed every remote gap vectorised and
            # recorded the argmax (first maximum, matching the old scan).
            if evaluation.worst_sync is None:
                return None
            return self.problem.sync_tasks[
                self._sync_position[evaluation.worst_sync]
            ].key

        report = evaluation.lifetime_report
        if report.tau_fusee >= report.tau_measuree and report.worst_fusee_pair:
            u, v = report.worst_fusee_pair
            # Move the later of the two photons' tasks.
            start_u = self._node_start(schedule, u)
            start_v = self._node_start(schedule, v)
            later = u if start_u >= start_v else v
            return self._node_task.get(later)
        if report.worst_measuree is not None:
            return self._node_task.get(report.worst_measuree)
        return None

    def _node_start(self, schedule: Schedule, node: int) -> int:
        key = self._node_task.get(node)
        return schedule.start_of(key) if key is not None else 0

    def _calculate_balance_point(self, schedule: Schedule, key: TaskKey) -> int:
        """Temporal equilibrium point of a task given everything else fixed.

        For a relayed sync under the pipelined model the equilibrium shifts
        by the relay latency (the destination is engaged at arrival, not at
        departure), and on sparse interconnects the target is nudged to the
        nearby cycle whose hop windows are least congested.
        """
        if key[0] == "sync":
            sync = self._sync_of(key)
            start_a, start_b = (schedule.start_of(k) for k in sync.main_keys)
            hops = sync.relay_hops if self.problem.pipelined else 0
            target = int(round((start_a + start_b - hops) / 2.0))
            if self._sparse and sync.relay_hops:
                target = self._least_congested_cycle(schedule, sync, target)
            return target
        anchor_keys = self._main_anchors.get(key, ())
        if not anchor_keys:
            return schedule.start_of(key)
        starts = [schedule.start_of(anchor) for anchor in anchor_keys]
        return int(round((min(starts) + max(starts)) / 2.0))

    # ------------------------------------------------------------------ #
    # Congestion-aware moves (sparse interconnects only)
    # ------------------------------------------------------------------ #

    def _build_link_loads(self, schedule: Schedule) -> None:
        """Per-(link, cycle) load of the accepted schedule's hop windows.

        Built once per refine and maintained across accepted moves (see
        :meth:`_update_link_loads`) instead of being rebuilt — an
        O(syncs × hops) pass — for every candidate a move scores.
        """
        pipelined = self.problem.pipelined
        loads: Dict[Tuple[Tuple[int, int], int], int] = {}
        self._sync_windows: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
        self._sync_starts: Dict[int, int] = {}
        for sync in self.problem.sync_tasks:
            start = schedule.start_of(sync.key)
            windows = list(sync.link_windows(start, pipelined))
            self._sync_starts[sync.sync_id] = start
            self._sync_windows[sync.sync_id] = windows
            for window in windows:
                loads[window] = loads.get(window, 0) + 1
        self._loads = loads

    def _update_link_loads(
        self, schedule: Schedule, rerouted: Optional[int]
    ) -> None:
        """Fold an accepted move into the maintained load map.

        Only syncs whose start actually changed (plus the re-routed one,
        whose windows move even at an unchanged start) are re-booked; a
        zero count deletes its entry so the pressure scan below never sees
        phantom links.
        """
        pipelined = self.problem.pipelined
        loads = self._loads
        for sync in self.problem.sync_tasks:
            sync_id = sync.sync_id
            start = schedule.start_of(sync.key)
            if start == self._sync_starts[sync_id] and sync_id != rerouted:
                continue
            for window in self._sync_windows[sync_id]:
                count = loads[window] - 1
                if count:
                    loads[window] = count
                else:
                    del loads[window]
            windows = list(sync.link_windows(start, pipelined))
            for window in windows:
                loads[window] = loads.get(window, 0) + 1
            self._sync_starts[sync_id] = start
            self._sync_windows[sync_id] = windows

    def _route_cost(
        self,
        loads: Dict[Tuple[Tuple[int, int], int], int],
        route: Tuple[int, ...],
        start: int,
        start_a: int,
        start_b: int,
    ) -> Tuple[int, int, int]:
        """(congestion, gap, length) score of carrying one sync on ``route``."""
        caps = self.problem.link_capacities
        pipelined = self.problem.pipelined
        congestion = 0
        hops = max(0, len(route) - 2)
        for when, (u, v) in enumerate(zip(route, route[1:])):
            link = (min(u, v), max(u, v))
            # Pipelined: the link is busy only at its hop cycle.  Atomic:
            # it is held for the whole transfer window.
            cycles = (start + when,) if pipelined else range(start, start + hops + 1)
            for cycle in cycles:
                over = loads.get((link, cycle), 0) + 1 - caps[link]
                if over > 0:
                    congestion += over
        gap = int(
            remote_sync_gaps(start, start_a, start_b, hops, pipelined=pipelined)
        )
        return congestion, gap, len(route)

    def _least_congested_cycle(
        self, schedule: Schedule, sync: SyncTask, target: int
    ) -> int:
        """Nudge a balance point onto the least-congested nearby cycle.

        Candidate cycles around ``target`` are scored by how many
        over-capacity link-cycles the sync's hop windows would add given
        everything else fixed; ties prefer the cycle closest to the
        temporal equilibrium.
        """
        loads = self._loads
        excluded = self._sync_windows.get(sync.sync_id, ())
        start_a, start_b = (schedule.start_of(k) for k in sync.main_keys)
        route = sync.route_qpus
        window = max(2, sync.relay_hops + 1)
        best_cycle = target
        best_cost: Optional[int] = None
        # Score with the sync's own windows subtracted in place (restored
        # below) rather than copying the whole load map per candidate.
        for booked in excluded:
            loads[booked] -= 1
        try:
            for cycle in range(max(0, target - window), target + window + 1):
                cost = self._route_cost(loads, route, cycle, start_a, start_b)[0]
                if (
                    best_cost is None
                    or cost < best_cost
                    or (
                        cost == best_cost
                        and abs(cycle - target) < abs(best_cycle - target)
                    )
                ):
                    best_cycle, best_cost = cycle, cost
        finally:
            for booked in excluded:
                loads[booked] += 1
        return best_cycle

    def _alternate_routes(self, sync: SyncTask) -> List[Tuple[int, ...]]:
        """Interconnect routes between the sync's endpoints, current excluded."""
        if self.system is not None:
            routes = self.system.alternate_routes(sync.qpu_a, sync.qpu_b)
        else:
            routes = enumerate_routes(
                self.problem.link_capacities, sync.qpu_a, sync.qpu_b
            )
        return [route for route in routes if route != sync.route_qpus]

    def _apply_route_move(
        self, schedule: Schedule, sync: SyncTask, route: Tuple[int, ...]
    ) -> Tuple[Schedule, Tuple[int, Tuple[int, ...]]]:
        """Replace a sync's route, re-balance it, and rebuild the schedule."""
        undo = (sync.sync_id, sync.route)
        self.problem.set_route(sync.sync_id, route)
        target = self._calculate_balance_point(schedule, sync.key)
        return self._pin_and_reschedule(schedule, sync.key, target), undo

    def _reroute_move(
        self, schedule: Schedule, sync: SyncTask
    ) -> Optional[Tuple[Schedule, Tuple[int, Tuple[int, ...]]]]:
        """Re-route the bottleneck sync along the best-scoring alternate path."""
        candidates = self._alternate_routes(sync)
        if not candidates:
            return None
        start = schedule.start_of(sync.key)
        start_a, start_b = (schedule.start_of(k) for k in sync.main_keys)
        loads = self._loads
        excluded = self._sync_windows.get(sync.sync_id, ())
        for booked in excluded:
            loads[booked] -= 1
        try:
            best = min(
                candidates,
                key=lambda route: (
                    self._route_cost(loads, route, start, start_a, start_b),
                    route,
                ),
            )
        finally:
            for booked in excluded:
                loads[booked] += 1
        OP_COUNTERS.add("bdir.reroute_moves")
        return self._apply_route_move(schedule, sync, best)

    def _link_shift_move(
        self, schedule: Schedule
    ) -> Optional[Tuple[Schedule, Tuple[int, Tuple[int, ...]]]]:
        """Shift the most saturated link's worst sync onto a less-loaded path."""
        caps = self.problem.link_capacities
        loads = self._loads
        if not loads:
            return None
        # Pressure per link: saturated cycles first, then total load.
        pressure: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for (link, _cycle), count in loads.items():
            saturated, total = pressure.get(link, (0, 0))
            if count >= caps[link]:
                saturated += 1
            pressure[link] = (saturated, total + count)
        # Single O(n) pass; ties prefer the smallest link tuple, matching
        # the previous max-over-sorted-keys scan.
        hot = max(
            pressure,
            key=lambda link: (pressure[link], (-link[0], -link[1])),
        )
        victims = [s for s in self.problem.sync_tasks if hot in s.links]
        if not victims:
            return None
        victim = max(
            victims, key=lambda s: (self._sync_gap(schedule, s), -s.sync_id)
        )
        detours = [
            route
            for route in self._alternate_routes(victim)
            if hot
            not in {
                (min(u, v), max(u, v)) for u, v in zip(route, route[1:])
            }
        ]
        if not detours:
            return None
        start = schedule.start_of(victim.key)
        start_a, start_b = (schedule.start_of(k) for k in victim.main_keys)
        best = min(
            detours,
            key=lambda route: (
                self._route_cost(loads, route, start, start_a, start_b),
                route,
            ),
        )
        OP_COUNTERS.add("bdir.link_shift_moves")
        return self._apply_route_move(schedule, victim, best)

    def _pin_and_reschedule(
        self, schedule: Schedule, key: TaskKey, target: int
    ) -> Schedule:
        """Pin ``key`` near ``target`` and rebuild the schedule around it."""
        priorities: Dict[TaskKey, float] = {
            task_key: float(start) for task_key, start in schedule.start_times.items()
        }
        # Give the pinned task a priority equal to its target so the list
        # scheduler naturally slots it there, and pin it so it cannot run
        # earlier.
        priorities[key] = float(target)
        pinned = {key: max(0, target)}
        # The active-set scheduler reuses the problem's cached statics and
        # skips per-candidate validation; the refine loop validates the best
        # schedule once before returning it.
        OP_COUNTERS.add("bdir.incremental_repairs")
        return list_schedule(
            self.problem, priorities=priorities, pinned=pinned, validate=False
        )
