"""Bottleneck-Driven Iterative Refinement (BDIR) — Algorithm 3 of the paper.

BDIR wraps a *smart* neighbourhood generator inside a lightweight simulated
annealing loop.  A neighbour is produced in three steps:

1. ``FindBottleneckTask`` identifies the task responsible for the current
   required photon lifetime — the main task holding the worst fusee or
   measuree, or the synchronisation task with the worst remote gap;
2. ``CalculateBalancePoint`` picks a target cycle for that task: the
   temporal midpoint of the start times of everything the task is coupled to
   (fusion partners, dependency neighbours, attached synchronisation tasks),
   holding all other tasks fixed;
3. ``PinAndReschedule`` pins the task to that cycle and rebuilds the rest of
   the schedule with the list scheduler, using the *original start times as
   priorities* so the existing relative order is preserved while any
   violated constraints are repaired.

The annealing loop accepts improving neighbours unconditionally and worse
ones with probability ``exp(-dE / T)``.

Every static view the primitives need (node→task map, fusion partners and
dependency neighbours per main task, syncs per main task) is precomputed
once per scheduler, and each candidate schedule is evaluated exactly once —
the evaluation is the annealing loop's inner product and used to be
recomputed three times per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.obs.trace import TRACER
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.problem import (
    LayerSchedulingProblem,
    Schedule,
    ScheduleEvaluation,
    SyncTask,
    TaskKey,
)
from repro.utils.counters import OP_COUNTERS
from repro.utils.rng import make_rng

__all__ = ["BDIRConfig", "BDIRScheduler"]


@dataclass(frozen=True)
class BDIRConfig:
    """Simulated-annealing parameters of Algorithm 3.

    The defaults match the paper's experimental setup (Section V-A):
    ``T0 = 10``, cooling rate ``0.95`` and 20 iterations.
    """

    initial_temperature: float = 10.0
    cooling_rate: float = 0.95
    max_iterations: int = 20
    seed: int = 0


@dataclass
class BDIRScheduler:
    """Refine an initial schedule with bottleneck-driven simulated annealing."""

    problem: LayerSchedulingProblem
    config: BDIRConfig = field(default_factory=BDIRConfig)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def refine(self, initial: Optional[Schedule] = None) -> Schedule:
        """Run Algorithm 3 and return the best schedule found."""
        with TRACER.span(
            "bdir.refine", max_iterations=self.config.max_iterations
        ) as refine_span:
            rng = make_rng(self.config.seed)
            self._prepare_static_views()
            current = (
                initial.copy() if initial is not None else list_schedule(self.problem)
            )
            current_eval = self.problem.evaluate(current)
            best = current.copy()
            best_cost = float(current_eval.tau_photon)
            temperature = self.config.initial_temperature

            for iteration in range(self.config.max_iterations):
                OP_COUNTERS.add("bdir.iterations")
                with TRACER.span("bdir.iteration", index=iteration) as step_span:
                    neighbour = self._generate_neighbor(current, current_eval)
                    if neighbour is None:
                        step_span.set(outcome="exhausted")
                        break
                    neighbour_eval = self.problem.evaluate(neighbour)
                    delta = (
                        float(neighbour_eval.tau_photon)
                        - float(current_eval.tau_photon)
                    )
                    accepted = delta <= 0 or rng.random() < math.exp(
                        -delta / max(temperature, 1e-9)
                    )
                    if accepted:
                        current, current_eval = neighbour, neighbour_eval
                    if float(current_eval.tau_photon) < best_cost:
                        best = current.copy()
                        best_cost = float(current_eval.tau_photon)
                    step_span.set(accepted=accepted, tau=int(current_eval.tau_photon))
                temperature *= self.config.cooling_rate
            refine_span.set(best_tau=int(best_cost))
        return best

    # ------------------------------------------------------------------ #
    # Static problem views (computed once per refine call)
    # ------------------------------------------------------------------ #

    def _prepare_static_views(self) -> None:
        problem = self.problem
        self._node_task: Dict[int, TaskKey] = problem.node_task_map()
        self._sync_by_key: Dict[TaskKey, SyncTask] = {
            sync.key: sync for sync in problem.sync_tasks
        }
        syncs_of_main: Dict[TaskKey, List[TaskKey]] = {}
        for sync in problem.sync_tasks:
            for key in sync.main_keys:
                syncs_of_main.setdefault(key, []).append(sync.key)

        # Anchor tasks per main task: the tasks generating fusion partners
        # and dependency neighbours of any of its photons, plus its attached
        # synchronisation tasks.  Only the min/max anchor start matters, so
        # the anchors collapse to a set of task keys.
        anchors: Dict[TaskKey, Set[TaskKey]] = {}
        for tasks in problem.main_tasks:
            for task in tasks:
                anchors[task.key] = set()
        for u, v in problem.local_fusee_pairs:
            task_u = self._node_task.get(u)
            task_v = self._node_task.get(v)
            if task_u is None or task_v is None or task_u == task_v:
                continue
            anchors[task_u].add(task_v)
            anchors[task_v].add(task_u)
        if problem.dependency is not None:
            graph = problem.dependency.graph
            for source, target in graph.edges():
                task_s = self._node_task.get(source)
                task_t = self._node_task.get(target)
                if task_s is None or task_t is None or task_s == task_t:
                    continue
                anchors[task_s].add(task_t)
                anchors[task_t].add(task_s)
        for key, sync_keys in syncs_of_main.items():
            anchors[key].update(sync_keys)
        self._main_anchors = anchors

    # ------------------------------------------------------------------ #
    # Algorithm 3 primitives
    # ------------------------------------------------------------------ #

    def _generate_neighbor(
        self, schedule: Schedule, evaluation: ScheduleEvaluation
    ) -> Optional[Schedule]:
        bottleneck = self._find_bottleneck_task(schedule, evaluation)
        if bottleneck is None:
            return None
        target = self._calculate_balance_point(schedule, bottleneck)
        return self._pin_and_reschedule(schedule, bottleneck, target)

    def _find_bottleneck_task(
        self, schedule: Schedule, evaluation: ScheduleEvaluation
    ) -> Optional[TaskKey]:
        """Identify the task responsible for the current objective value."""
        if evaluation.tau_remote >= evaluation.tau_local:
            worst_sync: Optional[SyncTask] = None
            worst_gap = -1
            for sync in self.problem.sync_tasks:
                sync_start = schedule.start_of(sync.key)
                gap = sync.relay_hops + max(
                    abs(sync_start - schedule.start_of(key)) for key in sync.main_keys
                )
                if gap > worst_gap:
                    worst_gap = gap
                    worst_sync = sync
            return worst_sync.key if worst_sync is not None else None

        report = evaluation.lifetime_report
        if report.tau_fusee >= report.tau_measuree and report.worst_fusee_pair:
            u, v = report.worst_fusee_pair
            # Move the later of the two photons' tasks.
            start_u = self._node_start(schedule, u)
            start_v = self._node_start(schedule, v)
            later = u if start_u >= start_v else v
            return self._node_task.get(later)
        if report.worst_measuree is not None:
            return self._node_task.get(report.worst_measuree)
        return None

    def _node_start(self, schedule: Schedule, node: int) -> int:
        key = self._node_task.get(node)
        return schedule.start_of(key) if key is not None else 0

    def _calculate_balance_point(self, schedule: Schedule, key: TaskKey) -> int:
        """Temporal equilibrium point of a task given everything else fixed."""
        if key[0] == "sync":
            sync = self._sync_by_key[key]
            anchor_keys = sync.main_keys
        else:
            anchor_keys = self._main_anchors.get(key, ())
        if not anchor_keys:
            return schedule.start_of(key)
        starts = [schedule.start_of(anchor) for anchor in anchor_keys]
        return int(round((min(starts) + max(starts)) / 2.0))

    def _pin_and_reschedule(
        self, schedule: Schedule, key: TaskKey, target: int
    ) -> Schedule:
        """Pin ``key`` near ``target`` and rebuild the schedule around it."""
        priorities: Dict[TaskKey, float] = {
            task_key: float(start) for task_key, start in schedule.start_times.items()
        }
        # Give the pinned task a priority equal to its target so the list
        # scheduler naturally slots it there, and pin it so it cannot run
        # earlier.
        priorities[key] = float(target)
        pinned = {key: max(0, target)}
        return list_schedule(self.problem, priorities=priorities, pinned=pinned)
