"""Improvement factors.

The paper reports results as ratios ``f = metric_baseline / metric_ours``
(execution-time speedups and required-lifetime reductions).  These helpers
centralise the computation and guard against division by zero when a metric
collapses to 0 on trivial programs.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["improvement_factor", "geometric_mean_improvement"]


def improvement_factor(baseline: float, ours: float) -> float:
    """Return ``baseline / ours``, treating a zero denominator carefully.

    If both values are zero the improvement is defined as 1.0 (nothing to
    improve); if only ``ours`` is zero the improvement is infinite.
    """
    if baseline < 0 or ours < 0:
        raise ValueError("metrics must be non-negative")
    if ours == 0:
        return 1.0 if baseline == 0 else math.inf
    return baseline / ours


def geometric_mean_improvement(factors: Iterable[float]) -> float:
    """Geometric mean of improvement factors (ignores infinities)."""
    finite = [f for f in factors if math.isfinite(f) and f > 0]
    if not finite:
        return 1.0
    return math.exp(sum(math.log(f) for f in finite) / len(finite))
