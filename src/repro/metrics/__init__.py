"""Compiler performance metrics.

The central metric is the *required photon lifetime* of Section III
(Algorithm 1): the maximum number of clock cycles any photon must wait in a
delay line, either for its fusion partner (fusees) or for the classical
signals that determine its measurement basis (measurees).  Execution time
(number of execution layers / schedule makespan) and improvement factors
complete the set used across the paper's tables and figures.
"""

from repro.metrics.lifetime import (
    LifetimeReport,
    required_photon_lifetime,
    fusee_lifetime,
    measuree_lifetime,
)
from repro.metrics.exec_time import execution_time_of_layers, makespan
from repro.metrics.improvement import improvement_factor, geometric_mean_improvement

__all__ = [
    "LifetimeReport",
    "required_photon_lifetime",
    "fusee_lifetime",
    "measuree_lifetime",
    "execution_time_of_layers",
    "makespan",
    "improvement_factor",
    "geometric_mean_improvement",
]
