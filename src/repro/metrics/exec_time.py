"""Execution-time metrics.

For a single-QPU compilation, the execution time is simply the number of
execution layers (each layer consumes one logical clock cycle).  For a
distributed schedule it is the makespan: the latest completion time over all
main and synchronisation tasks.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["execution_time_of_layers", "makespan"]


def execution_time_of_layers(num_layers: int, pl_ratio: float = 1.0) -> int:
    """Execution time in clock cycles for ``num_layers`` logical layers.

    The PL ratio (physical layers per logical layer) is a hardware constant;
    the paper plans at the logical level where it stabilises around a fixed
    value, so the default of 1 reports logical cycles.
    """
    if num_layers < 0:
        raise ValueError("number of layers must be non-negative")
    if pl_ratio <= 0:
        raise ValueError("PL ratio must be positive")
    return int(round(num_layers * pl_ratio))


def makespan(start_times: Mapping[object, int], durations: Mapping[object, int] | None = None) -> int:
    """Return the makespan of a schedule.

    Args:
        start_times: Mapping from task to its scheduled start time.
        durations: Optional per-task durations; default is 1 for every task.
    """
    if not start_times:
        return 0
    latest = 0
    for task, start in start_times.items():
        duration = 1 if durations is None else durations.get(task, 1)
        latest = max(latest, int(start) + int(duration))
    return latest
