"""Required photon lifetime — Algorithm 1 of the paper.

Photons fall into three classes (Section III):

* **fusees** wait in a delay line for their fusion partner, so a fusee pair
  ``(u, v)`` placed on execution layers ``L(u)`` and ``L(v)`` requires a
  lifetime of ``|L(u) - L(v)|``,
* **measurees** wait for the classical outcomes their measurement basis
  depends on; Part 2 of Algorithm 1 propagates the earliest measurable time
  ``MTime`` along the dependency graph and takes the worst slack
  ``MTime[u] - L(u)``,
* **removees** (Z-basis removals) never wait thanks to signal shifting and
  are excluded.

The required photon lifetime of a compiled program is the maximum over both
sources.  Distributed compilation adds connector photons whose lifetime is
handled by the layer scheduler (:mod:`repro.scheduling`), which reuses the
same functions with task start times in place of layer indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.mbqc.dependency import DependencyGraph
from repro.utils.errors import ValidationError

__all__ = [
    "LifetimeReport",
    "fusee_lifetime",
    "measuree_lifetime",
    "required_photon_lifetime",
]


@dataclass(frozen=True)
class LifetimeReport:
    """Breakdown of the required photon lifetime.

    Attributes:
        tau_fusee: Worst fusion-synchronisation wait (Part 1 of Algorithm 1).
        tau_measuree: Worst measurement-dependency wait (Part 2).
        tau_remote: Worst connector wait, when evaluating a distributed
            schedule (0 for single-QPU programs).
        worst_fusee_pair: The fusee pair achieving ``tau_fusee`` (or None).
        worst_measuree: The node achieving ``tau_measuree`` (or None).
    """

    tau_fusee: int
    tau_measuree: int
    tau_remote: int = 0
    worst_fusee_pair: Optional[Tuple[int, int]] = None
    worst_measuree: Optional[int] = None

    @property
    def tau_photon(self) -> int:
        """The required photon lifetime: the maximum over all sources."""
        return max(self.tau_fusee, self.tau_measuree, self.tau_remote)


def fusee_lifetime(
    layer_index: Mapping[int, int],
    fusee_pairs: Iterable[Tuple[int, int]],
    removed_nodes: Optional[Set[int]] = None,
) -> Tuple[int, Optional[Tuple[int, int]]]:
    """Part 1 of Algorithm 1: worst |LayerIndex(u) - LayerIndex(v)| over fusee pairs."""
    removed = removed_nodes or set()
    worst = 0
    worst_pair: Optional[Tuple[int, int]] = None
    for u, v in fusee_pairs:
        if u in removed or v in removed:
            continue
        if u not in layer_index or v not in layer_index:
            raise ValidationError(f"fusee pair ({u}, {v}) has an unplaced photon")
        wait = abs(layer_index[u] - layer_index[v])
        if wait > worst:
            worst = wait
            worst_pair = (u, v)
    return worst, worst_pair


def measuree_lifetime(
    layer_index: Mapping[int, int],
    dependency_graph: "DependencyGraph | nx.DiGraph",
    removed_nodes: Optional[Set[int]] = None,
) -> Tuple[int, Optional[int]]:
    """Part 2 of Algorithm 1: worst wait for measurement-basis signals.

    ``MTime[u]`` is the earliest clock cycle at which ``u`` can be measured:
    one cycle after its own generation (photon travel to the measurement
    device) and one cycle after every parent's measurement (classical
    feed-forward).  The required lifetime of ``u`` is ``MTime[u] -
    LayerIndex(u)``.
    """
    graph = dependency_graph.graph if isinstance(dependency_graph, DependencyGraph) else dependency_graph
    removed = removed_nodes or set()
    mtime: Dict[int, int] = {}
    worst = 0
    worst_node: Optional[int] = None
    for node in nx.topological_sort(graph):
        if node not in layer_index:
            # Nodes outside the schedule (e.g. logical outputs that are
            # never physically generated) do not constrain storage.
            continue
        earliest = layer_index[node] + 1
        for parent in graph.predecessors(node):
            if parent in mtime:
                earliest = max(earliest, mtime[parent] + 1)
        mtime[node] = earliest
        if node in removed:
            continue
        wait = earliest - layer_index[node]
        if wait > worst:
            worst = wait
            worst_node = node
    return worst, worst_node


def required_photon_lifetime(
    layer_index: Mapping[int, int],
    fusee_pairs: Iterable[Tuple[int, int]],
    dependency_graph: "DependencyGraph | nx.DiGraph",
    removed_nodes: Optional[Set[int]] = None,
    remote_waits: Iterable[int] = (),
) -> LifetimeReport:
    """Algorithm 1: compute the full required-photon-lifetime report.

    Args:
        layer_index: Execution-layer index (or scheduled start time) of every
            photon.
        fusee_pairs: Pairs of photons joined by a fusion.
        dependency_graph: The measurement dependency graph ``G'`` (only
            X-dependencies should be present if signal shifting has run).
        removed_nodes: Removees, excluded from both parts.
        remote_waits: Optional per-connector waits contributed by inter-QPU
            synchronisation (used when evaluating distributed schedules).
    """
    tau_fusee, worst_pair = fusee_lifetime(layer_index, fusee_pairs, removed_nodes)
    tau_measuree, worst_node = measuree_lifetime(
        layer_index, dependency_graph, removed_nodes
    )
    tau_remote = max(remote_waits, default=0)
    return LifetimeReport(
        tau_fusee=tau_fusee,
        tau_measuree=tau_measuree,
        tau_remote=int(tau_remote),
        worst_fusee_pair=worst_pair,
        worst_measuree=worst_node,
    )
