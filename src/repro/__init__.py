"""DC-MBQC: a distributed compilation framework for measurement-based
quantum computing (reproduction).

The package is organised bottom-up:

* :mod:`repro.circuit` — gate-level circuit IR, decomposition, simulator;
* :mod:`repro.programs` — the paper's benchmark programs (QAOA, VQE, QFT, RCA);
* :mod:`repro.mbqc` — measurement calculus: patterns, translation, signal
  shifting, dependency graphs, graph states, pattern simulation;
* :mod:`repro.hardware` — photonic hardware model (resource states, fusion,
  delay-line loss, QPUs);
* :mod:`repro.metrics` — required photon lifetime (Algorithm 1), execution
  time, improvement factors;
* :mod:`repro.compiler` — single-QPU compilers (OneQ / OneAdapt style);
* :mod:`repro.partition` — adaptive graph partitioning (Algorithm 2);
* :mod:`repro.scheduling` — layer scheduling, list scheduler, BDIR
  (Algorithm 3);
* :mod:`repro.core` — the DC-MBQC distributed compiler;
* :mod:`repro.pipeline` — the staged compilation pipeline: content-addressed
  artifact caching, provenance manifests, batch compile service;
* :mod:`repro.sweep` — declarative parameter grids, parallel runner,
  resumable result store;
* :mod:`repro.runtime` — distributed execution replay and reliability
  estimation.

Quick start::

    from repro.core import DCMBQCCompiler, DCMBQCConfig
    from repro.programs import build_benchmark

    result = DCMBQCCompiler(DCMBQCConfig(num_qpus=4, grid_size=7)).compile(
        build_benchmark("QFT", 16)
    )
    print(result.execution_time, result.required_photon_lifetime)
"""

from repro.core import DCMBQCCompiler, DCMBQCConfig, compare_with_baseline
from repro.compiler import OneQCompiler, OneAdaptCompiler
from repro.pipeline import CompileService
from repro.programs import build_benchmark

__version__ = "1.1.0"

__all__ = [
    "DCMBQCCompiler",
    "DCMBQCConfig",
    "compare_with_baseline",
    "CompileService",
    "OneQCompiler",
    "OneAdaptCompiler",
    "build_benchmark",
    "__version__",
]
