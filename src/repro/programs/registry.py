"""Benchmark registry: Table II of the paper plus the extended families.

:data:`PAPER_TABLE2` records, for every (program, size) pair evaluated in the
paper, the characteristics the authors report: the spatial grid size of a 2D
logical resource layer, the number of 2-qubit gates, and the number of
fusions (edges of the OneQ computation graph).  :func:`build_benchmark`
constructs the corresponding circuit with this library's generators so the
benchmark harness can regenerate the table and compare.

Beyond the paper's four families (VQE, QAOA, QFT, RCA) the registry exposes
five extended workloads — Grover search, quantum phase estimation, GHZ
preparation, hidden shift and a brickwork random ansatz — that drive the
same compilation stack through qualitatively different interaction
structures (global multi-controlled gates, 1D chains, bipartite couplings).
:data:`PAPER_FAMILIES` / :data:`EXTENDED_FAMILIES` split the two groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.circuit.circuit import QuantumCircuit
from repro.programs.ansatz import random_ansatz_circuit
from repro.programs.ghz import ghz_circuit
from repro.programs.grover import grover_circuit
from repro.programs.hidden_shift import hidden_shift_circuit
from repro.programs.qaoa import qaoa_maxcut_circuit
from repro.programs.qft import qft_circuit
from repro.programs.qpe import qpe_circuit
from repro.programs.rca import rca_circuit
from repro.programs.vqe import vqe_circuit
from repro.utils.rng import derive_seed

__all__ = [
    "BenchmarkSpec",
    "PAPER_TABLE2",
    "PAPER_FAMILIES",
    "EXTENDED_FAMILIES",
    "build_benchmark",
    "benchmark_names",
    "paper_grid_size",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Characteristics of one benchmark row in Table II.

    Attributes:
        program: Program family name (e.g. "VQE", "QAOA", "QFT", "RCA").
        num_qubits: Register width used in the paper.
        grid_size: Side length of the 2D logical resource layer.
        num_2q_gates: Number of 2-qubit gates reported by the paper.
        num_fusions: Number of fusions (computation-graph edges) reported.
    """

    program: str
    num_qubits: int
    grid_size: int
    num_2q_gates: int
    num_fusions: int

    @property
    def label(self) -> str:
        """Return the paper's row label, e.g. ``"QFT-36"``."""
        return f"{self.program}-{self.num_qubits}"


PAPER_TABLE2: List[BenchmarkSpec] = [
    BenchmarkSpec("VQE", 16, 7, 120, 408),
    BenchmarkSpec("VQE", 36, 11, 630, 2178),
    BenchmarkSpec("VQE", 81, 17, 3240, 11280),
    BenchmarkSpec("VQE", 144, 23, 10296, 35928),
    BenchmarkSpec("QAOA", 16, 7, 47, 487),
    BenchmarkSpec("QAOA", 64, 15, 799, 7316),
    BenchmarkSpec("QAOA", 121, 21, 2843, 25826),
    BenchmarkSpec("QAOA", 196, 27, 7528, 68141),
    BenchmarkSpec("QFT", 16, 7, 120, 408),
    BenchmarkSpec("QFT", 36, 11, 630, 2178),
    BenchmarkSpec("QFT", 81, 17, 3240, 11280),
    BenchmarkSpec("QFT", 100, 19, 4950, 64450),
    BenchmarkSpec("RCA", 16, 7, 209, 1108),
    BenchmarkSpec("RCA", 36, 11, 529, 2808),
    BenchmarkSpec("RCA", 81, 17, 1249, 6633),
]

_BUILDERS: Dict[str, Callable[[int, int], QuantumCircuit]] = {
    "QAOA": lambda n, seed: qaoa_maxcut_circuit(n, p=1, seed=seed),
    "VQE": lambda n, seed: vqe_circuit(n, layers=1, seed=seed),
    "QFT": lambda n, seed: qft_circuit(n),
    "RCA": lambda n, seed: rca_circuit(n),
    "GROVER": lambda n, seed: grover_circuit(n, iterations=1, seed=seed),
    "QPE": lambda n, seed: qpe_circuit(n, seed=seed),
    "GHZ": lambda n, seed: ghz_circuit(n),
    "HS": lambda n, seed: hidden_shift_circuit(n, seed=seed),
    "ANSATZ": lambda n, seed: random_ansatz_circuit(n, layers=3, seed=seed),
}

#: The four families evaluated in the paper's Table II, in paper order.
PAPER_FAMILIES: List[str] = ["VQE", "QAOA", "QFT", "RCA"]

#: The extended families added on top of the paper's benchmark set.
EXTENDED_FAMILIES: List[str] = ["GROVER", "QPE", "GHZ", "HS", "ANSATZ"]


def benchmark_names() -> List[str]:
    """Return every program family name, paper families first."""
    return PAPER_FAMILIES + EXTENDED_FAMILIES


def paper_grid_size(num_qubits: int) -> int:
    """Return the grid size used by the paper for a program of this width.

    The paper's grid sizes follow ``ceil(2*sqrt(n)) - 1`` rounded to the next
    odd number (7x7 for 16 qubits, 11x11 for 36, ..., 27x27 for 196); we use
    the same rule so that programs not listed in Table II (e.g. QFT-25 and
    QFT-49 from Table VI) get consistent grids.
    """
    for spec in PAPER_TABLE2:
        if spec.num_qubits == num_qubits:
            return spec.grid_size
    side = max(3, math.ceil(2.0 * math.sqrt(num_qubits)) - 1)
    if side % 2 == 0:
        side += 1
    return side


def build_benchmark(program: str, num_qubits: int, seed: int = 2026) -> QuantumCircuit:
    """Construct a benchmark circuit for ``program`` at width ``num_qubits``.

    Args:
        program: A family name from :func:`benchmark_names`
            (case-insensitive): the paper's ``"QAOA"``, ``"VQE"``, ``"QFT"``
            and ``"RCA"`` or the extended ``"GROVER"``, ``"QPE"``, ``"GHZ"``,
            ``"HS"`` and ``"ANSATZ"``.
        num_qubits: Register width (the benchmark label number).
        seed: Base seed; randomised programs derive a stable child seed from
            it so repeated builds are identical.
    """
    key = program.upper()
    if key not in _BUILDERS:
        raise KeyError(f"unknown benchmark program {program!r}")
    child_seed = derive_seed(seed, key, num_qubits)
    return _BUILDERS[key](num_qubits, child_seed)
