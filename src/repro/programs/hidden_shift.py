"""Hidden-shift benchmark circuits (Clifford+T).

The benchmark solves the boolean hidden-shift problem for bent functions in
one query (Roetteler's algorithm): for ``f'(x) = f(x + s)`` the circuit

    ``H^n  X^s O_f X^s  H^n  O_f~  H^n``

terminates exactly in the basis state ``|s>``.  We use Maiorana-McFarland
bent functions ``f(x, y) = x . y + g(y)`` over two register halves, whose
dual is ``f~(x, y) = x . y + g(x)``: the inner product contributes one CZ
per (x_i, y_i) pair, and the seeded polynomial ``g`` adds quadratic (CZ)
and cubic (MCZ over three qubits, i.e. CCZ) terms.  The CCZ terms are what
make the family genuinely Clifford+T — their lowering produces ``RZ(+-pi/4)``
(T/T-dagger) rotations — while the algebra keeps the circuit's output a
computational basis state that tests can check bit for bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["hidden_shift_circuit", "random_shift"]


def random_shift(num_qubits: int, seed: int | None = None) -> Tuple[int, ...]:
    """Return a seeded random (nonzero) shift bitstring, qubit 0 first."""
    rng = make_rng(seed)
    while True:
        shift = tuple(int(bit) for bit in rng.integers(0, 2, size=num_qubits))
        if any(shift):
            return shift


def _seeded_g_terms(
    half: int, seed: int | None
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int]]]:
    """Seeded quadratic and cubic monomials of ``g`` (as half-register indices)."""
    rng = make_rng(seed)
    pairs: List[Tuple[int, int]] = []
    triples: List[Tuple[int, int, int]] = []
    for _ in range(half // 2):
        chosen = rng.choice(half, size=2, replace=False)
        pairs.append(tuple(sorted(int(i) for i in chosen)))
    if half >= 3:
        for _ in range(max(1, half // 3)):
            chosen = rng.choice(half, size=3, replace=False)
            triples.append(tuple(sorted(int(i) for i in chosen)))
    return sorted(set(pairs)), sorted(set(triples))


def _apply_g(
    circuit: QuantumCircuit,
    offset: int,
    pairs: Sequence[Tuple[int, int]],
    triples: Sequence[Tuple[int, int, int]],
) -> None:
    """Phase oracle of ``g`` on the half-register starting at ``offset``."""
    for a, b in pairs:
        circuit.cz(offset + a, offset + b)
    for a, b, c in triples:
        circuit.mcz(offset + a, offset + b, offset + c)


def hidden_shift_circuit(
    num_qubits: int,
    seed: int | None = None,
    shift: Sequence[int] | None = None,
) -> QuantumCircuit:
    """Build a hidden-shift circuit over ``num_qubits`` (even) qubits.

    Args:
        num_qubits: Register width; must be even and at least 4 so the two
            Maiorana-McFarland halves are non-trivial.
        seed: Seed for the random shift and the polynomial ``g``.
        shift: Explicit shift bitstring, one 0/1 entry per qubit.

    Returns:
        The circuit.  Simulating it from ``|0...0>`` ends exactly in the
        basis state of the shift, which is stored as the ``shift`` attribute.
    """
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError("hidden shift needs an even register of at least 4 qubits")
    half = num_qubits // 2
    if shift is None:
        shift = random_shift(num_qubits, seed=seed)
    shift = tuple(int(bit) for bit in shift)
    if len(shift) != num_qubits or any(bit not in (0, 1) for bit in shift):
        raise ValueError("shift must provide one 0/1 bit per qubit")
    pairs, triples = _seeded_g_terms(half, seed)

    circuit = QuantumCircuit(num_qubits, name=f"hs_{num_qubits}")
    shifted = [qubit for qubit, bit in enumerate(shift) if bit]

    for qubit in range(num_qubits):
        circuit.h(qubit)
    # O_{f'} = X^s O_f X^s with f(x, y) = x.y + g(y).
    for qubit in shifted:
        circuit.x(qubit)
    for i in range(half):
        circuit.cz(i, half + i)
    _apply_g(circuit, half, pairs, triples)
    for qubit in shifted:
        circuit.x(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    # O_{f~} with f~(x, y) = x.y + g(x).
    for i in range(half):
        circuit.cz(i, half + i)
    _apply_g(circuit, 0, pairs, triples)
    for qubit in range(num_qubits):
        circuit.h(qubit)

    circuit.shift = shift  # type: ignore[attr-defined]
    return circuit
