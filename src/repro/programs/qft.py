"""Quantum Fourier transform circuits.

The QFT benchmark uses the textbook construction: a Hadamard on each qubit
followed by controlled-phase rotations ``CPHASE(pi / 2^k)`` from every later
qubit, giving ``n*(n-1)/2`` two-qubit gates.  Following the paper's gate
counts (Table II reports exactly ``n*(n-1)/2`` 2-qubit gates for QFT), the
final qubit-reversal SWAPs are omitted by default; they can be enabled with
``include_swaps=True``.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit

__all__ = ["qft_circuit"]


def qft_circuit(num_qubits: int, include_swaps: bool = False) -> QuantumCircuit:
    """Build an ``num_qubits``-qubit quantum Fourier transform circuit.

    Args:
        num_qubits: Register width.
        include_swaps: Append the final qubit-reversal SWAP network.  The
            paper's gate counts exclude it, so it defaults to False.
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cphase(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit
