"""Cuccaro ripple-carry adder (RCA) circuits.

The construction follows Cuccaro, Draper, Kutin and Moulton ("A new quantum
ripple-carry addition circuit"): two ``k``-bit registers are added in place
using one carry-in ancilla and one carry-out qubit, for a total width of
``2k + 2`` qubits.  The circuit is a ladder of MAJ blocks, a single CNOT to
produce the carry-out, and a ladder of UMA blocks.

The paper labels its RCA benchmarks by total qubit count (RCA-16, RCA-36,
RCA-81).  For widths that cannot be written as ``2k + 2`` exactly (81 is
odd), we use the largest adder that fits and leave the remaining qubit idle,
which matches the qubit count while keeping the circuit a genuine adder.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit

__all__ = ["rca_circuit", "rca_adder_for_bits"]


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """The MAJ (majority) block of the Cuccaro adder."""
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """The UMA (un-majority and add) block of the Cuccaro adder."""
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def rca_adder_for_bits(num_bits: int) -> QuantumCircuit:
    """Build a Cuccaro adder for two ``num_bits``-bit registers.

    Qubit layout: ``[carry_in, b_0, a_0, b_1, a_1, ..., b_{k-1}, a_{k-1},
    carry_out]`` for ``k = num_bits``.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit per register")
    width = 2 * num_bits + 2
    circuit = QuantumCircuit(width, name=f"rca_{width}")

    carry_in = 0
    carry_out = width - 1

    def b_qubit(i: int) -> int:
        return 1 + 2 * i

    def a_qubit(i: int) -> int:
        return 2 + 2 * i

    # Forward MAJ ladder.
    _maj(circuit, carry_in, b_qubit(0), a_qubit(0))
    for i in range(1, num_bits):
        _maj(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))

    # Carry-out.
    circuit.cx(a_qubit(num_bits - 1), carry_out)

    # Backward UMA ladder.
    for i in range(num_bits - 1, 0, -1):
        _uma(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    _uma(circuit, carry_in, b_qubit(0), a_qubit(0))
    return circuit


def rca_circuit(num_qubits: int) -> QuantumCircuit:
    """Build an RCA benchmark with (approximately) ``num_qubits`` qubits.

    The adder itself uses ``2k + 2`` qubits for the largest ``k`` that fits;
    if ``num_qubits`` is odd the final qubit is left idle so that the circuit
    width matches the benchmark label.
    """
    if num_qubits < 4:
        raise ValueError("the smallest ripple-carry adder uses 4 qubits")
    num_bits = (num_qubits - 2) // 2
    adder = rca_adder_for_bits(num_bits)
    if adder.num_qubits == num_qubits:
        adder.name = f"rca_{num_qubits}"
        return adder
    # Pad with idle qubits to reach the requested benchmark width.
    padded = QuantumCircuit(num_qubits, name=f"rca_{num_qubits}")
    padded.extend(adder.gates)
    return padded
