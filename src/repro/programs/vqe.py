"""Hardware-efficient VQE ansatz circuits.

Following Section V-A of the paper, the VQE benchmarks use the
hardware-efficient ansatz of Kandala et al. with *fully entangled* layers:
in every entangling layer each pair of qubits is connected through a CNOT, so
the 2-qubit gate count grows quadratically with the number of qubits
(``layers * n * (n-1) / 2``).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["vqe_circuit", "full_entanglement_schedule"]


def vqe_circuit(
    num_qubits: int,
    layers: int = 1,
    seed: int | None = None,
    angles: Sequence[float] | None = None,
) -> QuantumCircuit:
    """Build a hardware-efficient VQE ansatz with fully entangled layers.

    Args:
        num_qubits: Register width.
        layers: Number of (rotation, full-entanglement) blocks.
        seed: Seed for the random rotation angles when ``angles`` is omitted.
        angles: Optional explicit rotation angles; must provide
            ``2 * num_qubits * (layers + 1)`` values (an RY and an RZ per
            qubit per rotation block, with one final block after the last
            entangler).

    Returns:
        The ansatz circuit.
    """
    if num_qubits < 2:
        raise ValueError("the fully-entangled ansatz needs at least two qubits")
    if layers < 1:
        raise ValueError("need at least one ansatz layer")

    needed = 2 * num_qubits * (layers + 1)
    if angles is None:
        rng = make_rng(seed)
        angles = list(rng.uniform(0.0, 2.0 * math.pi, size=needed))
    if len(angles) != needed:
        raise ValueError(f"expected {needed} angles, got {len(angles)}")

    circuit = QuantumCircuit(num_qubits, name=f"vqe_{num_qubits}")
    angle_iter = iter(angles)

    def rotation_block() -> None:
        for qubit in range(num_qubits):
            circuit.ry(next(angle_iter), qubit)
            circuit.rz(next(angle_iter), qubit)

    rotation_block()
    for _ in range(layers):
        for a, b in full_entanglement_schedule(num_qubits):
            circuit.cx(a, b)
        rotation_block()
    return circuit


def full_entanglement_schedule(num_qubits: int) -> list:
    """Return all qubit pairs ordered as round-robin rounds.

    Every qubit pair appears exactly once.  Pairs are grouped into rounds of
    disjoint pairs (the circle method used for round-robin tournaments), so
    that CNOTs acting on independent qubits are adjacent in program order —
    the natural way a fully entangled layer is scheduled on hardware, and the
    ordering that keeps the resulting graph state temporally local.
    """
    if num_qubits < 2:
        return []
    labels = list(range(num_qubits))
    if num_qubits % 2 == 1:
        labels.append(-1)  # bye
    half = len(labels) // 2
    rounds = []
    rotating = labels[1:]
    for _ in range(len(labels) - 1):
        current = [labels[0]] + rotating
        pairs = []
        for i in range(half):
            a, b = current[i], current[-(i + 1)]
            if a != -1 and b != -1:
                pairs.append((min(a, b), max(a, b)))
        rounds.append(pairs)
        rotating = rotating[-1:] + rotating[:-1]
    schedule = []
    for round_pairs in rounds:
        schedule.extend(sorted(round_pairs))
    return schedule
