"""Benchmark quantum programs used in the paper's evaluation (Table II).

Four program families are provided, matching Section V-A of the paper:

* :func:`qaoa_maxcut_circuit` — QAOA for Max-Cut on random graphs in which
  half of all possible edges are selected at random,
* :func:`vqe_circuit` — a hardware-efficient VQE ansatz with fully entangled
  layers (every qubit pair coupled by a CNOT),
* :func:`qft_circuit` — the quantum Fourier transform,
* :func:`rca_circuit` — the Cuccaro ripple-carry adder.

The :mod:`~repro.programs.registry` module ties these builders to the sizes
used in the paper's tables and records the paper's reported characteristics
for side-by-side comparison.
"""

from repro.programs.qaoa import qaoa_maxcut_circuit, random_maxcut_graph
from repro.programs.vqe import vqe_circuit
from repro.programs.qft import qft_circuit
from repro.programs.rca import rca_circuit
from repro.programs.registry import (
    BenchmarkSpec,
    PAPER_TABLE2,
    build_benchmark,
    benchmark_names,
    paper_grid_size,
)

__all__ = [
    "qaoa_maxcut_circuit",
    "random_maxcut_graph",
    "vqe_circuit",
    "qft_circuit",
    "rca_circuit",
    "BenchmarkSpec",
    "PAPER_TABLE2",
    "build_benchmark",
    "benchmark_names",
    "paper_grid_size",
]
