"""Benchmark quantum programs: the paper's Table II families plus extensions.

The paper's evaluation (Section V-A) covers four program families:

* :func:`qaoa_maxcut_circuit` — QAOA for Max-Cut on random graphs in which
  half of all possible edges are selected at random,
* :func:`vqe_circuit` — a hardware-efficient VQE ansatz with fully entangled
  layers (every qubit pair coupled by a CNOT),
* :func:`qft_circuit` — the quantum Fourier transform,
* :func:`rca_circuit` — the Cuccaro ripple-carry adder.

Five extended families widen the workload matrix beyond the paper:

* :func:`grover_circuit` — Grover search with a multi-controlled-Z oracle
  and diffuser,
* :func:`qpe_circuit` — quantum phase estimation of a seeded phase gate,
* :func:`ghz_circuit` / :func:`graph_state_circuit` — GHZ and graph-state
  preparation,
* :func:`hidden_shift_circuit` — Clifford+T hidden shift over
  Maiorana-McFarland bent functions,
* :func:`random_ansatz_circuit` — a brickwork random ansatz on a 1D chain.

The :mod:`~repro.programs.registry` module ties these builders to benchmark
sizes and records the paper's reported characteristics for side-by-side
comparison.
"""

from repro.programs.ansatz import random_ansatz_circuit
from repro.programs.ghz import ghz_circuit, graph_state_circuit
from repro.programs.grover import grover_circuit
from repro.programs.hidden_shift import hidden_shift_circuit
from repro.programs.qaoa import qaoa_maxcut_circuit, random_maxcut_graph
from repro.programs.qft import qft_circuit
from repro.programs.qpe import qpe_circuit
from repro.programs.rca import rca_circuit
from repro.programs.registry import (
    BenchmarkSpec,
    EXTENDED_FAMILIES,
    PAPER_FAMILIES,
    PAPER_TABLE2,
    build_benchmark,
    benchmark_names,
    paper_grid_size,
)
from repro.programs.vqe import vqe_circuit

__all__ = [
    "qaoa_maxcut_circuit",
    "random_maxcut_graph",
    "vqe_circuit",
    "qft_circuit",
    "rca_circuit",
    "grover_circuit",
    "qpe_circuit",
    "ghz_circuit",
    "graph_state_circuit",
    "hidden_shift_circuit",
    "random_ansatz_circuit",
    "BenchmarkSpec",
    "PAPER_TABLE2",
    "PAPER_FAMILIES",
    "EXTENDED_FAMILIES",
    "build_benchmark",
    "benchmark_names",
    "paper_grid_size",
]
