"""GHZ and graph-state preparation benchmark circuits.

Two closely related entanglement-distribution workloads:

* :func:`ghz_circuit` — the ``n``-qubit GHZ state via a Hadamard and a CX
  chain.  The interaction graph is a path, the sparsest possible workload
  for the partitioner: an ideal best case for distributed compilation.
* :func:`graph_state_circuit` — ``|+>^n`` followed by one CZ per edge of a
  seeded random graph of bounded degree, i.e. direct preparation of a graph
  state.  Unlike the GHZ chain the entangling layer has tunable density,
  probing the partitioner between the GHZ best case and QAOA's dense cost
  layers.

The registry's ``GHZ`` family builds the chain circuit; the graph-state
generator is exposed for sweeps that want a density axis.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["ghz_circuit", "graph_state_circuit", "random_bounded_degree_edges"]


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """Build the ``n``-qubit GHZ preparation: H on qubit 0, then a CX chain."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def random_bounded_degree_edges(
    num_nodes: int, max_degree: int = 3, seed: int | None = None
) -> List[Tuple[int, int]]:
    """Return seeded random edges with every vertex degree below the bound.

    Candidate edges are visited in a seeded random order and kept greedily
    while both endpoints have spare degree, yielding a connected-ish sparse
    graph whose density is controlled by ``max_degree``.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if max_degree < 1:
        raise ValueError("max_degree must be at least 1")
    rng = make_rng(seed)
    candidates = [
        (i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)
    ]
    order = rng.permutation(len(candidates))
    degree = [0] * num_nodes
    edges: List[Tuple[int, int]] = []
    for index in order:
        a, b = candidates[index]
        if degree[a] < max_degree and degree[b] < max_degree:
            edges.append((a, b))
            degree[a] += 1
            degree[b] += 1
    return sorted(edges)


def graph_state_circuit(
    num_qubits: int,
    max_degree: int = 3,
    seed: int | None = None,
    edges: List[Tuple[int, int]] | None = None,
) -> QuantumCircuit:
    """Prepare a graph state: ``|+>^n`` plus one CZ per graph edge.

    Args:
        num_qubits: Register width.
        max_degree: Degree bound of the random graph (ignored when ``edges``
            is given).
        seed: Seed for the random graph.
        edges: Explicit edge list overriding the random construction.

    Returns:
        The circuit, with the edge list stored as the ``graph_edges``
        attribute.
    """
    if edges is None:
        edges = random_bounded_degree_edges(num_qubits, max_degree=max_degree, seed=seed)
    circuit = QuantumCircuit(num_qubits, name=f"graphstate_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for a, b in edges:
        circuit.cz(a, b)
    circuit.graph_edges = list(edges)  # type: ignore[attr-defined]
    return circuit
