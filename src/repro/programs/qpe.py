"""Quantum phase estimation (QPE) benchmark circuits.

The estimated unitary is a single-qubit phase gate ``U = PHASE(theta)`` with
a seeded random angle; its ``|1>`` eigenstate is prepared with one X gate,
so the circuit is semantically meaningful end to end: the counting register
ends in (a superposition peaked at) the binary expansion of
``theta / 2 pi``.  The structure is the textbook one — Hadamards on the
counting register, controlled ``U^{2^j}`` applications (controlled-phase
gates with doubled angles), then an inverse QFT on the counting register —
giving ``t + t(t-1)/2`` two-qubit gates for ``t`` counting qubits.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["qpe_circuit"]


def _inverse_qft(circuit: QuantumCircuit, qubits: list) -> None:
    """Append the inverse QFT (no swaps) on the listed qubits."""
    for target_index in range(len(qubits) - 1, -1, -1):
        for control_index in range(len(qubits) - 1, target_index, -1):
            angle = -math.pi / (2 ** (control_index - target_index))
            circuit.cphase(angle, qubits[control_index], qubits[target_index])
        circuit.h(qubits[target_index])


def qpe_circuit(
    num_qubits: int,
    seed: int | None = None,
    theta: float | None = None,
) -> QuantumCircuit:
    """Build a QPE circuit of total width ``num_qubits``.

    The first ``num_qubits - 1`` qubits form the counting register; the last
    qubit carries the ``|1>`` eigenstate of the estimated phase gate.

    Args:
        num_qubits: Total register width (at least 2).
        seed: Seed for the random phase when ``theta`` is omitted.
        theta: Explicit phase of the estimated unitary, in radians.

    Returns:
        The circuit, with the estimated angle stored as the ``phase_angle``
        attribute.
    """
    if num_qubits < 2:
        raise ValueError("QPE needs a counting qubit and a target qubit")
    if theta is None:
        rng = make_rng(seed)
        theta = float(rng.uniform(0.0, 2.0 * math.pi))

    counting = list(range(num_qubits - 1))
    target = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, name=f"qpe_{num_qubits}")

    circuit.x(target)  # |1> eigenstate of PHASE(theta)
    for qubit in counting:
        circuit.h(qubit)
    # Counting qubit j controls U^{2^j}: its kickback phase is the binary
    # fraction 0.m_{j+1}..m_t, exactly what the swap-free inverse QFT below
    # consumes, so qubit 0 ends up holding the most significant phase bit.
    for j, qubit in enumerate(counting):
        circuit.cphase(((2**j) * theta) % (2.0 * math.pi), qubit, target)
    _inverse_qft(circuit, counting)

    circuit.phase_angle = theta  # type: ignore[attr-defined]
    return circuit
