"""Grover-search benchmark circuits.

The oracle marks a single seeded basis state by conjugating a
multi-controlled Z with X gates on the zero bits of the marked bitstring;
the diffuser is the standard inversion about the mean (``H^n X^n MCZ X^n
H^n``).  Both the oracle and the diffuser emit one :class:`MCZ` gate over
the whole register, which the decomposition pass lowers to the J/CZ basis
through its ancilla-free Gray-code construction — so the dominant cost of a
Grover instance is two ``O(2^n)``-gate MCZ lowerings per iteration, which is
why the benchmark grids keep Grover widths moderate.

Benchmark instances default to a single Grover iteration (the convention of
circuit-benchmark suites: one iteration already exercises the full oracle +
diffuser structure; the asymptotically optimal ``~pi/4 * sqrt(2^n)`` rounds
only repeat it).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["grover_circuit", "random_marked_state"]


def random_marked_state(num_qubits: int, seed: int | None = None) -> Tuple[int, ...]:
    """Return a seeded random bitstring (qubit 0 first) to mark."""
    rng = make_rng(seed)
    return tuple(int(bit) for bit in rng.integers(0, 2, size=num_qubits))


def _oracle(circuit: QuantumCircuit, marked: Sequence[int]) -> None:
    """Phase-flip the marked basis state: X-conjugated multi-controlled Z."""
    zeros = [qubit for qubit, bit in enumerate(marked) if bit == 0]
    for qubit in zeros:
        circuit.x(qubit)
    circuit.mcz(*range(circuit.num_qubits))
    for qubit in zeros:
        circuit.x(qubit)


def _diffuser(circuit: QuantumCircuit) -> None:
    """Inversion about the mean: H^n X^n MCZ X^n H^n."""
    for qubit in range(circuit.num_qubits):
        circuit.h(qubit)
        circuit.x(qubit)
    circuit.mcz(*range(circuit.num_qubits))
    for qubit in range(circuit.num_qubits):
        circuit.x(qubit)
        circuit.h(qubit)


def grover_circuit(
    num_qubits: int,
    iterations: int = 1,
    seed: int | None = None,
    marked: Sequence[int] | None = None,
) -> QuantumCircuit:
    """Build a Grover-search circuit over ``num_qubits`` qubits.

    Args:
        num_qubits: Register width (at least 2).
        iterations: Number of (oracle, diffuser) rounds.
        seed: Seed for the random marked state when ``marked`` is omitted.
        marked: Explicit marked bitstring, one 0/1 entry per qubit.

    Returns:
        The circuit.  The marked bitstring is stored on the circuit as the
        ``marked_state`` attribute for downstream analysis and tests.
    """
    if num_qubits < 2:
        raise ValueError("Grover search needs at least two qubits")
    if iterations < 1:
        raise ValueError("need at least one Grover iteration")
    if marked is None:
        marked = random_marked_state(num_qubits, seed=seed)
    marked = tuple(int(bit) for bit in marked)
    if len(marked) != num_qubits or any(bit not in (0, 1) for bit in marked):
        raise ValueError("marked state must provide one 0/1 bit per qubit")

    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(iterations):
        _oracle(circuit, marked)
        _diffuser(circuit)
    circuit.marked_state = marked  # type: ignore[attr-defined]
    return circuit
