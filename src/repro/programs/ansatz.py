"""Hardware-efficient random ansatz benchmark circuits.

A brickwork ansatz with seeded random parameters: each layer applies an
``RY``/``RZ`` rotation pair to every qubit followed by a brickwork layer of
CZ entanglers on nearest-neighbour pairs (even pairs on even layers, odd
pairs on odd layers), and a final rotation block closes the circuit.  The
linear-chain connectivity is the deliberate counterpoint to the VQE family's
fully entangled layers: VQE stresses the partitioner with all-to-all
coupling, the random ansatz with depth on a 1D topology.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import make_rng

__all__ = ["random_ansatz_circuit", "brickwork_pairs"]


def brickwork_pairs(num_qubits: int, layer: int) -> List[Tuple[int, int]]:
    """Nearest-neighbour pairs of one brickwork layer (parity alternates)."""
    start = layer % 2
    return [(q, q + 1) for q in range(start, num_qubits - 1, 2)]


def random_ansatz_circuit(
    num_qubits: int,
    layers: int = 3,
    seed: int | None = None,
) -> QuantumCircuit:
    """Build a brickwork hardware-efficient ansatz with random angles.

    Args:
        num_qubits: Register width (at least 2).
        layers: Number of (rotation, entangler) blocks; a final rotation
            block follows the last entangler.
        seed: Seed for the rotation angles; the same seed always rebuilds
            the identical circuit.
    """
    if num_qubits < 2:
        raise ValueError("the brickwork ansatz needs at least two qubits")
    if layers < 1:
        raise ValueError("need at least one ansatz layer")
    rng = make_rng(seed)
    angles = iter(
        rng.uniform(0.0, 2.0 * math.pi, size=2 * num_qubits * (layers + 1))
    )

    circuit = QuantumCircuit(num_qubits, name=f"ansatz_{num_qubits}")

    def rotation_block() -> None:
        for qubit in range(num_qubits):
            circuit.ry(float(next(angles)), qubit)
            circuit.rz(float(next(angles)), qubit)

    rotation_block()
    for layer in range(layers):
        for a, b in brickwork_pairs(num_qubits, layer):
            circuit.cz(a, b)
        rotation_block()
    return circuit
