"""Equivalence checks used to validate decompositions and translations.

Because the J/CZ decomposition and the MBQC simulation are only defined up to
a global phase, all checks here compare states and unitaries modulo a global
phase factor.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.simulator import StatevectorSimulator
from repro.utils.rng import make_rng

__all__ = [
    "states_equivalent_up_to_phase",
    "circuits_equivalent",
    "random_product_state",
]


def states_equivalent_up_to_phase(
    state_a: np.ndarray, state_b: np.ndarray, atol: float = 1e-8
) -> bool:
    """Return True if two state vectors differ only by a global phase."""
    state_a = np.asarray(state_a, dtype=complex).ravel()
    state_b = np.asarray(state_b, dtype=complex).ravel()
    if state_a.shape != state_b.shape:
        return False
    overlap = np.vdot(state_a, state_b)
    return bool(np.isclose(abs(overlap), 1.0, atol=atol))


def random_product_state(num_qubits: int, seed: int | None = None) -> np.ndarray:
    """Return a Haar-ish random product state, used to probe equivalence."""
    rng = make_rng(seed)
    state = np.array([1.0], dtype=complex)
    for _ in range(num_qubits):
        amplitudes = rng.normal(size=2) + 1j * rng.normal(size=2)
        amplitudes = amplitudes / np.linalg.norm(amplitudes)
        state = np.kron(state, amplitudes)
    return state


def circuits_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    num_trials: int = 3,
    seed: int = 0,
    atol: float = 1e-7,
) -> bool:
    """Check that two circuits implement the same unitary up to global phase.

    Rather than building the full unitary, the check applies both circuits to
    ``num_trials`` random product states and compares the outputs.  For the
    circuit sizes used in tests this is both faster and memory-friendlier
    than constructing ``4^n`` matrix entries, and random-state agreement on a
    handful of trials pins down the unitary with overwhelming probability.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    n = circuit_a.num_qubits
    for trial in range(num_trials):
        probe = random_product_state(n, seed=seed + trial)
        sim_a = StatevectorSimulator(n)
        sim_a.set_state(probe)
        sim_a.run(circuit_a)
        sim_b = StatevectorSimulator(n)
        sim_b.set_state(probe)
        sim_b.run(circuit_b)
        if not states_equivalent_up_to_phase(sim_a.state, sim_b.state, atol=atol):
            return False
    return True
