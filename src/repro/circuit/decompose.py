"""Decomposition of circuits into the {J(alpha), CZ} basis.

The MBQC translation (Section II-A of the paper) consumes circuits expressed
in the measurement-calculus friendly basis: the single-qubit gate
``J(alpha) = H RZ(alpha)`` plus the two-qubit CZ gate.  Every gate supported
by the front end is rewritten here into that basis:

* ``H -> J(0)``
* ``RZ(t) -> J(0) J(t)``   (i.e. apply ``J(t)`` then ``J(0)``)
* ``RX(t) -> J(t) J(0)``
* arbitrary single-qubit unitaries via a ZXZ Euler decomposition, giving the
  canonical 4-J form ``U = J(0) J(a) J(b) J(c)``
* ``CX -> (H on target) CZ (H on target)``
* ``CPHASE``, ``SWAP`` and ``CCX`` via their standard CX/RZ decompositions
* ``MCZ`` (multi-controlled Z, any arity) via an ancilla-free Gray-code
  phase-polynomial construction.

The output is a :class:`JCZProgram`, a flat list of :class:`JGate` and
:class:`CZGate` operations, which is exactly what the MBQC translation in
:mod:`repro.mbqc.translate` turns into a measurement pattern.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, gate_matrix
from repro.utils.errors import CompilationError

__all__ = ["JGate", "CZGate", "JCZProgram", "decompose_to_jcz", "euler_zxz"]

_ANGLE_EPS = 1e-12


@dataclass(frozen=True)
class JGate:
    """A ``J(angle) = H RZ(angle)`` gate on a single qubit."""

    qubit: int
    angle: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"J({self.angle:.4g}) q[{self.qubit}]"


@dataclass(frozen=True)
class CZGate:
    """A CZ gate between two qubits."""

    qubit_a: int
    qubit_b: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CZ q[{self.qubit_a},{self.qubit_b}]"


JCZOperation = Union[JGate, CZGate]


@dataclass
class JCZProgram:
    """A circuit expressed purely in the {J, CZ} basis.

    Attributes:
        num_qubits: Width of the register.
        operations: Flat, ordered list of J and CZ operations.
        name: Carried over from the source circuit for reporting.
    """

    num_qubits: int
    operations: List[JCZOperation]
    name: str = "jcz"

    @property
    def num_j_gates(self) -> int:
        """Number of J gates (each becomes one new pattern node)."""
        return sum(1 for op in self.operations if isinstance(op, JGate))

    @property
    def num_cz_gates(self) -> int:
        """Number of CZ gates (each becomes one graph-state edge)."""
        return sum(1 for op in self.operations if isinstance(op, CZGate))

    def to_circuit(self) -> QuantumCircuit:
        """Re-materialise the program as a :class:`QuantumCircuit`.

        Useful for validating the decomposition with the statevector
        simulator.
        """
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        for op in self.operations:
            if isinstance(op, JGate):
                circuit.j(op.angle, op.qubit)
            else:
                circuit.cz(op.qubit_a, op.qubit_b)
        return circuit


def _normalise_angle(angle: float) -> float:
    """Map an angle to the interval (-pi, pi] and snap tiny values to zero."""
    wrapped = math.remainder(angle, 2.0 * math.pi)
    if abs(wrapped) < _ANGLE_EPS:
        return 0.0
    if abs(wrapped - math.pi) < _ANGLE_EPS or abs(wrapped + math.pi) < _ANGLE_EPS:
        return math.pi
    return wrapped


def euler_zxz(unitary: np.ndarray) -> Tuple[float, float, float]:
    """Return ``(alpha, beta, gamma)`` with ``U ~ RZ(alpha) RX(beta) RZ(gamma)``.

    The equality holds up to a global phase.  The decomposition is computed
    via the standard ZYZ Euler angles and shifted to the ZXZ convention using
    ``RY(b) = RZ(pi/2) RX(b) RZ(-pi/2)``.
    """
    if unitary.shape != (2, 2):
        raise ValueError("euler_zxz expects a 2x2 matrix")
    det = unitary[0, 0] * unitary[1, 1] - unitary[0, 1] * unitary[1, 0]
    if abs(det) < 1e-12:
        raise ValueError("matrix is singular, not a unitary")
    special = unitary / cmath.sqrt(det)

    v00, v10, v11 = special[0, 0], special[1, 0], special[1, 1]
    beta = 2.0 * math.atan2(abs(v10), abs(v00))
    if abs(v00) > 1e-9 and abs(v10) > 1e-9:
        alpha_zyz = cmath.phase(v11) + cmath.phase(v10)
        gamma_zyz = cmath.phase(v11) - cmath.phase(v10)
    elif abs(v10) <= 1e-9:
        # beta ~ 0: only alpha + gamma matters.
        alpha_zyz = 2.0 * cmath.phase(v11)
        gamma_zyz = 0.0
    else:
        # beta ~ pi: only alpha - gamma matters.
        alpha_zyz = 2.0 * cmath.phase(v10)
        gamma_zyz = 0.0

    alpha = _normalise_angle(alpha_zyz + math.pi / 2.0)
    gamma = _normalise_angle(gamma_zyz - math.pi / 2.0)
    return alpha, _normalise_angle(beta), gamma


def _single_qubit_jcz(gate: Gate) -> List[JCZOperation]:
    """Rewrite a single-qubit gate as a (shortest known) J chain."""
    qubit = gate.qubits[0]
    name = gate.name.upper()
    if name == "I":
        return []
    if name == "J":
        return [JGate(qubit, _normalise_angle(gate.params[0]))]
    if name == "H":
        return [JGate(qubit, 0.0)]
    z_like = {
        "Z": math.pi,
        "S": math.pi / 2.0,
        "SDG": -math.pi / 2.0,
        "T": math.pi / 4.0,
        "TDG": -math.pi / 4.0,
    }
    if name in z_like:
        angle = z_like[name]
        return [JGate(qubit, _normalise_angle(angle)), JGate(qubit, 0.0)]
    if name in ("RZ", "PHASE"):
        angle = _normalise_angle(gate.params[0])
        if angle == 0.0:
            return []
        return [JGate(qubit, angle), JGate(qubit, 0.0)]
    if name == "X":
        return [JGate(qubit, 0.0), JGate(qubit, math.pi)]
    if name == "RX":
        angle = _normalise_angle(gate.params[0])
        if angle == 0.0:
            return []
        return [JGate(qubit, 0.0), JGate(qubit, angle)]
    # General case (Y, RY, anything else): 4-J Euler form.
    alpha, beta, gamma = euler_zxz(gate_matrix(gate))
    return [
        JGate(qubit, gamma),
        JGate(qubit, beta),
        JGate(qubit, alpha),
        JGate(qubit, 0.0),
    ]


def _cx_jcz(control: int, target: int) -> List[JCZOperation]:
    """CX = (H target) CZ (H target) in the J/CZ basis."""
    return [JGate(target, 0.0), CZGate(control, target), JGate(target, 0.0)]


def _rz_jcz(qubit: int, angle: float) -> List[JCZOperation]:
    angle = _normalise_angle(angle)
    if angle == 0.0:
        return []
    return [JGate(qubit, angle), JGate(qubit, 0.0)]


def _cphase_jcz(control: int, target: int, theta: float) -> List[JCZOperation]:
    """CPHASE(theta) via RZ / CX conjugation (standard textbook form)."""
    ops: List[JCZOperation] = []
    ops.extend(_rz_jcz(control, theta / 2.0))
    ops.extend(_rz_jcz(target, theta / 2.0))
    ops.extend(_cx_jcz(control, target))
    ops.extend(_rz_jcz(target, -theta / 2.0))
    ops.extend(_cx_jcz(control, target))
    return ops


def _swap_jcz(a: int, b: int) -> List[JCZOperation]:
    """SWAP as three alternating CNOTs."""
    ops: List[JCZOperation] = []
    ops.extend(_cx_jcz(a, b))
    ops.extend(_cx_jcz(b, a))
    ops.extend(_cx_jcz(a, b))
    return ops


def _mcz_gates(qubits: Tuple[int, ...]) -> List[Gate]:
    """Ancilla-free phase-polynomial decomposition of a multi-controlled Z.

    MCZ on ``k`` qubits is ``exp(i pi P)`` with ``P`` the projector onto
    ``|1...1>``.  Expanding ``P = prod_i (I - Z_i) / 2`` yields one Z-parity
    rotation of angle ``+-pi / 2^{k-1}`` per non-empty qubit subset (sign
    alternating with subset parity).  Subsets are enumerated per *anchor*
    qubit in Gray-code order over the preceding qubits, so consecutive
    rotations differ by a single CX: ``2^k - 1`` RZ and about ``2^k`` CX in
    total, exact and without ancilla qubits.  Grover's oracle and diffuser
    compile through this lowering into the existing J/CZ translation.
    """
    k = len(qubits)
    if k == 2:
        return [Gate("CZ", qubits)]
    base = math.pi / 2 ** (k - 1)
    ops: List[Gate] = []
    for anchor_index in range(k):
        anchor = qubits[anchor_index]
        controls = qubits[:anchor_index]
        previous_gray = 0
        for i in range(2**anchor_index):
            gray = i ^ (i >> 1)
            changed = gray ^ previous_gray
            if changed:
                ops.append(Gate("CX", (controls[changed.bit_length() - 1], anchor)))
            previous_gray = gray
            subset_size = bin(gray).count("1") + 1
            ops.append(Gate("RZ", (anchor,), (base if subset_size % 2 else -base,)))
        # Uncompute the parity the final Gray subset left on the anchor.
        for bit_index in range(anchor_index):
            if (previous_gray >> bit_index) & 1:
                ops.append(Gate("CX", (controls[bit_index], anchor)))
    return ops


def _ccx_gates(a: int, b: int, c: int) -> List[Gate]:
    """The standard 6-CNOT, 7-T Toffoli decomposition (Nielsen & Chuang)."""
    return [
        Gate("H", (c,)),
        Gate("CX", (b, c)),
        Gate("TDG", (c,)),
        Gate("CX", (a, c)),
        Gate("T", (c,)),
        Gate("CX", (b, c)),
        Gate("TDG", (c,)),
        Gate("CX", (a, c)),
        Gate("T", (b,)),
        Gate("T", (c,)),
        Gate("H", (c,)),
        Gate("CX", (a, b)),
        Gate("T", (a,)),
        Gate("TDG", (b,)),
        Gate("CX", (a, b)),
    ]


def decompose_to_jcz(circuit: QuantumCircuit) -> JCZProgram:
    """Rewrite ``circuit`` into the {J, CZ} basis.

    Raises:
        CompilationError: if the circuit contains a gate the rewriter does
            not know how to express in the J/CZ basis.
    """
    operations: List[JCZOperation] = []
    for gate in circuit.gates:
        operations.extend(_gate_to_jcz(gate))
    return JCZProgram(circuit.num_qubits, operations, name=circuit.name)


def _gate_to_jcz(gate: Gate) -> List[JCZOperation]:
    name = gate.name.upper()
    if gate.num_qubits == 1:
        return _single_qubit_jcz(gate)
    if name == "CZ":
        return [CZGate(gate.qubits[0], gate.qubits[1])]
    if name == "CX":
        return _cx_jcz(gate.qubits[0], gate.qubits[1])
    if name == "CPHASE":
        return _cphase_jcz(gate.qubits[0], gate.qubits[1], gate.params[0])
    if name == "SWAP":
        return _swap_jcz(gate.qubits[0], gate.qubits[1])
    if name == "CCX":
        ops: List[JCZOperation] = []
        for sub_gate in _ccx_gates(*gate.qubits):
            ops.extend(_gate_to_jcz(sub_gate))
        return ops
    if name == "MCZ":
        mcz_ops: List[JCZOperation] = []
        for sub_gate in _mcz_gates(gate.qubits):
            mcz_ops.extend(_gate_to_jcz(sub_gate))
        return mcz_ops
    raise CompilationError(f"cannot decompose gate {gate.name!r} to the J/CZ basis")
