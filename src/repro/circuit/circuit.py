"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuit.gates.Gate` objects on
a fixed register of qubits.  The builder methods mirror the gate set used by
the paper's benchmark programs (QAOA, VQE, QFT, RCA) and keep the IR easy to
construct by hand in tests and examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

from repro.circuit.gates import Gate, validate_gate

__all__ = ["QuantumCircuit"]


@dataclass
class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Attributes:
        num_qubits: Size of the qubit register (qubits are ``0..n-1``).
        name: Optional human-readable name used in benchmark reports.
        gates: The gate list, in program order.
    """

    num_qubits: int
    name: str = "circuit"
    gates: List[Gate] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")

    # ------------------------------------------------------------------ #
    # Core mutation API
    # ------------------------------------------------------------------ #

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Validate ``gate`` against the register and append it."""
        validate_gate(gate)
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name} touches qubit {qubit}, register has "
                    f"{self.num_qubits} qubits"
                )
        self.gates.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append a gate by name; convenience wrapper over :meth:`append`."""
        return self.append(Gate(name.upper(), tuple(qubits), tuple(float(p) for p in params)))

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append several gates in order."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all gates of ``other`` (registers must match in size)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose circuits of different widths")
        return self.extend(other.gates)

    def content_hash(self) -> str:
        """Stable content hash (register, name, gate list).

        Used as the artifact-cache key root by :mod:`repro.pipeline`: two
        circuits with identical structure hash identically across processes
        and interpreter runs.
        """
        from repro.pipeline.hashing import circuit_hash  # deferred: layering

        return circuit_hash(self)

    # ------------------------------------------------------------------ #
    # Named gate helpers
    # ------------------------------------------------------------------ #

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.add("H", [q])

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.add("X", [q])

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.add("Y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.add("Z", [q])

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.add("S", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        """Inverse phase gate."""
        return self.add("SDG", [q])

    def t(self, q: int) -> "QuantumCircuit":
        """T gate."""
        return self.add("T", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self.add("TDG", [q])

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        """Rotation about X."""
        return self.add("RX", [q], [theta])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        """Rotation about Y."""
        return self.add("RY", [q], [theta])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        """Rotation about Z."""
        return self.add("RZ", [q], [theta])

    def phase(self, theta: float, q: int) -> "QuantumCircuit":
        """Diagonal phase gate diag(1, e^{i theta})."""
        return self.add("PHASE", [q], [theta])

    def j(self, theta: float, q: int) -> "QuantumCircuit":
        """The J(theta) = H RZ(theta) gate from the MBQC basis."""
        return self.add("J", [q], [theta])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.add("CZ", [a, b])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT."""
        return self.add("CX", [control, target])

    def cphase(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase gate, used by QFT."""
        return self.add("CPHASE", [control, target], [theta])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP."""
        return self.add("SWAP", [a, b])

    def ccx(self, a: int, b: int, target: int) -> "QuantumCircuit":
        """Toffoli."""
        return self.add("CCX", [a, b, target])

    def mcz(self, *qubits: int) -> "QuantumCircuit":
        """Multi-controlled Z over ``qubits`` (symmetric; needs >= 2 qubits)."""
        return self.add("MCZ", qubits)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    @property
    def num_gates(self) -> int:
        """Total gate count."""
        return len(self.gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of gates acting on two or more qubits.

        This is the "#2Q gates" column of Table II (CCX counts once here; the
        decomposition pass expands it before the MBQC translation).
        """
        return sum(1 for gate in self.gates if gate.num_qubits >= 2)

    def count_gates(self) -> dict:
        """Return a histogram ``{gate name: count}``."""
        histogram: dict = {}
        for gate in self.gates:
            histogram[gate.name] = histogram.get(gate.name, 0) + 1
        return histogram

    def depth(self) -> int:
        """Return the circuit depth (longest chain of dependent gates)."""
        frontier = [0] * self.num_qubits
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def interaction_graph(self) -> List[Tuple[int, int]]:
        """Return the list of qubit pairs coupled by at least one multi-qubit gate."""
        pairs = set()
        for gate in self.gates:
            if gate.num_qubits >= 2:
                qs = sorted(gate.qubits)
                pairs.update(itertools.combinations(qs, 2))
        return sorted(pairs)

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gate order reversed, angles negated)."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dag")
        adjoint_name = {"S": "SDG", "SDG": "S", "T": "TDG", "TDG": "T"}
        for gate in reversed(self.gates):
            name = adjoint_name.get(gate.name, gate.name)
            params = tuple(-p for p in gate.params)
            inv.append(Gate(name, gate.qubits, params))
        return inv

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self.gates)}, depth={self.depth()})"
        )
