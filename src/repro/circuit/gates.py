"""Gate definitions for the circuit front end.

Gates are lightweight, immutable records: a name, the qubits they act on, and
optional real parameters (rotation angles in radians).  The unitary matrices
live in :data:`GATE_LIBRARY` and are only materialised by the statevector
simulator; the compiler stack never touches matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = ["Gate", "GateSpec", "GATE_LIBRARY", "VARIABLE_ARITY", "is_supported_gate"]


@dataclass(frozen=True)
class Gate:
    """A single gate instance inside a circuit.

    Attributes:
        name: Upper-case gate mnemonic, e.g. ``"CZ"`` or ``"RZ"``.
        qubits: Qubit indices the gate acts on, in gate order (control first
            for controlled gates).
        params: Real parameters; rotation gates carry one angle in radians.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} repeats a qubit: {self.qubits}")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate touches."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for gates acting on exactly two qubits."""
        return len(self.qubits) == 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{p:.4g}" for p in self.params)
        args = ", ".join(str(q) for q in self.qubits)
        if params:
            return f"{self.name}({params}) q[{args}]"
        return f"{self.name} q[{args}]"


#: Sentinel arity for gates that accept any number of qubits (>= 2).
VARIABLE_ARITY = -1


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Gate mnemonic.
        num_qubits: Arity of the gate, or :data:`VARIABLE_ARITY` for gates
            like MCZ that accept any register subset of two or more qubits.
        num_params: Number of real parameters.
        matrix_fn: Callable returning the unitary for given parameters.
            Variable-arity gates receive the qubit count as first argument.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2.0), 0.0], [0.0, np.exp(1j * theta / 2.0)]],
        dtype=complex,
    )


def _phase(theta: float) -> np.ndarray:
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * theta)]], dtype=complex)


_H = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=complex) / math.sqrt(2.0)
_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_Y = np.array([[0.0, -1j], [1j, 0.0]], dtype=complex)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
_I = np.eye(2, dtype=complex)

_CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
_CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)
_SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
_CCX = np.eye(8, dtype=complex)
_CCX[6, 6] = 0.0
_CCX[7, 7] = 0.0
_CCX[6, 7] = 1.0
_CCX[7, 6] = 1.0


def _j_gate(theta: float) -> np.ndarray:
    """The J(theta) = H RZ(theta) gate from the measurement-calculus basis."""
    return _H @ _rz(theta)


def _mcz(num_qubits: int) -> np.ndarray:
    """Multi-controlled Z: -1 phase on the all-ones basis state."""
    diagonal = np.ones(2**num_qubits, dtype=complex)
    diagonal[-1] = -1.0
    return np.diag(diagonal)


GATE_LIBRARY: Dict[str, GateSpec] = {
    "I": GateSpec("I", 1, 0, lambda: _I),
    "H": GateSpec("H", 1, 0, lambda: _H),
    "X": GateSpec("X", 1, 0, lambda: _X),
    "Y": GateSpec("Y", 1, 0, lambda: _Y),
    "Z": GateSpec("Z", 1, 0, lambda: _Z),
    "S": GateSpec("S", 1, 0, lambda: _phase(math.pi / 2.0)),
    "SDG": GateSpec("SDG", 1, 0, lambda: _phase(-math.pi / 2.0)),
    "T": GateSpec("T", 1, 0, lambda: _phase(math.pi / 4.0)),
    "TDG": GateSpec("TDG", 1, 0, lambda: _phase(-math.pi / 4.0)),
    "RX": GateSpec("RX", 1, 1, _rx),
    "RY": GateSpec("RY", 1, 1, _ry),
    "RZ": GateSpec("RZ", 1, 1, _rz),
    "PHASE": GateSpec("PHASE", 1, 1, _phase),
    "J": GateSpec("J", 1, 1, _j_gate),
    "CZ": GateSpec("CZ", 2, 0, lambda: _CZ),
    "CX": GateSpec("CX", 2, 0, lambda: _CX),
    "CPHASE": GateSpec(
        "CPHASE",
        2,
        1,
        lambda theta: np.diag([1.0, 1.0, 1.0, np.exp(1j * theta)]).astype(complex),
    ),
    "SWAP": GateSpec("SWAP", 2, 0, lambda: _SWAP),
    "CCX": GateSpec("CCX", 3, 0, lambda: _CCX),
    "MCZ": GateSpec("MCZ", VARIABLE_ARITY, 0, _mcz),
}


def is_supported_gate(name: str) -> bool:
    """Return True if ``name`` is a gate the front end understands."""
    return name.upper() in GATE_LIBRARY


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of ``gate`` (little space, simulator only)."""
    spec = GATE_LIBRARY.get(gate.name.upper())
    if spec is None:
        raise KeyError(f"unknown gate {gate.name!r}")
    if len(gate.params) != spec.num_params:
        raise ValueError(
            f"gate {gate.name} expects {spec.num_params} parameters, got {len(gate.params)}"
        )
    if spec.num_qubits == VARIABLE_ARITY:
        return spec.matrix_fn(gate.num_qubits, *gate.params)
    return spec.matrix_fn(*gate.params)


def validate_gate(gate: Gate) -> None:
    """Raise if ``gate`` does not match its spec (unknown name, wrong arity)."""
    spec = GATE_LIBRARY.get(gate.name.upper())
    if spec is None:
        raise KeyError(f"unknown gate {gate.name!r}")
    if spec.num_qubits == VARIABLE_ARITY:
        if gate.num_qubits < 2:
            raise ValueError(
                f"gate {gate.name} needs at least 2 qubits, got {gate.num_qubits}"
            )
    elif gate.num_qubits != spec.num_qubits:
        raise ValueError(
            f"gate {gate.name} acts on {spec.num_qubits} qubits, got {gate.num_qubits}"
        )
    if len(gate.params) != spec.num_params:
        raise ValueError(
            f"gate {gate.name} expects {spec.num_params} parameters, got {len(gate.params)}"
        )
