"""Peephole circuit optimisation.

The MBQC translation creates one pattern node per J gate, so every gate the
front end can remove before translation is one fewer photon the compiler has
to place and route.  This module implements the standard peephole passes
that pay off for the paper's benchmark families:

* cancellation of adjacent self-inverse gates (H-H, X-X, CX-CX, CZ-CZ, ...),
* cancellation of adjacent inverse pairs (S-SDG, T-TDG),
* merging of consecutive rotations about the same axis on the same qubit
  (``RZ(a) RZ(b) -> RZ(a+b)``), dropping rotations whose angle collapses to
  zero.

The passes preserve the circuit unitary exactly (they only use algebraic
identities), which the test suite verifies with the statevector simulator.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate

__all__ = ["optimize_circuit", "cancel_adjacent_inverses", "merge_rotations"]

_SELF_INVERSE = {"H", "X", "Y", "Z", "CX", "CZ", "SWAP", "CCX", "MCZ"}
#: Gates invariant under any permutation of their qubits: CZ(a,b) == CZ(b,a).
_FULLY_SYMMETRIC = {"CZ", "SWAP", "MCZ"}
_INVERSE_PAIRS = {("S", "SDG"), ("SDG", "S"), ("T", "TDG"), ("TDG", "T")}
_MERGEABLE_ROTATIONS = {"RZ", "RX", "RY", "PHASE"}
_ANGLE_EPS = 1e-12


def _gates_commute_trivially(first: Gate, second: Gate) -> bool:
    """True when the two gates act on disjoint qubits (and hence commute)."""
    return not set(first.qubits) & set(second.qubits)


def _same_operands(first: Gate, second: Gate) -> bool:
    """True when both gates address the same operands, up to gate symmetry."""
    if first.qubits == second.qubits:
        return True
    if first.name in _FULLY_SYMMETRIC:
        return set(first.qubits) == set(second.qubits)
    if first.name == "CCX":
        # The two controls commute; the target does not.
        return (
            first.qubits[2] == second.qubits[2]
            and set(first.qubits[:2]) == set(second.qubits[:2])
        )
    return False


def _is_cancelling_pair(first: Gate, second: Gate) -> bool:
    if first.name in _SELF_INVERSE and first.name == second.name and not first.params:
        return _same_operands(first, second)
    if (first.name, second.name) in _INVERSE_PAIRS:
        return first.qubits == second.qubits
    return False


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent gate pairs that multiply to the identity.

    "Adjacent" is understood up to commuting past gates on disjoint qubits,
    which catches the cancellations produced by the CX/CCX decompositions of
    the benchmark generators.  Symmetric gates (CZ, SWAP, MCZ; the control
    pair of CCX) cancel regardless of operand order.

    After a cancellation the scan resumes at the nearest earlier gates that
    could have been blocked by the removed pair, instead of restarting from
    index 0: a removal at position ``i`` can only unblock, for each qubit of
    the removed gate, the closest preceding gate on that qubit (anything
    further back was blocked earlier in the circuit).  This keeps large
    benchmark circuits (QAOA-196 has thousands of gates) out of the
    O(n^3) restart-from-zero regime of the previous implementation.
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    index = 0
    while index < len(gates):
        gate = gates[index]
        if gate is None:
            index += 1
            continue
        cancelled = False
        # Look forward for a partner, stopping at the first gate that
        # shares a qubit with this one.
        for later in range(index + 1, len(gates)):
            other = gates[later]
            if other is None:
                continue
            if _is_cancelling_pair(gate, other):
                gates[index] = None
                gates[later] = None
                # Resume at the earliest gate whose forward scan may have
                # stopped at the removed pair: for each removed qubit, the
                # nearest preceding gate touching it.
                resume = index
                remaining = set(gate.qubits)
                position = index - 1
                while position >= 0 and remaining:
                    earlier = gates[position]
                    if earlier is not None and set(earlier.qubits) & remaining:
                        resume = position
                        remaining -= set(earlier.qubits)
                    position -= 1
                index = resume
                cancelled = True
                break
            if not _gates_commute_trivially(gate, other):
                break
        if not cancelled:
            index += 1
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in gates:
        if gate is not None:
            result.append(gate)
    return result


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge consecutive same-axis rotations on the same qubit."""
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    pending: List[Optional[Gate]] = []

    def flush(gate: Optional[Gate]) -> None:
        if gate is not None and abs(math.remainder(sum(gate.params), 2 * math.pi)) > _ANGLE_EPS:
            result.append(gate)

    last_rotation: dict = {}
    for gate in circuit.gates:
        if gate.name in _MERGEABLE_ROTATIONS and gate.num_qubits == 1:
            qubit = gate.qubits[0]
            previous = last_rotation.get(qubit)
            if previous is not None and previous.name == gate.name:
                merged_angle = previous.params[0] + gate.params[0]
                last_rotation[qubit] = Gate(gate.name, gate.qubits, (merged_angle,))
                continue
            if previous is not None:
                flush(previous)
            last_rotation[qubit] = gate
        else:
            for qubit in gate.qubits:
                if qubit in last_rotation:
                    flush(last_rotation.pop(qubit))
            result.append(gate)
    for qubit in sorted(last_rotation):
        flush(last_rotation[qubit])
    return result


def optimize_circuit(circuit: QuantumCircuit, max_passes: int = 4) -> QuantumCircuit:
    """Run the peephole passes to a fixed point (bounded by ``max_passes``)."""
    current = circuit
    for _ in range(max_passes):
        optimised = merge_rotations(cancel_adjacent_inverses(current))
        if [g for g in optimised.gates] == [g for g in current.gates]:
            return optimised
        current = optimised
    return current
