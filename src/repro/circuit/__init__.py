"""Gate-level quantum circuit front end.

This subpackage is the substrate the benchmark programs are written in.  It
provides a minimal but complete circuit IR (:class:`QuantumCircuit`), the
standard gate set used by the paper's benchmarks (H, X, Y, Z, S, T, RX, RY,
RZ, CZ, CNOT, SWAP, CCX/Toffoli), a decomposition pass into the
{J(alpha), CZ} basis consumed by the MBQC translation, and a dense
statevector simulator used to validate both the decomposition and the MBQC
translation on small instances.
"""

from repro.circuit.gates import Gate, GateSpec, GATE_LIBRARY, is_supported_gate
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_to_jcz, JGate, CZGate, JCZProgram
from repro.circuit.simulator import StatevectorSimulator, simulate_circuit
from repro.circuit.equivalence import (
    circuits_equivalent,
    states_equivalent_up_to_phase,
)
from repro.circuit.optimize import optimize_circuit

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_LIBRARY",
    "is_supported_gate",
    "QuantumCircuit",
    "decompose_to_jcz",
    "JGate",
    "CZGate",
    "JCZProgram",
    "StatevectorSimulator",
    "simulate_circuit",
    "circuits_equivalent",
    "states_equivalent_up_to_phase",
    "optimize_circuit",
]
