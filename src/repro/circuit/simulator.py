"""Dense statevector simulator for the circuit front end.

The simulator exists to *validate* the rest of the stack, not to be fast: the
decomposition pass and the MBQC translation are checked against it on small
instances (up to ~12 qubits) in the test suite.  Qubit 0 is the most
significant bit of the computational-basis index, matching the usual
textbook convention ``|q0 q1 ... q_{n-1}>``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, gate_matrix
from repro.utils.rng import make_rng

__all__ = ["StatevectorSimulator", "simulate_circuit"]


class StatevectorSimulator:
    """Simulate circuits on a dense statevector.

    Args:
        num_qubits: Register width.  Memory is ``2**num_qubits`` complex
            amplitudes, so keep this below ~20 for tests.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if num_qubits > 24:
            raise ValueError("statevector simulator limited to 24 qubits")
        self.num_qubits = num_qubits
        self._state = np.zeros(2**num_qubits, dtype=complex)
        self._state[0] = 1.0

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> np.ndarray:
        """Return a copy of the current statevector."""
        return self._state.copy()

    def set_state(self, state: np.ndarray) -> None:
        """Overwrite the statevector (must be normalised and of right size)."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2**self.num_qubits,):
            raise ValueError("state has the wrong dimension")
        norm = np.linalg.norm(state)
        if not np.isclose(norm, 1.0, atol=1e-9):
            raise ValueError("state is not normalised")
        self._state = state.copy()

    def probabilities(self) -> np.ndarray:
        """Return the Born-rule probability of each computational basis state."""
        return np.abs(self._state) ** 2

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #

    def apply_gate(self, gate: Gate) -> None:
        """Apply a single gate to the statevector."""
        matrix = gate_matrix(gate)
        self.apply_matrix(matrix, gate.qubits)

    def apply_matrix(self, matrix: np.ndarray, qubits: Iterable[int]) -> None:
        """Apply an arbitrary ``2^k x 2^k`` matrix to the listed qubits."""
        targets = list(qubits)
        k = len(targets)
        if matrix.shape != (2**k, 2**k):
            raise ValueError("matrix size does not match number of target qubits")
        n = self.num_qubits
        # Reshape into a rank-n tensor with one axis per qubit, move the
        # target axes to the front, contract, and move them back.
        tensor = self._state.reshape([2] * n)
        tensor = np.moveaxis(tensor, targets, range(k))
        tensor = tensor.reshape(2**k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape([2] * k + [2] * (n - k))
        tensor = np.moveaxis(tensor, range(k), targets)
        self._state = tensor.reshape(2**n)

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Apply every gate of ``circuit`` and return the final statevector."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width does not match simulator width")
        for gate in circuit.gates:
            self.apply_gate(gate)
        return self.state

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def measure_all(
        self, shots: int = 1024, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sample ``shots`` computational-basis outcomes.

        Returns a histogram mapping bitstrings (qubit 0 leftmost) to counts.
        """
        rng = make_rng(seed)
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        histogram: Dict[str, int] = {}
        for outcome in outcomes:
            bits = format(int(outcome), f"0{self.num_qubits}b")
            histogram[bits] = histogram.get(bits, 0) + 1
        return histogram

    def expectation_z(self, qubit: int) -> float:
        """Return the expectation value of Pauli-Z on ``qubit``."""
        probs = self.probabilities()
        n = self.num_qubits
        total = 0.0
        for index, p in enumerate(probs):
            bit = (index >> (n - 1 - qubit)) & 1
            total += p if bit == 0 else -p
        return float(total)


def simulate_circuit(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience wrapper: run ``circuit`` from ``|0...0>`` and return the state."""
    simulator = StatevectorSimulator(circuit.num_qubits)
    return simulator.run(circuit)
