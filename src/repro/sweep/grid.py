"""Declarative parameter grids for experiment sweeps.

A sweep is described by a :class:`ParameterGrid`: a task name, a set of
*axes* (parameter name → sequence of values, expanded as a cartesian
product), and *fixed* parameter overrides shared by every point.  Expansion
yields hashable :class:`SweepPoint` instances whose :meth:`SweepPoint.cache_key`
is stable across processes and interpreter runs, so an on-disk result store
can skip points that already completed.

The special axis name ``"instance"`` takes ``(program, num_qubits)`` pairs
and varies both fields together — the paper's benchmark list is a curated
set of pairs, not a product of programs and sizes.  Axis declaration order
controls loop nesting: the last axis varies fastest, exactly like nested
``for`` loops written in the same order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["SweepPoint", "ParameterGrid"]

#: Default K_max, kept in sync with ``repro.hardware.qpu.DEFAULT_CONNECTION_CAPACITY``
#: (not imported so this module stays dependency-free and cheap to unpickle).
_DEFAULT_K_MAX = 4


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified experiment in a sweep.

    Attributes:
        task: Name of the task function in :data:`repro.sweep.tasks.TASK_REGISTRY`
            that evaluates this point.
        program / num_qubits: Benchmark instance.
        num_qpus: QPU count for the distributed compiler.
        rsg_type: Resource-state shape name (``"5-star"`` etc.); stored as a
            string so points serialise to JSON without custom hooks.
        k_max: Connection capacity of the interconnect layer.
        alpha_max: Maximum imbalance factor for adaptive partitioning.
        use_bdir: Whether BDIR refinement runs.
        baseline: Monolithic baseline for comparison tasks.
        seed: Master seed of every stochastic compiler component.
        circuit_seed: Seed for benchmark-circuit construction (kept separate
            from ``seed`` so circuits stay fixed while compiler seeds vary).
        extra: Sorted ``(name, value)`` pairs for task-specific parameters
            that have no dedicated field.
    """

    task: str
    program: str = "QFT"
    num_qubits: int = 16
    num_qpus: int = 4
    rsg_type: str = "5-star"
    k_max: int = _DEFAULT_K_MAX
    alpha_max: float = 1.5
    use_bdir: bool = True
    baseline: str = "oneq"
    seed: int = 0
    circuit_seed: int = 2026
    extra: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        """Paper-style instance label, e.g. ``"QFT-16"``."""
        return f"{self.program}-{self.num_qubits}"

    def option(self, name: str, default: object = None) -> object:
        """Look up a task-specific parameter from :attr:`extra`."""
        for key, value in self.extra:
            if key == name:
                return value
        return default

    def params(self) -> Dict[str, object]:
        """Flat, JSON-serialisable view of every parameter (extras inlined)."""
        out: Dict[str, object] = {}
        for spec in fields(self):
            if spec.name == "extra":
                continue
            out[spec.name] = getattr(self, spec.name)
        for key, value in self.extra:
            out[key] = value
        return out

    def cache_key(self) -> str:
        """Stable content hash identifying this point across runs/processes."""
        canonical = json.dumps(self.params(), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "SweepPoint":
        """Rebuild a point from :meth:`params` output (e.g. a store row)."""
        known = {spec.name for spec in fields(cls)} - {"extra"}
        kwargs = {k: v for k, v in params.items() if k in known}
        extras = tuple(sorted((k, v) for k, v in params.items() if k not in known))
        return cls(extra=extras, **kwargs)


# Field names assignable directly on SweepPoint; anything else becomes extra.
_POINT_FIELDS = frozenset(spec.name for spec in fields(SweepPoint)) - {"extra"}


@dataclass(frozen=True)
class ParameterGrid:
    """A declarative sweep: ``task`` × product of ``axes``, plus ``fixed``.

    Args:
        task: Task-registry name every expanded point runs.
        axes: Ordered mapping of parameter name → candidate values.  The
            last axis varies fastest.  The name ``"instance"`` assigns
            ``(program, num_qubits)`` pairs.
        fixed: Parameter overrides applied to every point.
    """

    task: str
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    fixed: Tuple[Tuple[str, object], ...] = ()

    def __init__(
        self,
        task: str,
        axes: Optional[Mapping[str, Sequence[object]]] = None,
        fixed: Optional[Mapping[str, object]] = None,
    ) -> None:
        object.__setattr__(self, "task", task)
        object.__setattr__(
            self,
            "axes",
            tuple((name, tuple(values)) for name, values in (axes or {}).items()),
        )
        object.__setattr__(self, "fixed", tuple((fixed or {}).items()))

    def __len__(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.expand())

    def expand(self) -> List[SweepPoint]:
        """Expand the grid into concrete points, in nested-loop order."""
        assignments: Dict[str, object] = dict(self.fixed)
        axis_names = [name for name, _ in self.axes]
        axis_values = [values for _, values in self.axes]
        points: List[SweepPoint] = []
        for combo in itertools.product(*axis_values):
            merged = dict(assignments)
            merged.update(zip(axis_names, combo))
            points.append(self._make_point(merged))
        return points

    def _make_point(self, assignment: Dict[str, object]) -> SweepPoint:
        kwargs: Dict[str, object] = {}
        extras: Dict[str, object] = {}
        for name, value in assignment.items():
            if name == "instance":
                kwargs["program"], kwargs["num_qubits"] = value
            elif name in _POINT_FIELDS:
                kwargs[name] = value
            else:
                extras[name] = value
        kwargs.pop("task", None)
        return SweepPoint(
            task=self.task, extra=tuple(sorted(extras.items())), **kwargs
        )

    def with_fixed(self, **overrides: object) -> "ParameterGrid":
        """Return a copy with additional fixed parameter overrides."""
        merged = dict(self.fixed)
        merged.update(overrides)
        return ParameterGrid(self.task, axes=dict(self.axes), fixed=merged)
