"""Bounded LRU cache for computation graphs shared across sweep tasks.

Translating a benchmark circuit into a measurement pattern and computation
graph dominates setup time, so every task caches the result.  The seed
implementation kept an unbounded module-global dict in
``repro.reporting.experiments``; a paper-scale sweep (15 instances × many
configurations) would hold every graph alive forever.  This module provides
an explicit-eviction LRU with a configurable bound
(``DCMBQC_COMPUTATION_CACHE_SIZE``, default 64 entries) that both the
reporting drivers and the sweep workers share.

Each worker process of :mod:`repro.sweep.runner` has its own copy — the
cache intentionally does not cross process boundaries (a computation graph
is cheap to rebuild relative to shipping it through a pipe).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple, TypeVar

from repro.compiler.compgraph import ComputationGraph
from repro.programs import build_benchmark

__all__ = ["LRUCache", "COMPUTATION_CACHE", "build_computation"]

V = TypeVar("V")

DEFAULT_CACHE_SIZE = 64


class LRUCache:
    """A thread-safe mapping bounded to ``maxsize`` least-recently-used entries."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Optional[V] = None):
        """Return the cached value (marking it recently used) or ``default``."""
        with self._lock:
            if key not in self._entries:
                return default
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``value``, evicting the least-recently-used overflow entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value, creating it via ``factory`` on a miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


def _cache_size_from_environment() -> int:
    raw = os.environ.get("DCMBQC_COMPUTATION_CACHE_SIZE", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CACHE_SIZE


#: Process-wide cache of benchmark computation graphs.
COMPUTATION_CACHE = LRUCache(maxsize=_cache_size_from_environment())


def _build_via_pipeline(program: str, num_qubits: int, seed: int) -> ComputationGraph:
    """Run circuit → pattern → computation graph through the staged pipeline.

    The pipeline memoises both stage artifacts in the process-local cache
    and, when ``DCMBQC_ARTIFACT_CACHE_DIR`` is set, the shared on-disk
    artifact store — so sweep workers varying only downstream parameters
    (k_max, alpha, QPU count) never re-translate the same benchmark.
    """
    # Deferred import: repro.pipeline reuses this module's LRUCache.
    from repro.pipeline import Pipeline, resolve_store
    from repro.pipeline.stages import compgraph_stage, translate_stage

    circuit = build_benchmark(program, num_qubits, seed=seed)
    pipeline = Pipeline(
        [translate_stage(), compgraph_stage()], store=resolve_store()
    )
    return pipeline.run({"circuit": circuit}).state["computation"]


def build_computation(
    program: str, num_qubits: int, seed: int = 2026
) -> ComputationGraph:
    """Build (and LRU-cache) the computation graph of one benchmark instance.

    When ``DCMBQC_PIPELINE_DISABLE_CACHE=1`` (the CLI's ``--no-cache``) the
    LRU is bypassed too, so cold-compile measurements stay honest.
    """
    from repro.pipeline.artifacts import caching_disabled

    if caching_disabled():
        return _build_via_pipeline(program, num_qubits, seed)
    key: Tuple[str, int, int] = (program.upper(), num_qubits, seed)
    return COMPUTATION_CACHE.get_or_create(
        key, lambda: _build_via_pipeline(program, num_qubits, seed)
    )
