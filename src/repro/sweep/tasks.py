"""Task functions evaluated at each sweep point.

Every task takes one fully-specified :class:`~repro.sweep.grid.SweepPoint`
and returns a flat, JSON-serialisable row dict — the unit of work a sweep
worker executes and the unit of data the result store persists.  The
compile/compare/schedule logic here is lifted out of the per-table drivers
in :mod:`repro.reporting.experiments`, which are now thin grid definitions
over these tasks.

Tasks report *unrounded* improvement factors; rendering decides precision.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.compiler.oneq import OneQCompiler
from repro.core.comparison import compare_with_baseline
from repro.core.compiler import DCMBQCCompiler
from repro.core.config import DCMBQCConfig
from repro.hardware.resource_states import ResourceStateType
from repro.metrics.improvement import improvement_factor
from repro.programs.registry import paper_grid_size
from repro.scheduling.bdir import BDIRConfig, BDIRScheduler
from repro.scheduling.list_scheduler import list_schedule
from repro.sweep.cache import LRUCache, build_computation
from repro.sweep.grid import SweepPoint

__all__ = ["TASK_REGISTRY", "task", "config_for_point"]

TaskFunction = Callable[[SweepPoint], Dict[str, object]]

#: Name → task function, the dispatch table used by the sweep runner.
TASK_REGISTRY: Dict[str, TaskFunction] = {}


def task(name: str) -> Callable[[TaskFunction], TaskFunction]:
    """Register a task function under ``name`` in :data:`TASK_REGISTRY`."""

    def register(fn: TaskFunction) -> TaskFunction:
        TASK_REGISTRY[name] = fn
        return fn

    return register


def config_for_point(point: SweepPoint) -> DCMBQCConfig:
    """Translate a sweep point into a distributed-compiler configuration."""
    return DCMBQCConfig(
        num_qpus=point.num_qpus,
        grid_size=paper_grid_size(point.num_qubits),
        rsg_type=ResourceStateType.from_name(point.rsg_type),
        connection_capacity=point.k_max,
        alpha_max=point.alpha_max,
        use_bdir=point.use_bdir,
        seed=point.seed,
    )


@task("compile")
def run_compile(point: SweepPoint) -> Dict[str, object]:
    """Distributed compilation of one instance; schedule summary as the row."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    result = DCMBQCCompiler(config_for_point(point)).compile(computation)
    row: Dict[str, object] = {"program": point.program, "num_qubits": point.num_qubits}
    row.update(result.summary())
    return row


@task("compare")
def run_compare(point: SweepPoint) -> Dict[str, object]:
    """DC-MBQC vs a monolithic baseline (Tables III/IV/V, Figure 7)."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    comparison = compare_with_baseline(
        computation, config_for_point(point), baseline=point.baseline
    )
    return {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "baseline_exec": comparison.baseline_execution_time,
        "our_exec": comparison.distributed_execution_time,
        "exec_improvement": comparison.execution_improvement,
        "baseline_lifetime": comparison.baseline_lifetime,
        "our_lifetime": comparison.distributed_lifetime,
        "lifetime_improvement": comparison.lifetime_improvement,
    }


@task("bdir")
def run_bdir(point: SweepPoint) -> Dict[str, object]:
    """Required lifetime of list scheduling vs BDIR refinement (Table VI)."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    config = config_for_point(point).with_updates(use_bdir=False)
    compiler = DCMBQCCompiler(config)
    partition = compiler.partition(computation)
    schedules = compiler.compile_partitions(computation, partition)
    problem, _ = compiler.build_scheduling_problem(computation, partition, schedules)

    baseline_schedule = list_schedule(problem)
    baseline_lifetime = problem.evaluate(baseline_schedule).tau_photon
    refined = BDIRScheduler(problem, BDIRConfig(seed=point.seed)).refine(
        baseline_schedule
    )
    bdir_lifetime = problem.evaluate(refined).tau_photon
    return {
        "program": point.label,
        "list_lifetime": baseline_lifetime,
        "bdir_lifetime": bdir_lifetime,
        "improvement_percent": round(
            100.0 * (baseline_lifetime - bdir_lifetime) / max(1, baseline_lifetime), 2
        ),
    }


@task("workload")
def run_workload(point: SweepPoint) -> Dict[str, object]:
    """Cross-program workload characterisation + baseline comparison (Table VII).

    Extends the ``compare`` task with the instance's structural
    characteristics (2-qubit gates, pattern nodes, fusions) so one row fully
    describes a workload: how it is shaped and how much distribution wins.
    """
    from repro.programs.registry import build_benchmark

    circuit = build_benchmark(point.program, point.num_qubits, seed=point.circuit_seed)
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    comparison = compare_with_baseline(
        computation, config_for_point(point), baseline=point.baseline
    )
    return {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "grid_size": paper_grid_size(point.num_qubits),
        "num_2q_gates": circuit.num_two_qubit_gates,
        "num_nodes": computation.num_nodes,
        "num_fusions": computation.num_fusions,
        "baseline_exec": comparison.baseline_execution_time,
        "our_exec": comparison.distributed_execution_time,
        "exec_improvement": comparison.execution_improvement,
        "baseline_lifetime": comparison.baseline_lifetime,
        "our_lifetime": comparison.distributed_lifetime,
        "lifetime_improvement": comparison.lifetime_improvement,
    }


#: OneQ baseline schedules are deterministic in (instance, grid, seed); the
#: sensitivity grids vary K_max/alpha_max over a fixed instance, so caching
#: avoids recompiling the identical baseline for every point of a figure.
_ONEQ_BASELINE_CACHE = LRUCache(maxsize=32)


@task("sensitivity")
def run_sensitivity(point: SweepPoint) -> Dict[str, object]:
    """DC-MBQC vs OneQ at one (K_max, alpha_max) setting (Figures 8/9).

    Unlike the ``compare`` task this reports the distributed cut size as
    well, which Figure 9 plots against the imbalance bound.
    """
    from repro.pipeline.artifacts import caching_disabled

    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    grid = paper_grid_size(point.num_qubits)
    build_baseline = lambda: OneQCompiler(grid_size=grid, seed=point.seed).compile(
        computation
    )
    if caching_disabled():
        baseline = build_baseline()
    else:
        baseline = _ONEQ_BASELINE_CACHE.get_or_create(
            (point.program.upper(), point.num_qubits, point.circuit_seed, grid, point.seed),
            build_baseline,
        )
    result = DCMBQCCompiler(config_for_point(point)).compile(computation)
    return {
        "program": point.label,
        "kmax": point.k_max,
        "alpha_max": point.alpha_max,
        "cut_size": result.num_connectors,
        "exec_improvement": improvement_factor(
            baseline.execution_time, result.execution_time
        ),
        "lifetime_improvement": improvement_factor(
            baseline.required_photon_lifetime, result.required_photon_lifetime
        ),
    }


@task("runtime")
def run_runtime(point: SweepPoint) -> Dict[str, object]:
    """Compilation-runtime scaling of the three compiler variants (Figure 10).

    The timed compiles bypass the pipeline caches (``use_cache=False``):
    a benchmark that can be served from a memoised artifact would measure
    the cache, not the compiler.
    """
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    grid = paper_grid_size(point.num_qubits)
    config = config_for_point(point)

    start = time.perf_counter()
    OneQCompiler(grid_size=grid, seed=point.seed).compile_run(
        computation, use_cache=False
    )
    baseline_runtime = time.perf_counter() - start

    start = time.perf_counter()
    DCMBQCCompiler(config.with_updates(use_bdir=False)).compile_run(
        computation, use_cache=False
    )
    core_runtime = time.perf_counter() - start

    start = time.perf_counter()
    DCMBQCCompiler(config.with_updates(use_bdir=True)).compile_run(
        computation, use_cache=False
    )
    full_runtime = time.perf_counter() - start

    return {
        "qubits": point.num_qubits,
        "baseline_oneq_seconds": round(baseline_runtime, 4),
        "dcmbqc_core_seconds": round(core_runtime, 4),
        "dcmbqc_core_bdir_seconds": round(full_runtime, 4),
    }
