"""Task functions evaluated at each sweep point.

Every task takes one fully-specified :class:`~repro.sweep.grid.SweepPoint`
and returns a flat, JSON-serialisable row dict — the unit of work a sweep
worker executes and the unit of data the result store persists.  The
compile/compare/schedule logic here is lifted out of the per-table drivers
in :mod:`repro.reporting.experiments`, which are now thin grid definitions
over these tasks.

Tasks report *unrounded* improvement factors; rendering decides precision.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.compiler.oneq import OneQCompiler
from repro.core.comparison import compare_with_baseline
from repro.core.compiler import DCMBQCCompiler
from repro.core.config import DCMBQCConfig
from repro.hardware.resource_states import ResourceStateType
from repro.metrics.improvement import improvement_factor
from repro.programs.registry import paper_grid_size
from repro.scheduling.bdir import BDIRConfig
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.portfolio import portfolio_refine
from repro.sweep.cache import LRUCache, build_computation
from repro.sweep.grid import SweepPoint

__all__ = ["TASK_REGISTRY", "task", "config_for_point"]

TaskFunction = Callable[[SweepPoint], Dict[str, object]]

#: Name → task function, the dispatch table used by the sweep runner.
TASK_REGISTRY: Dict[str, TaskFunction] = {}


def task(name: str) -> Callable[[TaskFunction], TaskFunction]:
    """Register a task function under ``name`` in :data:`TASK_REGISTRY`."""

    def register(fn: TaskFunction) -> TaskFunction:
        TASK_REGISTRY[name] = fn
        return fn

    return register


def config_for_point(point: SweepPoint) -> DCMBQCConfig:
    """Translate a sweep point into a distributed-compiler configuration.

    System-model parameters (interconnect topology, heterogeneous per-QPU
    grids, per-link capacities, custom adjacencies) ride in the point's
    ``extra`` channel so pre-existing grids keep their cache keys.
    """
    kwargs = {}
    for name in (
        "topology",
        "qpu_grid_sizes",
        "qpu_rsg_types",
        "qpu_connection_capacities",
        "link_capacity",
        "custom_links",
        "relay_model",
        "bdir_starts",
    ):
        value = point.option(name)
        if value is not None:
            kwargs[name] = value
    return DCMBQCConfig(
        num_qpus=point.num_qpus,
        grid_size=paper_grid_size(point.num_qubits),
        rsg_type=ResourceStateType.from_name(point.rsg_type),
        connection_capacity=point.k_max,
        alpha_max=point.alpha_max,
        use_bdir=point.use_bdir,
        seed=point.seed,
        **kwargs,
    )


@task("compile")
def run_compile(point: SweepPoint) -> Dict[str, object]:
    """Distributed compilation of one instance; schedule summary as the row."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    result = DCMBQCCompiler(config_for_point(point)).compile(computation)
    row: Dict[str, object] = {"program": point.program, "num_qubits": point.num_qubits}
    row.update(result.summary())
    return row


@task("compare")
def run_compare(point: SweepPoint) -> Dict[str, object]:
    """DC-MBQC vs a monolithic baseline (Tables III/IV/V, Figure 7)."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    comparison = compare_with_baseline(
        computation, config_for_point(point), baseline=point.baseline
    )
    return {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "baseline_exec": comparison.baseline_execution_time,
        "our_exec": comparison.distributed_execution_time,
        "exec_improvement": comparison.execution_improvement,
        "baseline_lifetime": comparison.baseline_lifetime,
        "our_lifetime": comparison.distributed_lifetime,
        "lifetime_improvement": comparison.lifetime_improvement,
    }


@task("bdir")
def run_bdir(point: SweepPoint) -> Dict[str, object]:
    """Required lifetime of list scheduling vs BDIR refinement (Table VI)."""
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    config = config_for_point(point).with_updates(use_bdir=False)
    compiler = DCMBQCCompiler(config)
    partition = compiler.partition(computation)
    schedules = compiler.compile_partitions(computation, partition)
    problem, _ = compiler.build_scheduling_problem(computation, partition, schedules)

    baseline_schedule = list_schedule(problem)
    baseline_lifetime = problem.evaluate(baseline_schedule).tau_photon
    # The system model is threaded through so sparse-topology points hit
    # its alternate-route cache instead of re-enumerating per move; a
    # one-start portfolio is the exact single-start refinement.
    refined = portfolio_refine(
        problem,
        BDIRConfig(seed=point.seed),
        baseline_schedule,
        starts=config.bdir_starts,
        system=compiler.system_model(),
    )
    bdir_lifetime = problem.evaluate(refined).tau_photon
    return {
        "program": point.label,
        "list_lifetime": baseline_lifetime,
        "bdir_lifetime": bdir_lifetime,
        "improvement_percent": round(
            100.0 * (baseline_lifetime - bdir_lifetime) / max(1, baseline_lifetime), 2
        ),
    }


@task("workload")
def run_workload(point: SweepPoint) -> Dict[str, object]:
    """Cross-program workload characterisation + baseline comparison (Table VII).

    Extends the ``compare`` task with the instance's structural
    characteristics (2-qubit gates, pattern nodes, fusions) so one row fully
    describes a workload: how it is shaped and how much distribution wins.
    """
    from repro.programs.registry import build_benchmark

    circuit = build_benchmark(point.program, point.num_qubits, seed=point.circuit_seed)
    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    comparison = compare_with_baseline(
        computation, config_for_point(point), baseline=point.baseline
    )
    return {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "grid_size": paper_grid_size(point.num_qubits),
        "num_2q_gates": circuit.num_two_qubit_gates,
        "num_nodes": computation.num_nodes,
        "num_fusions": computation.num_fusions,
        "baseline_exec": comparison.baseline_execution_time,
        "our_exec": comparison.distributed_execution_time,
        "exec_improvement": comparison.execution_improvement,
        "baseline_lifetime": comparison.baseline_lifetime,
        "our_lifetime": comparison.distributed_lifetime,
        "lifetime_improvement": comparison.lifetime_improvement,
    }


@task("topology")
def run_topology(point: SweepPoint) -> Dict[str, object]:
    """Topology/heterogeneity ablation of one instance (Table VIII).

    Compiles the instance against the point's system model (interconnect
    shape x QPU count x homogeneous-vs-mixed grids), replays the schedule
    on the runtime executor, and reports how the interconnect constrained
    the result: relay hops, cut size, makespan, required lifetime, and the
    executor's independent storage/lifetime cross-check.
    """
    from repro.runtime.executor import DistributedRuntime
    from repro.runtime.reliability import reliability_from_trace

    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    config = config_for_point(point)
    hetero = str(point.option("hetero", "homogeneous"))
    if hetero == "mixed":
        # Deterministic mixed fleet: odd QPUs get a two-cell-larger grid.
        base = config.grid_size
        config = config.with_updates(
            qpu_grid_sizes=tuple(
                base + (2 if index % 2 else 0) for index in range(config.num_qpus)
            )
        )
    result = DCMBQCCompiler(config).compile(computation)
    system = config.system_model()
    trace = DistributedRuntime(result).run()
    relay_hops = sum(sync.relay_hops for sync in result.problem.sync_tasks)
    # The replay both re-derives every hop window from the hardware model
    # (DistributedRuntime.validate raises on any infeasibility the
    # scheduler missed) and re-computes the makespan independently; the
    # consistency column demands scheduler and runtime agree on both the
    # lifetime bound and the cycle count.
    return {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "topology": system.topology.value,
        "num_qpus": point.num_qpus,
        "hetero": hetero,
        "relay_model": config.relay_model,
        "grid_sizes": "/".join(str(qpu.grid_size) for qpu in system.qpus),
        "num_links": system.num_links,
        "connectors": result.num_connectors,
        "relay_hops": relay_hops,
        "execution_time": result.execution_time,
        "required_photon_lifetime": result.required_photon_lifetime,
        "runtime_max_storage": trace.max_storage,
        "runtime_makespan": trace.total_cycles,
        "runtime_consistent": (
            trace.max_storage <= result.required_photon_lifetime
            and trace.total_cycles == result.execution_time
        ),
        "utilisation": round(trace.utilisation(point.num_qpus), 4),
        # Healthy-run loss exposure, derived from the same trace (no extra
        # replay) so topology rows and fault rows share one reliability path.
        "survival_probability": round(
            reliability_from_trace(trace).survival_probability, 6
        ),
    }


@task("fault")
def run_fault(point: SweepPoint) -> Dict[str, object]:
    """One fault x recovery-policy scenario on one compiled instance.

    Compiles the instance, replays it once to obtain the healthy trace,
    then injects the point's fault spec under its recovery policy for the
    requested number of seeded shots.  The row carries both the healthy
    reliability baseline (``survival_probability``) and the fault
    accounting columns (``failure_rate``, ``recovered_rate``,
    ``recovery_overhead_cycles``).
    """
    from repro.runtime.executor import DistributedRuntime
    from repro.runtime.faults import parse_fault, run_fault_scenario
    from repro.runtime.reliability import reliability_from_trace

    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    config = config_for_point(point)
    result = DCMBQCCompiler(config).compile(computation)
    trace = DistributedRuntime(result).run()
    fault = parse_fault(str(point.option("fault", "qpu:0@50%")))
    policy = str(point.option("recovery", "fail-fast"))
    shots = int(point.option("shots", 1))
    row: Dict[str, object] = {
        "program": point.program,
        "num_qubits": point.num_qubits,
        "topology": config.system_model().topology.value,
        "num_qpus": point.num_qpus,
        "makespan": trace.total_cycles,
        "survival_probability": round(
            reliability_from_trace(trace).survival_probability, 6
        ),
    }
    row.update(
        run_fault_scenario(
            result, fault, policy, seed=point.seed, shots=shots, trace=trace
        )
    )
    return row


#: OneQ baseline schedules are deterministic in (instance, grid, seed); the
#: sensitivity grids vary K_max/alpha_max over a fixed instance, so caching
#: avoids recompiling the identical baseline for every point of a figure.
_ONEQ_BASELINE_CACHE = LRUCache(maxsize=32)


@task("sensitivity")
def run_sensitivity(point: SweepPoint) -> Dict[str, object]:
    """DC-MBQC vs OneQ at one (K_max, alpha_max) setting (Figures 8/9).

    Unlike the ``compare`` task this reports the distributed cut size as
    well, which Figure 9 plots against the imbalance bound.
    """
    from repro.pipeline.artifacts import caching_disabled

    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    grid = paper_grid_size(point.num_qubits)
    build_baseline = lambda: OneQCompiler(grid_size=grid, seed=point.seed).compile(
        computation
    )
    if caching_disabled():
        baseline = build_baseline()
    else:
        baseline = _ONEQ_BASELINE_CACHE.get_or_create(
            (point.program.upper(), point.num_qubits, point.circuit_seed, grid, point.seed),
            build_baseline,
        )
    result = DCMBQCCompiler(config_for_point(point)).compile(computation)
    return {
        "program": point.label,
        "kmax": point.k_max,
        "alpha_max": point.alpha_max,
        "cut_size": result.num_connectors,
        "exec_improvement": improvement_factor(
            baseline.execution_time, result.execution_time
        ),
        "lifetime_improvement": improvement_factor(
            baseline.required_photon_lifetime, result.required_photon_lifetime
        ),
    }


def _variant_stage_seconds(run, shared: Dict[str, float]) -> Dict[str, float]:
    """Per-stage seconds of one timed pipeline run.

    Executed stages are charged their measured wall time; stages served from
    the benchmark's private cache are charged the time measured when the
    shared prefix actually executed (``shared``).  Stages provided with the
    initial state (the pre-built computation graph) are setup, not compile
    work, and are excluded.
    """
    seconds: Dict[str, float] = {}
    for record in run.records:
        if record.status == "executed":
            seconds[record.stage] = record.seconds
        elif record.is_hit:
            seconds[record.stage] = shared.get(record.stage, 0.0)
    return seconds


@task("runtime")
def run_runtime(point: SweepPoint) -> Dict[str, object]:
    """Compilation-runtime scaling of the three compiler variants (Figure 10).

    The cache bypass is scoped to the timed compiler stages
    (``no_cache_stages``) instead of disabling caching wholesale: the three
    variants share one private in-memory cache, so the partition/mapping
    prefix shared by Core and Core+BDIR executes — and is timed — exactly
    once and is then reused, while the timed stages themselves can never be
    served from a cache.  Reported per-variant seconds are the sum of the
    variant's pipeline stage times (cache-hit stages are charged the shared
    prefix's measured time), so pipeline bookkeeping and hashing overhead no
    longer pollute the measurement.  Per-stage seconds and hot-path op
    counters are reported alongside for the perf-regression harness.
    """
    from repro.utils.counters import OP_COUNTERS

    computation = build_computation(point.program, point.num_qubits, point.circuit_seed)
    grid = paper_grid_size(point.num_qubits)
    config = config_for_point(point)
    memo = LRUCache(maxsize=16)  # private to this point: deterministic reuse

    counters_before = OP_COUNTERS.snapshot()
    _, oneq_run = OneQCompiler(grid_size=grid, seed=point.seed).compile_run(
        computation, store=None, use_cache=True,
        no_cache_stages=("grid_mapping",), memo=memo,
    )
    oneq_stages = _variant_stage_seconds(oneq_run, {})

    _, core_run = DCMBQCCompiler(config.with_updates(use_bdir=False)).compile_run(
        computation, store=None, use_cache=True,
        no_cache_stages=("partition", "qpu_mapping", "scheduling"), memo=memo,
    )
    core_stages = _variant_stage_seconds(core_run, {})

    _, full_run = DCMBQCCompiler(config.with_updates(use_bdir=True)).compile_run(
        computation, store=None, use_cache=True,
        no_cache_stages=("scheduling",), memo=memo,
    )
    full_stages = _variant_stage_seconds(full_run, core_stages)
    op_counters = OP_COUNTERS.delta_since(counters_before)

    row: Dict[str, object] = {
        "qubits": point.num_qubits,
        "baseline_oneq_seconds": round(sum(oneq_stages.values()), 4),
        "dcmbqc_core_seconds": round(sum(core_stages.values()), 4),
        "dcmbqc_core_bdir_seconds": round(sum(full_stages.values()), 4),
    }
    for variant, stages in (
        ("oneq", oneq_stages),
        ("core", core_stages),
        ("bdir", full_stages),
    ):
        for stage, seconds in stages.items():
            row[f"{variant}_{stage}_seconds"] = round(seconds, 6)
    for name, value in op_counters.items():
        row[f"ops_{name.replace('.', '_')}"] = value
    return row
