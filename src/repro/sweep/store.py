"""Durable on-disk result store for sweeps (mubench-style run table).

One JSONL line per evaluated sweep point, carrying the full parameter
assignment, execution status, timing, attempt count and either the result
row or the error message::

    {"key": "…", "task": "compare", "params": {…}, "status": "done",
     "result": {…}, "error": null, "attempts": 1, "duration_s": 0.41,
     "timestamp": "2026-07-30T12:00:00+00:00"}

Append-only JSONL makes interrupted runs safe: a process killed mid-write
leaves at most one truncated trailing line, which :meth:`ResultStore._load`
skips, and every complete line remains usable.  Re-running the same sweep
against the same store skips every key reported by
:meth:`ResultStore.completed_keys` — that is the resume mechanism.  Failed
points are *not* considered complete, so a resume retries them.

:meth:`ResultStore.export_csv` flattens the run table (params and result
columns side by side) for analysis in pandas/spreadsheets.
"""

from __future__ import annotations

import csv
import datetime
import json
import pathlib
from typing import Dict, List, Mapping, Optional, Set, Union

from repro.sweep.grid import SweepPoint

__all__ = ["ResultStore", "STRAGGLER_FACTOR", "STRAGGLER_MIN_POINTS"]

STORE_FILENAME = "results.jsonl"

#: Fixed metadata columns emitted before params/result columns in CSV export.
#: Deliberately excludes the volatile health fields (``traceback`` holds
#: absolute paths, ``straggler`` is wall-clock-derived) so the warm/cold CSV
#: determinism gate keeps holding; they stay available in the JSONL record.
_META_COLUMNS = (
    "key",
    "task",
    "status",
    "attempts",
    "duration_s",
    "cache_hits",
    "cache_misses",
    "timestamp",
    "error",
    "error_type",
)

#: Straggler threshold: a point is flagged when it takes more than this
#: multiple of the median completed-point duration.
STRAGGLER_FACTOR = 3.0

#: Minimum completed points before straggler flagging means anything.
STRAGGLER_MIN_POINTS = 5


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class ResultStore:
    """Append-only JSONL store of sweep results, keyed by point cache key."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        if path.suffix == ".jsonl":
            self.path = path
        else:
            self.path = path / STORE_FILENAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records: Dict[str, Dict[str, object]] = {}
        self.corrupt_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Truncated trailing line from an interrupted run.
                    self.corrupt_lines += 1
                    continue
                if isinstance(record, dict) and "key" in record:
                    # Last write wins, so re-runs supersede failed attempts.
                    self._records[str(record["key"])] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the latest record for ``key``, or ``None``."""
        return self._records.get(key)

    def rows(self) -> List[Dict[str, object]]:
        """All latest records, in first-insertion order."""
        return list(self._records.values())

    def completed_keys(self) -> Set[str]:
        """Keys whose latest record succeeded — these are skipped on resume."""
        return {
            key
            for key, record in self._records.items()
            if record.get("status") == "done"
        }

    def failed_keys(self) -> Set[str]:
        """Keys whose latest record failed (re-run on resume)."""
        return {
            key
            for key, record in self._records.items()
            if record.get("status") == "failed"
        }

    def record(
        self, point: SweepPoint, outcome: Mapping[str, object]
    ) -> Dict[str, object]:
        """Persist one point's outcome; returns the full stored record.

        ``outcome`` carries ``status``/``result``/``error``/``attempts``/
        ``duration_s`` as produced by the runner's task execution.
        """
        record: Dict[str, object] = {
            "key": point.cache_key(),
            "task": point.task,
            "params": point.params(),
            "status": outcome.get("status", "done"),
            "result": outcome.get("result"),
            "error": outcome.get("error"),
            "attempts": outcome.get("attempts", 1),
            "duration_s": outcome.get("duration_s"),
            "cache_hits": outcome.get("cache_hits", 0),
            "cache_misses": outcome.get("cache_misses", 0),
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        }
        # Health fields (PR 7): only persisted when the runner produced them,
        # so pre-existing stores and records stay byte-compatible.
        for name in ("error_type", "traceback", "straggler", "straggler_ratio"):
            if outcome.get(name) is not None:
                record[name] = outcome[name]
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            handle.flush()
        self._records[str(record["key"])] = record
        return record

    def summarize_health(self) -> Dict[str, object]:
        """Run-health digest of the store: the `repro sweep status` payload.

        Returns totals, failure rate, duration quantiles (p50/p95/p99 over
        completed points), stragglers (duration > ``STRAGGLER_FACTOR`` × the
        median, once ``STRAGGLER_MIN_POINTS`` points completed) and every
        failed point with its error type and (when recorded) traceback.
        """
        records = self.rows()
        done = [r for r in records if r.get("status") == "done"]
        failed = [r for r in records if r.get("status") == "failed"]
        durations = sorted(
            float(r.get("duration_s") or 0.0) for r in done
            if r.get("duration_s") is not None
        )
        median = _percentile(durations, 0.50)
        stragglers: List[Dict[str, object]] = []
        if len(durations) >= STRAGGLER_MIN_POINTS and median > 0.0:
            for record in done:
                duration = float(record.get("duration_s") or 0.0)
                if duration > STRAGGLER_FACTOR * median:
                    stragglers.append(
                        {
                            "key": record.get("key"),
                            "task": record.get("task"),
                            "duration_s": duration,
                            "ratio": round(duration / median, 2),
                        }
                    )
        stragglers.sort(key=lambda entry: (-float(entry["duration_s"]), str(entry["key"])))
        return {
            "total": len(records),
            "completed": len(done),
            "failed": len(failed),
            "failure_rate": round(len(failed) / len(records), 4) if records else 0.0,
            "duration_s": {
                "p50": round(_percentile(durations, 0.50), 6),
                "p95": round(_percentile(durations, 0.95), 6),
                "p99": round(_percentile(durations, 0.99), 6),
                "max": round(durations[-1], 6) if durations else 0.0,
            },
            "stragglers": stragglers,
            "failures": [
                {
                    "key": record.get("key"),
                    "task": record.get("task"),
                    "attempts": record.get("attempts"),
                    "error_type": record.get("error_type"),
                    "error": record.get("error"),
                    "traceback": record.get("traceback"),
                }
                for record in failed
            ],
        }

    def export_csv(self, csv_path: Union[str, pathlib.Path]) -> int:
        """Flatten the run table to CSV; returns the number of rows written.

        Columns are the union over all records: fixed metadata first, then
        every parameter name, then every result column.
        """
        records = self.rows()
        param_columns: List[str] = []
        result_columns: List[str] = []
        for record in records:
            for name in (record.get("params") or {}):
                if name not in _META_COLUMNS and name not in param_columns:
                    param_columns.append(name)
            for name in (record.get("result") or {}):
                if name not in result_columns:
                    result_columns.append(name)
        taken = set(_META_COLUMNS) | set(param_columns)
        header = list(_META_COLUMNS) + param_columns + [
            f"result_{name}" if name in taken else name for name in result_columns
        ]

        csv_path = pathlib.Path(csv_path)
        csv_path.parent.mkdir(parents=True, exist_ok=True)
        with csv_path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for record in records:
                params = record.get("params") or {}
                result = record.get("result") or {}
                row = [record.get(name, "") for name in _META_COLUMNS]
                row += [params.get(name, "") for name in param_columns]
                row += [result.get(name, "") for name in result_columns]
                writer.writerow(row)
        return len(records)
