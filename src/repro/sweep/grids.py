"""Named parameter grids reproducing the paper's tables and figures.

Each factory returns the :class:`~repro.sweep.grid.ParameterGrid` behind one
artefact of the evaluation section; :data:`GRID_REGISTRY` maps the CLI
``sweep --grid`` names to them.  The reporting drivers in
:mod:`repro.reporting.experiments` call the same factories, so
``python -m repro.cli sweep --grid table3`` and ``experiment --name table3``
evaluate byte-identical points.

:class:`BenchmarkScale` lives here (re-exported by the reporting layer for
backwards compatibility) because grid expansion is where instance sizes are
decided.
"""

from __future__ import annotations

import enum
import os
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.programs.registry import PAPER_TABLE2
from repro.sweep.grid import ParameterGrid

__all__ = [
    "BenchmarkScale",
    "benchmark_sizes",
    "extended_benchmark_sizes",
    "pin_system_overrides",
    "GRID_REGISTRY",
    "table3_grid",
    "table4_grid",
    "table5_grid",
    "table6_grid",
    "table7_grid",
    "table8_grid",
    "relay_ablation_grid",
    "fault_sweep_grid",
    "figure7_grid",
    "figure8_grid",
    "figure9_grid",
    "figure10_grid",
]


class BenchmarkScale(str, enum.Enum):
    """How large the benchmark instances should be.

    ``SMOKE`` uses the smallest sizes (CI-friendly, seconds), ``REDUCED``
    uses the paper's smallest published size per family plus one medium
    instance (the default for the benchmark harness), and ``PAPER`` uses the
    full Table II grid (minutes to hours serially — use a parallel sweep).
    """

    SMOKE = "smoke"
    REDUCED = "reduced"
    PAPER = "paper"

    @classmethod
    def from_environment(cls) -> "BenchmarkScale":
        """Pick the scale from ``DCMBQC_FULL_BENCH`` / ``DCMBQC_BENCH_SCALE``."""
        if os.environ.get("DCMBQC_FULL_BENCH", "") == "1":
            return cls.PAPER
        name = os.environ.get("DCMBQC_BENCH_SCALE", "").lower()
        for member in cls:
            if member.value == name:
                return member
        return cls.REDUCED


def benchmark_sizes(scale: BenchmarkScale) -> List[Tuple[str, int]]:
    """Return the (program, qubits) pairs evaluated at a given scale."""
    if scale is BenchmarkScale.PAPER:
        return [(spec.program, spec.num_qubits) for spec in PAPER_TABLE2]
    if scale is BenchmarkScale.REDUCED:
        return [
            ("VQE", 16),
            ("QAOA", 16),
            ("QFT", 16),
            ("RCA", 16),
            ("QFT", 25),
        ]
    return [("VQE", 8), ("QAOA", 8), ("QFT", 8), ("RCA", 8)]


def extended_benchmark_sizes(scale: BenchmarkScale) -> List[Tuple[str, int]]:
    """Return (program, qubits) pairs covering all nine program families.

    The paper families use :func:`benchmark_sizes`; the extended families
    get sizes of comparable compiled footprint.  Grover widths are kept
    moderate on purpose — its multi-controlled-Z oracle lowers to
    ``O(2^n)`` J/CZ operations, so GROVER-12 already compiles to a pattern
    in the same size class as the paper's largest Table II instances.
    """
    if scale is BenchmarkScale.PAPER:
        extended = [
            ("GROVER", 8),
            ("GROVER", 12),
            ("QPE", 16),
            ("QPE", 36),
            ("GHZ", 16),
            ("GHZ", 81),
            ("HS", 16),
            ("HS", 36),
            ("ANSATZ", 16),
            ("ANSATZ", 36),
        ]
    elif scale is BenchmarkScale.REDUCED:
        extended = [
            ("GROVER", 8),
            ("QPE", 16),
            ("GHZ", 16),
            ("HS", 16),
            ("ANSATZ", 16),
        ]
    else:
        extended = [
            ("GROVER", 6),
            ("QPE", 8),
            ("GHZ", 8),
            ("HS", 8),
            ("ANSATZ", 8),
        ]
    return benchmark_sizes(scale) + extended


def pin_system_overrides(
    grid: ParameterGrid, overrides: Optional[Mapping[str, object]]
) -> ParameterGrid:
    """Pin system-model overrides (already serialisable) onto ``grid``.

    The shared path behind ``experiment --topology/--system-spec`` and
    ``sweep --topology/--system-spec``: fixed overrides ride the sweep
    points' ``extra`` channel.  Grid axes that sweep the same parameter
    (e.g. table8's topology axis, or a ``num_qpus`` axis when a system
    spec pins the fleet size) are dropped — otherwise the axis value
    would win and clash with the pinned per-QPU tuples on every expanded
    point.
    """
    if not overrides:
        return grid
    remaining_axes = {
        name: values for name, values in grid.axes if name not in overrides
    }
    if len(remaining_axes) != len(grid.axes):
        grid = ParameterGrid(grid.task, axes=remaining_axes, fixed=dict(grid.fixed))
    return grid.with_fixed(**overrides)


def comparison_grid(
    scale: BenchmarkScale,
    num_qpus: int,
    rsg_type: str,
    baseline: str,
    use_bdir: bool = True,
    seed: int = 0,
) -> ParameterGrid:
    """Grid of one ``compare`` run per benchmark instance (Tables III/IV)."""
    return ParameterGrid(
        "compare",
        axes={"instance": benchmark_sizes(scale)},
        fixed={
            "num_qpus": num_qpus,
            "rsg_type": rsg_type,
            "baseline": baseline,
            "use_bdir": use_bdir,
            "seed": seed,
        },
    )


def table3_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED, seed: int = 0
) -> ParameterGrid:
    """Table III: DC-MBQC vs OneQ with 4 QPUs and 5-star resource states."""
    return comparison_grid(scale, num_qpus=4, rsg_type="5-star", baseline="oneq", seed=seed)


def table4_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED, seed: int = 0
) -> ParameterGrid:
    """Table IV: DC-MBQC vs OneQ with 8 QPUs and 4-ring resource states."""
    return comparison_grid(scale, num_qpus=8, rsg_type="4-ring", baseline="oneq", seed=seed)


def table5_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    num_qpus_list: Sequence[int] = (4, 8),
) -> ParameterGrid:
    """Table V: DC-MBQC vs an OneAdapt-style baseline for 4 and 8 QPUs."""
    return ParameterGrid(
        "compare",
        axes={
            "num_qpus": num_qpus_list,
            "instance": benchmark_sizes(scale),
        },
        fixed={"rsg_type": "5-star", "baseline": "oneadapt", "seed": seed},
    )


def table6_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    qft_sizes: Optional[Sequence[int]] = None,
    num_qpus: int = 4,
    bdir_starts: int = 1,
) -> ParameterGrid:
    """Table VI: list scheduling vs BDIR on QFT programs."""
    if qft_sizes is None:
        qft_sizes = (12,) if scale is BenchmarkScale.SMOKE else (16, 25, 36)
    fixed: Dict[str, object] = {"num_qpus": num_qpus, "seed": seed}
    # Only non-default portfolios ride the option channel so pre-existing
    # single-start grids keep their cache keys (and stored rows) unchanged.
    if bdir_starts != 1:
        fixed["bdir_starts"] = bdir_starts
    return ParameterGrid(
        "bdir",
        axes={"instance": [("QFT", qubits) for qubits in qft_sizes]},
        fixed=fixed,
    )


def table7_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    num_qpus: int = 4,
    rsg_type: str = "5-star",
    baseline: str = "oneq",
) -> ParameterGrid:
    """Table VII (extension): every program family through OneQ vs DC-MBQC.

    One ``workload`` point per instance of the nine-family extended matrix:
    the task reports the circuit/computation-graph characteristics next to
    the baseline-vs-distributed comparison, giving a single cross-program
    table of workload shape and compilation win.
    """
    return ParameterGrid(
        "workload",
        axes={"instance": extended_benchmark_sizes(scale)},
        fixed={
            "num_qpus": num_qpus,
            "rsg_type": rsg_type,
            "baseline": baseline,
            "use_bdir": True,
            "seed": seed,
        },
    )


def table8_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    topologies: Sequence[str] = ("fully-connected", "ring", "line", "grid-2d"),
    num_qpus_list: Sequence[int] = (4, 8),
    hetero_modes: Sequence[str] = ("homogeneous", "mixed"),
) -> ParameterGrid:
    """Table VIII (extension): topology x fleet-size x heterogeneity ablation.

    Every point compiles one instance against a different
    :class:`~repro.hardware.system.SystemModel` — interconnect shape
    (fully-connected / ring / line / 2D grid), QPU count (4 / 8) and
    homogeneous vs mixed grid sizes — and replays it on the runtime
    executor, demonstrating that the interconnect constrains partitioning,
    scheduling and execution end to end.
    """
    if scale is BenchmarkScale.PAPER:
        instances = [("QFT", 16), ("QFT", 25), ("QAOA", 16), ("RCA", 16)]
    elif scale is BenchmarkScale.REDUCED:
        instances = [("QFT", 16), ("QAOA", 16)]
    else:
        instances = [("QFT", 8)]
    return ParameterGrid(
        "topology",
        axes={
            "instance": instances,
            "num_qpus": num_qpus_list,
            "topology": list(topologies),
            "hetero": list(hetero_modes),
        },
        fixed={"seed": seed},
    )


def relay_ablation_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    topology: str = "line",
    num_qpus: int = 4,
) -> ParameterGrid:
    """Pipelined vs atomic relay model on one sparse interconnect.

    The before/after companion of Table VIII: every instance compiles twice
    against the same sparse system — once under the atomic relay model (a
    relayed sync books its whole route in one cycle) and once under the
    pipelined store-and-forward model — so the rows isolate exactly what
    the hop-window refactor buys.  Fully-connected systems would render
    both rows identical, so the grid pins a sparse topology.
    """
    if scale is BenchmarkScale.PAPER:
        instances = [("QFT", 16), ("QFT", 25), ("QAOA", 16), ("RCA", 16)]
    elif scale is BenchmarkScale.REDUCED:
        instances = [("QFT", 12), ("QFT", 16), ("QAOA", 16)]
    else:
        instances = [("QFT", 8), ("QFT", 12)]
    return ParameterGrid(
        "topology",
        axes={
            "instance": instances,
            "relay_model": ["atomic", "pipelined"],
        },
        fixed={
            "num_qpus": num_qpus,
            "topology": topology,
            "seed": seed,
        },
    )


def fault_sweep_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    topology: str = "ring",
    num_qpus: int = 4,
    faults=None,
    policies=None,
) -> ParameterGrid:
    """Fault type x injection time x recovery policy failure accounting.

    Each point compiles one instance on a sparse interconnect, injects one
    seeded fault mid-replay and applies one recovery policy, reporting
    ``failure_rate`` / ``recovered_rate`` / ``recovery_overhead_cycles``
    alongside the healthy ``survival_probability`` baseline.  The default
    fault set pairs a link death and a K_max brownout (SMOKE) with a QPU
    death and stochastic photon loss at the larger scales, so the grid
    always contains at least one scenario where ``fail-fast`` fails
    outright and a re-planning policy recovers.

    Policy names are spelled out (not imported from the runtime) so grid
    construction stays import-light; :data:`repro.runtime.faults.RECOVERY_POLICIES`
    is the authoritative list.
    """
    if scale is BenchmarkScale.SMOKE:
        instances = [("QFT", 8)]
        default_faults = ("link:0-1@10%", "qpu:0@25%+8:cap=1")
        default_policies = ("fail-fast", "reroute")
        shots = 2
    else:
        if scale is BenchmarkScale.PAPER:
            instances = [("QFT", 16), ("QFT", 25), ("QAOA", 16)]
        else:
            instances = [("QFT", 16), ("QAOA", 16)]
        default_faults = (
            "qpu:1@25%",
            "link:0-1@25%",
            "qpu:0@25%+8:cap=1",
            "loss:500ns",
        )
        default_policies = (
            "fail-fast",
            "reroute",
            "reschedule-frontier",
            "abort-recompile",
        )
        shots = 3
    return ParameterGrid(
        "fault",
        axes={
            "instance": instances,
            "fault": list(faults if faults is not None else default_faults),
            "recovery": list(policies if policies is not None else default_policies),
        },
        fixed={
            "num_qpus": num_qpus,
            "topology": topology,
            "seed": seed,
            "shots": shots,
        },
    )


def figure7_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    program_qubits: int = 12,
    num_qpus: int = 4,
    programs: Sequence[str] = ("QAOA", "VQE", "QFT", "RCA"),
) -> ParameterGrid:
    """Figure 7: every resource-state shape on every program family."""
    from repro.hardware.resource_states import ResourceStateType

    return ParameterGrid(
        "compare",
        axes={
            "instance": [(program, program_qubits) for program in programs],
            "rsg_type": [rsg.value for rsg in ResourceStateType],
        },
        fixed={"num_qpus": num_qpus, "baseline": "oneq", "seed": seed},
    )


def figure8_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    program_qubits: Sequence[int] = (16, 25),
    kmax_values: Sequence[int] = (1, 2, 4, 8, 16),
    num_qpus: int = 4,
) -> ParameterGrid:
    """Figure 8: sensitivity to the connection capacity K_max (QFT programs)."""
    return ParameterGrid(
        "sensitivity",
        axes={
            "instance": [("QFT", qubits) for qubits in program_qubits],
            "k_max": kmax_values,
        },
        fixed={"num_qpus": num_qpus, "seed": seed},
    )


def figure9_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    program_qubits: int = 16,
    alpha_values: Sequence[float] = (1.05, 1.2, 1.5, 2.0, 3.0, 4.0),
    num_qpus: int = 4,
) -> ParameterGrid:
    """Figure 9: robustness to the maximum imbalance factor alpha_max."""
    return ParameterGrid(
        "sensitivity",
        axes={"alpha_max": alpha_values},
        fixed={
            "instance": ("QFT", program_qubits),
            "num_qpus": num_qpus,
            "seed": seed,
        },
    )


def figure10_grid(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    qft_sizes: Sequence[int] = (8, 12, 16, 24, 32),
    num_qpus: int = 8,
    bdir_starts: int = 1,
) -> ParameterGrid:
    """Figure 10: compilation-runtime scaling of the three compiler variants."""
    fixed: Dict[str, object] = {"num_qpus": num_qpus, "seed": seed}
    if bdir_starts != 1:
        fixed["bdir_starts"] = bdir_starts
    return ParameterGrid(
        "runtime",
        axes={"instance": [("QFT", qubits) for qubits in qft_sizes]},
        fixed=fixed,
    )


#: CLI ``sweep --grid`` name → grid factory ``(scale, seed) -> ParameterGrid``.
GRID_REGISTRY: Dict[str, Callable[..., ParameterGrid]] = {
    "table3": table3_grid,
    "table4": table4_grid,
    "table5": table5_grid,
    "table6": table6_grid,
    "table7": table7_grid,
    "table8": table8_grid,
    "relay-ablation": relay_ablation_grid,
    "fault-sweep": fault_sweep_grid,
    "figure7": figure7_grid,
    "figure8": figure8_grid,
    "figure9": figure9_grid,
    "figure10": figure10_grid,
}
