"""Parallel sweep execution with resume, retry and progress reporting.

:class:`SweepRunner` fans the points of a grid out across a
``concurrent.futures.ProcessPoolExecutor``.  Each worker process executes
:func:`execute_point` — a module-level function so it pickles — and builds
its benchmark computation graphs locally: the
:data:`repro.sweep.cache.COMPUTATION_CACHE` LRU is per-process and
deliberately does not cross the pipe.  The parent process is the only
writer of the :class:`~repro.sweep.store.ResultStore`, so the JSONL run
table never interleaves.

``workers <= 1`` runs points serially in the calling process (deterministic
ordering of cache warm-up, no pickling) — the mode the reporting drivers
use, which must reproduce the seed tables row for row.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Union

from repro.obs.events import EVENTS
from repro.obs.metrics import METRICS
from repro.obs.resources import RESOURCES
from repro.obs.trace import TRACER
from repro.pipeline.telemetry import TELEMETRY
from repro.sweep.grid import ParameterGrid, SweepPoint
from repro.sweep.store import STRAGGLER_FACTOR, STRAGGLER_MIN_POINTS, ResultStore
from repro.sweep.tasks import TASK_REGISTRY

__all__ = ["SweepOutcome", "SweepRunner", "execute_point", "run_grid"]

#: Called after each point resolves: (point, record, finished_count, total).
ProgressCallback = Callable[[SweepPoint, Dict[str, object], int, int], None]


def execute_point(
    point: SweepPoint, retries: int = 0, export_spans: bool = False
) -> Dict[str, object]:
    """Run one point's task, retrying on failure; never raises.

    Returns an outcome dict with ``status`` (``"done"``/``"failed"``),
    ``result``, ``error``, ``attempts``, ``duration_s`` and the pipeline
    cache activity this point caused in the executing process
    (``cache_hits``/``cache_misses`` — stage short-circuits vs real stage
    executions).  The deltas travel back through the pipe, so the parent can
    aggregate cache statistics across worker processes.

    When tracing is active the point runs under a ``sweep.point`` span.
    With ``export_spans=True`` (the process-pool path; workers inherit
    ``DCMBQC_TRACE`` through the environment) the spans this point produced
    are drained from the worker's buffer and shipped home in the record's
    ``"spans"`` entry, where the parent re-parents them under its own run
    (:meth:`repro.obs.trace.Tracer.adopt`).
    """
    TRACER.ensure_enabled_from_environment()
    RESOURCES.ensure_enabled_from_environment()
    task_fn = TASK_REGISTRY.get(point.task)
    start = time.perf_counter()
    if task_fn is None:
        return {
            "status": "failed",
            "result": None,
            "error": f"KeyError: unknown task {point.task!r}",
            "error_type": "KeyError",
            "attempts": 0,
            "duration_s": 0.0,
        }
    mark = TRACER.mark()
    with TRACER.span("sweep.point", task=point.task, label=point.label) as point_span:
        outcome = _execute_attempts(point, retries, task_fn, start)
        point_span.set(status=outcome["status"], attempts=outcome["attempts"])
    if export_spans and TRACER.enabled:
        outcome["spans"] = TRACER.drain_since(mark)
    return outcome


def _execute_attempts(
    point: SweepPoint, retries: int, task_fn, start: float
) -> Dict[str, object]:
    attempts = 0
    while True:
        attempts += 1
        # Snapshot per attempt so a failed try's stage executions don't
        # inflate the delta attributed to the attempt that finally lands.
        telemetry_before = TELEMETRY.totals()
        try:
            result = task_fn(point)
        except Exception as exc:  # noqa: BLE001 - workers must not die
            if attempts <= retries:
                continue
            telemetry_after = TELEMETRY.totals()
            return {
                "status": "failed",
                "result": None,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
                "traceback": "".join(
                    traceback_module.format_exception(
                        type(exc), exc, exc.__traceback__
                    )
                ),
                "attempts": attempts,
                "duration_s": round(time.perf_counter() - start, 6),
                "cache_hits": telemetry_after["hits"] - telemetry_before["hits"],
                "cache_misses": telemetry_after["executions"]
                - telemetry_before["executions"],
            }
        telemetry_after = TELEMETRY.totals()
        return {
            "status": "done",
            "result": result,
            "error": None,
            "attempts": attempts,
            "duration_s": round(time.perf_counter() - start, 6),
            "cache_hits": telemetry_after["hits"] - telemetry_before["hits"],
            "cache_misses": telemetry_after["executions"]
            - telemetry_before["executions"],
        }


@dataclass
class SweepOutcome:
    """What happened to every point of a sweep, in grid order."""

    points: List[SweepPoint] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)
    skipped: int = 0
    completed: int = 0
    failed: int = 0
    fresh_keys: Set[str] = field(default_factory=set)
    #: Keys the health monitor flagged as stragglers (duration far above the
    #: rolling median); informational, deliberately not part of summary().
    stragglers: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.points)

    def results(self, strict: bool = True) -> List[Dict[str, object]]:
        """Result rows in grid order; raises on failed points when strict."""
        rows: List[Dict[str, object]] = []
        for point, record in zip(self.points, self.records):
            if record.get("status") != "done":
                if strict:
                    raise RuntimeError(
                        f"sweep point {point.label} ({point.task}) failed: "
                        f"{record.get('error')}"
                    )
                continue
            rows.append(record["result"])  # type: ignore[arg-type]
        return rows

    def summary(self) -> Dict[str, int]:
        """Counter summary for logging."""
        return {
            "total": self.total,
            "completed": self.completed,
            "skipped": self.skipped,
            "failed": self.failed,
        }

    def cache_summary(self) -> Dict[str, int]:
        """Pipeline-stage cache activity summed over every executed point.

        Each record carries the executing process's telemetry delta
        (``cache_hits``/``cache_misses``), so the sum is correct for serial
        and process-pool runs alike.  Store-resumed (skipped) points are
        excluded — their stored deltas describe a previous run.
        """
        hits = 0
        misses = 0
        counted = set()
        for record in self.records:
            key = str(record.get("key"))
            if key not in self.fresh_keys or id(record) in counted:
                continue
            counted.add(id(record))  # duplicate points share one record
            hits += int(record.get("cache_hits") or 0)
            misses += int(record.get("cache_misses") or 0)
        return {"hits": hits, "misses": misses}


class SweepRunner:
    """Executes sweep points, skipping store-completed keys (resume)."""

    def __init__(
        self,
        workers: int = 1,
        retries: int = 0,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.workers = workers
        self.retries = retries
        self.progress = progress

    def run(
        self,
        grid: Union[ParameterGrid, Iterable[SweepPoint]],
        store: Optional[ResultStore] = None,
    ) -> SweepOutcome:
        """Evaluate every point of ``grid``, returning records in grid order."""
        points = grid.expand() if isinstance(grid, ParameterGrid) else list(grid)
        keys = [point.cache_key() for point in points]

        done: Dict[str, Dict[str, object]] = {}
        if store is not None:
            for key in store.completed_keys():
                record = store.get(key)
                if record is not None:
                    done[key] = record

        # Deduplicate: identical points run once, every occurrence shares
        # the record.
        pending: List[SweepPoint] = []
        pending_keys = set()
        for point, key in zip(points, keys):
            if key in done or key in pending_keys:
                continue
            pending_keys.add(key)
            pending.append(point)

        outcome = SweepOutcome(points=points)
        outcome.skipped = sum(1 for key in keys if key in done)
        finished = outcome.skipped

        fresh: Dict[str, Dict[str, object]] = {}
        # Duplicate occurrences share one execution but each counts toward
        # the totals, so summary() and progress stay consistent with len(points).
        occurrences: Dict[str, int] = {}
        for key in keys:
            occurrences[key] = occurrences.get(key, 0) + 1

        # Health monitor state: durations of fresh completed points, in
        # completion order, feeding the rolling-median straggler check.
        completed_durations: List[float] = []

        def flag_straggler(result: Dict[str, object]) -> None:
            """Annotate ``result`` when it ran far beyond the rolling median."""
            if result.get("status") != "done":
                return
            duration = float(result.get("duration_s") or 0.0)
            prior = sorted(completed_durations)
            completed_durations.append(duration)
            if len(prior) < STRAGGLER_MIN_POINTS:
                return
            median = prior[len(prior) // 2]
            if median > 0.0 and duration > STRAGGLER_FACTOR * median:
                result["straggler"] = True
                result["straggler_ratio"] = round(duration / median, 2)

        def resolve(point: SweepPoint, result: Dict[str, object]) -> None:
            nonlocal finished
            # Worker-produced spans are transport, not result data: merge
            # them into this process's tracer instead of the run table.
            worker_spans = result.pop("spans", None)
            if worker_spans and TRACER.enabled:
                TRACER.adopt(worker_spans)
            flag_straggler(result)
            record = (
                store.record(point, result)
                if store is not None
                else dict(result, key=point.cache_key(), task=point.task,
                          params=point.params())
            )
            count = occurrences[point.cache_key()]
            fresh[point.cache_key()] = record
            outcome.fresh_keys.add(point.cache_key())
            status = str(record.get("status"))
            if status == "done":
                outcome.completed += count
            else:
                outcome.failed += count
            if record.get("straggler"):
                outcome.stragglers.append(point.cache_key())
            finished += count
            METRICS.inc("sweep.points_total", count, status=status, task=point.task)
            METRICS.observe(
                "sweep.point.duration_s",
                float(record.get("duration_s") or 0.0),
                task=point.task,
            )
            if status != "done":
                METRICS.inc("sweep.failures_total", count, task=point.task)
            if record.get("straggler"):
                METRICS.inc("sweep.stragglers_total", count, task=point.task)
            if EVENTS.enabled:
                event_fields: Dict[str, object] = {
                    "key": point.cache_key(),
                    "task": point.task,
                    "status": status,
                    "attempts": record.get("attempts"),
                    "duration_s": record.get("duration_s"),
                }
                if record.get("straggler"):
                    event_fields["straggler"] = True
                    event_fields["straggler_ratio"] = record.get("straggler_ratio")
                if status != "done":
                    event_fields["error_type"] = record.get("error_type")
                    event_fields["error"] = record.get("error")
                    event_fields["traceback"] = record.get("traceback")
                EVENTS.emit("sweep.point", **event_fields)
            if self.progress is not None:
                self.progress(point, record, finished, len(points))

        if self.workers <= 1 or len(pending) <= 1:
            for point in pending:
                resolve(point, execute_point(point, self.retries))
        else:
            max_workers = min(self.workers, len(pending))
            with concurrent.futures.ProcessPoolExecutor(max_workers) as executor:
                futures = {
                    executor.submit(
                        execute_point, point, self.retries, True
                    ): point
                    for point in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    resolve(futures[future], future.result())

        for key in keys:
            outcome.records.append(fresh.get(key) or done[key])
        return outcome


def run_grid(
    grid: Union[ParameterGrid, Iterable[SweepPoint]],
    workers: int = 1,
    store: Optional[ResultStore] = None,
    retries: int = 0,
    progress: Optional[ProgressCallback] = None,
) -> SweepOutcome:
    """Convenience wrapper: build a :class:`SweepRunner` and run ``grid``."""
    return SweepRunner(workers=workers, retries=retries, progress=progress).run(
        grid, store
    )
