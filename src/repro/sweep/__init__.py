"""Parallel sweep orchestration with a resumable on-disk result store.

The subsystem follows a PyExperimenter-style workflow: a declarative
parameter grid (:mod:`repro.sweep.grid`) expands into hashable points, a
process-pool runner (:mod:`repro.sweep.runner`) pulls points, executes the
registered task function (:mod:`repro.sweep.tasks`) and writes one row per
point back to a durable JSONL run table (:mod:`repro.sweep.store`) that can
be resumed after interruption and exported to CSV.  Named grids for every
paper artefact live in :mod:`repro.sweep.grids`; the shared bounded
computation-graph cache in :mod:`repro.sweep.cache`.

Quick start::

    from repro.sweep import ResultStore, run_grid, table3_grid

    store = ResultStore("results/table3")
    outcome = run_grid(table3_grid(), workers=8, store=store)
    store.export_csv("results/table3.csv")
"""

from repro.sweep.cache import COMPUTATION_CACHE, LRUCache, build_computation
from repro.sweep.grid import ParameterGrid, SweepPoint
from repro.sweep.grids import (
    GRID_REGISTRY,
    BenchmarkScale,
    benchmark_sizes,
    extended_benchmark_sizes,
    figure7_grid,
    figure8_grid,
    figure9_grid,
    figure10_grid,
    table3_grid,
    table4_grid,
    table5_grid,
    table6_grid,
    table7_grid,
)
from repro.sweep.runner import SweepOutcome, SweepRunner, execute_point, run_grid
from repro.sweep.store import ResultStore
from repro.sweep.tasks import TASK_REGISTRY, config_for_point, task

__all__ = [
    "BenchmarkScale",
    "COMPUTATION_CACHE",
    "GRID_REGISTRY",
    "LRUCache",
    "ParameterGrid",
    "ResultStore",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "TASK_REGISTRY",
    "benchmark_sizes",
    "build_computation",
    "config_for_point",
    "execute_point",
    "extended_benchmark_sizes",
    "run_grid",
    "table3_grid",
    "table4_grid",
    "table5_grid",
    "table6_grid",
    "table7_grid",
    "figure7_grid",
    "figure8_grid",
    "figure9_grid",
    "figure10_grid",
    "task",
]
