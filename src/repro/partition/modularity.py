"""Newman modularity.

Modularity quantifies how much denser the connections inside the parts of a
partition are compared to a random graph with the same degree sequence:

    Q = sum_c [ e_c / m  -  (d_c / (2 m))^2 ]

where ``m`` is the number of edges, ``e_c`` the number of edges inside part
``c`` and ``d_c`` the total degree of part ``c``.  Algorithm 2 of the paper
uses modularity as the measure of subgraph structural quality that the
adaptive partitioner trades against balance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import networkx as nx

__all__ = ["modularity", "modularity_of_communities"]


def modularity(
    graph: nx.Graph, assignment: Mapping[int, int], weight: str = "weight"
) -> float:
    """Return the modularity of ``assignment`` (node -> part) on ``graph``.

    Edge weights are honoured when present (attribute named ``weight``);
    isolated nodes and empty graphs have modularity 0 by convention.
    """
    total_weight = graph.size(weight=weight)
    if total_weight == 0:
        return 0.0
    internal: Dict[int, float] = {}
    degree_sum: Dict[int, float] = {}
    for node, degree in graph.degree(weight=weight):
        part = assignment[node]
        degree_sum[part] = degree_sum.get(part, 0.0) + degree
    for a, b, data in graph.edges(data=True):
        if assignment[a] == assignment[b]:
            part = assignment[a]
            internal[part] = internal.get(part, 0.0) + data.get(weight, 1.0)
    total = 0.0
    two_m = 2.0 * total_weight
    for part, degrees in degree_sum.items():
        e_c = internal.get(part, 0.0)
        total += e_c / total_weight - (degrees / two_m) ** 2
    return total


def modularity_of_communities(
    graph: nx.Graph, communities: Sequence[Iterable[int]]
) -> float:
    """Modularity of a partition given as a list of node groups."""
    assignment: Dict[int, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            assignment[node] = index
    return modularity(graph, assignment)
