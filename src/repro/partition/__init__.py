"""Graph partitioning for workload distribution (Section IV-A).

The DC-MBQC framework partitions the computation graph across QPUs while
navigating the trade-off between load balance, cut size, and the structural
quality (modularity) of the resulting subgraphs.  This package provides:

* :mod:`~repro.partition.types` — the :class:`PartitionResult` value object,
* :mod:`~repro.partition.modularity` — Newman modularity,
* :mod:`~repro.partition.community` — Louvain community detection (own
  implementation plus a networkx-backed variant),
* :mod:`~repro.partition.multilevel` — a METIS-style multilevel k-way
  partitioner (heavy-edge-matching coarsening, region-growing initial
  partition, FM boundary refinement) with an explicit imbalance factor,
* :mod:`~repro.partition.adaptive` — the paper's adaptive graph partitioning
  (Algorithm 2) that searches the imbalance/modularity trade-off space.
"""

from repro.partition.types import PartitionResult
from repro.partition.modularity import modularity
from repro.partition.community import louvain_communities, greedy_modularity_communities
from repro.partition.multilevel import MultilevelPartitioner, partition_graph
from repro.partition.adaptive import AdaptivePartitioner, AdaptivePartitionConfig
from repro.partition.spectral import spectral_partition, fiedler_bisection

__all__ = [
    "PartitionResult",
    "modularity",
    "louvain_communities",
    "greedy_modularity_communities",
    "MultilevelPartitioner",
    "partition_graph",
    "AdaptivePartitioner",
    "AdaptivePartitionConfig",
    "spectral_partition",
    "fiedler_bisection",
]
