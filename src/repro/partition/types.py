"""Partition result value object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.utils.errors import PartitionError

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """A k-way partition of an undirected graph.

    Attributes:
        assignment: Maps every node to its part index (0-based).
        num_parts: Number of parts (QPUs).
    """

    assignment: Dict[int, int]
    num_parts: int

    def __post_init__(self) -> None:
        if self.num_parts < 1:
            raise PartitionError("a partition needs at least one part")
        for node, part in self.assignment.items():
            if not 0 <= part < self.num_parts:
                raise PartitionError(
                    f"node {node} assigned to part {part}, but there are only "
                    f"{self.num_parts} parts"
                )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def parts(self) -> List[Set[int]]:
        """Return the node sets of every part (possibly empty sets)."""
        groups: List[Set[int]] = [set() for _ in range(self.num_parts)]
        for node, part in self.assignment.items():
            groups[part].add(node)
        return groups

    def part_of(self, node: int) -> int:
        """Part index of ``node``."""
        return self.assignment[node]

    def part_sizes(self) -> List[int]:
        """Number of nodes in every part."""
        sizes = [0] * self.num_parts
        for part in self.assignment.values():
            sizes[part] += 1
        return sizes

    def imbalance(self) -> float:
        """Return ``max part size / ideal part size`` (1.0 is perfectly balanced)."""
        sizes = self.part_sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        ideal = total / self.num_parts
        return max(sizes) / ideal if ideal > 0 else 1.0

    def cut_edges(self, graph: nx.Graph) -> List[Tuple[int, int]]:
        """Edges of ``graph`` whose endpoints lie in different parts."""
        cut = []
        for a, b in graph.edges:
            if self.assignment.get(a) != self.assignment.get(b):
                cut.append((min(a, b), max(a, b)))
        return sorted(cut)

    def cut_size(self, graph: nx.Graph) -> int:
        """Number of cut edges."""
        return len(self.cut_edges(graph))

    def validate_covers(self, graph: nx.Graph) -> None:
        """Raise if the partition does not cover exactly the graph's nodes."""
        nodes = set(graph.nodes)
        assigned = set(self.assignment)
        if nodes != assigned:
            missing = nodes - assigned
            extra = assigned - nodes
            raise PartitionError(
                f"partition does not cover the graph exactly "
                f"(missing={len(missing)}, extra={len(extra)})"
            )

    def relabelled_by_size(self) -> "PartitionResult":
        """Return an equivalent partition with parts renumbered largest-first."""
        sizes = self.part_sizes()
        order = sorted(range(self.num_parts), key=lambda p: -sizes[p])
        remap = {old: new for new, old in enumerate(order)}
        return PartitionResult(
            assignment={node: remap[part] for node, part in self.assignment.items()},
            num_parts=self.num_parts,
        )
