"""Multilevel k-way graph partitioning (METIS-style, pure Python).

The paper's Algorithm 2 starts from a balanced partition produced by the
METIS library (multilevel k-way partitioning, Karypis & Kumar).  METIS is a
C library that is not available in this environment, so this module
implements the same algorithmic scheme from scratch:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the
   graph is small (a few times the number of parts);
2. **Initial partition** — balanced region growing (greedy BFS) on the
   coarsest graph;
3. **Uncoarsening + refinement** — project the partition back level by
   level and improve it with Fiduccia–Mattheyses-style boundary moves that
   reduce the cut while respecting the imbalance constraint
   ``max part weight <= alpha * total weight / k``.

The partitioner is deterministic for a fixed seed and is validated in the
test suite against the balance constraint, cut-coverage invariants, and
(on structured graphs) against known good cuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.partition.types import PartitionResult
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng

__all__ = ["MultilevelPartitioner", "partition_graph"]


@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    graph: nx.Graph
    # Mapping from this level's nodes to the coarser level's nodes.
    projection: Optional[Dict[int, int]] = None


class MultilevelPartitioner:
    """METIS-style multilevel k-way partitioner with an imbalance factor.

    Args:
        num_parts: Number of parts (QPUs).
        imbalance: Allowed imbalance ``alpha``; every part's weight must stay
            below ``alpha * total_weight / num_parts``.  ``1.0`` requests a
            perfectly balanced partition (rounded up to whole nodes).
        seed: Seed for the randomised matching / tie-breaking.
        refinement_passes: Number of FM boundary passes per level.
    """

    def __init__(
        self,
        num_parts: int,
        imbalance: float = 1.0,
        seed: int = 0,
        refinement_passes: int = 4,
    ) -> None:
        if num_parts < 1:
            raise PartitionError("num_parts must be at least 1")
        if imbalance < 1.0:
            raise PartitionError("imbalance factor must be >= 1.0")
        self.num_parts = num_parts
        self.imbalance = imbalance
        self.seed = seed
        self.refinement_passes = refinement_passes

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def partition(self, graph: nx.Graph) -> PartitionResult:
        """Partition ``graph`` into ``num_parts`` parts."""
        if graph.number_of_nodes() == 0:
            return PartitionResult({}, self.num_parts)
        if self.num_parts == 1:
            return PartitionResult({node: 0 for node in graph.nodes}, 1)
        if graph.number_of_nodes() < self.num_parts:
            raise PartitionError(
                f"cannot split {graph.number_of_nodes()} nodes into "
                f"{self.num_parts} parts"
            )

        weighted = nx.Graph()
        for node in graph.nodes:
            weighted.add_node(node, weight=1)
        for a, b in graph.edges:
            weighted.add_edge(a, b, weight=1)

        levels = self._coarsen(weighted)
        coarsest = levels[-1].graph
        assignment = self._initial_partition(coarsest)
        assignment = self._refine(coarsest, assignment)

        for level_index in range(len(levels) - 2, -1, -1):
            finer = levels[level_index]
            # ``finer.projection`` maps this level's nodes to the nodes of the
            # next (coarser) level, whose assignment we already know.
            projection = finer.projection or {}
            assignment = {
                node: assignment[projection[node]] for node in finer.graph.nodes
            }
            assignment = self._refine(finer.graph, assignment)

        result = PartitionResult(assignment, self.num_parts)
        result.validate_covers(graph)
        return result

    # ------------------------------------------------------------------ #
    # Coarsening
    # ------------------------------------------------------------------ #

    def _coarsen(self, graph: nx.Graph) -> List[_Level]:
        levels = [_Level(graph)]
        rng = make_rng(self.seed)
        target = max(4 * self.num_parts, 32)
        while levels[-1].graph.number_of_nodes() > target:
            finer = levels[-1].graph
            matching = self._heavy_edge_matching(finer, rng)
            if not matching:
                break
            coarser, projection = self._contract(finer, matching)
            if coarser.number_of_nodes() >= finer.number_of_nodes():
                break
            levels[-1].projection = projection
            levels.append(_Level(coarser))
        return levels

    @staticmethod
    def _heavy_edge_matching(graph: nx.Graph, rng) -> Dict[int, int]:
        """Return a matching (node -> partner) preferring heavy edges."""
        nodes = list(graph.nodes)
        rng.shuffle(nodes)
        matched: Dict[int, int] = {}
        for node in nodes:
            if node in matched:
                continue
            best_partner = None
            best_weight = -1.0
            for neighbour, data in graph[node].items():
                if neighbour in matched or neighbour == node:
                    continue
                weight = data.get("weight", 1.0)
                if weight > best_weight:
                    best_weight = weight
                    best_partner = neighbour
            if best_partner is not None:
                matched[node] = best_partner
                matched[best_partner] = node
        return matched

    @staticmethod
    def _contract(
        graph: nx.Graph, matching: Dict[int, int]
    ) -> Tuple[nx.Graph, Dict[int, int]]:
        """Contract matched pairs into super-nodes."""
        projection: Dict[int, int] = {}
        next_id = 0
        for node in graph.nodes:
            if node in projection:
                continue
            partner = matching.get(node)
            projection[node] = next_id
            if partner is not None and partner not in projection:
                projection[partner] = next_id
            next_id += 1

        coarser = nx.Graph()
        for node in graph.nodes:
            super_node = projection[node]
            if not coarser.has_node(super_node):
                coarser.add_node(super_node, weight=0)
            coarser.nodes[super_node]["weight"] += graph.nodes[node].get("weight", 1)
        for a, b, data in graph.edges(data=True):
            ca, cb = projection[a], projection[b]
            if ca == cb:
                continue
            weight = data.get("weight", 1.0)
            if coarser.has_edge(ca, cb):
                coarser[ca][cb]["weight"] += weight
            else:
                coarser.add_edge(ca, cb, weight=weight)
        return coarser, projection

    # ------------------------------------------------------------------ #
    # Initial partition
    # ------------------------------------------------------------------ #

    def _max_part_weight(self, total_weight: float) -> float:
        ideal = total_weight / self.num_parts
        # Always allow at least one extra unit so whole nodes fit.
        return max(self.imbalance * ideal, ideal + 1.0)

    def _initial_partition(self, graph: nx.Graph) -> Dict[int, int]:
        """Balanced region growing on the coarsest graph."""
        rng = make_rng(self.seed + 1)
        total_weight = sum(graph.nodes[n].get("weight", 1) for n in graph.nodes)
        limit = self._max_part_weight(total_weight)

        assignment: Dict[int, int] = {}
        part_weight = [0.0] * self.num_parts
        unassigned = set(graph.nodes)

        nodes_by_degree = sorted(
            graph.nodes, key=lambda n: -graph.degree(n, weight="weight")
        )
        for part in range(self.num_parts):
            if not unassigned:
                break
            # Seed with the highest-degree unassigned node.
            seed_node = next(n for n in nodes_by_degree if n in unassigned)
            frontier = [seed_node]
            while frontier and part_weight[part] < total_weight / self.num_parts:
                node = frontier.pop(0)
                if node not in unassigned:
                    continue
                weight = graph.nodes[node].get("weight", 1)
                if part_weight[part] + weight > limit:
                    continue
                assignment[node] = part
                part_weight[part] += weight
                unassigned.discard(node)
                neighbours = [n for n in graph.neighbors(node) if n in unassigned]
                rng.shuffle(neighbours)
                frontier.extend(neighbours)

        # Any leftovers go to the lightest part that can take them.
        for node in sorted(unassigned):
            weight = graph.nodes[node].get("weight", 1)
            part = min(range(self.num_parts), key=lambda p: part_weight[p])
            assignment[node] = part
            part_weight[part] += weight
        return assignment

    # ------------------------------------------------------------------ #
    # Refinement
    # ------------------------------------------------------------------ #

    def _refine(self, graph: nx.Graph, assignment: Dict[int, int]) -> Dict[int, int]:
        """FM-style boundary refinement respecting the imbalance limit."""
        assignment = dict(assignment)
        total_weight = sum(graph.nodes[n].get("weight", 1) for n in graph.nodes)
        limit = self._max_part_weight(total_weight)
        part_weight = [0.0] * self.num_parts
        for node, part in assignment.items():
            part_weight[part] += graph.nodes[node].get("weight", 1)

        for _ in range(self.refinement_passes):
            moved_any = False
            boundary = [
                node
                for node in graph.nodes
                if any(assignment[n] != assignment[node] for n in graph.neighbors(node))
            ]
            for node in boundary:
                current = assignment[node]
                weight = graph.nodes[node].get("weight", 1)
                # Connectivity of this node to every part.
                connectivity: Dict[int, float] = {}
                for neighbour, data in graph[node].items():
                    connectivity.setdefault(assignment[neighbour], 0.0)
                    connectivity[assignment[neighbour]] += data.get("weight", 1.0)
                internal = connectivity.get(current, 0.0)
                best_part = current
                best_gain = 0.0
                for part, external in connectivity.items():
                    if part == current:
                        continue
                    if part_weight[part] + weight > limit:
                        continue
                    # Do not empty a part entirely.
                    if part_weight[current] - weight <= 0:
                        continue
                    gain = external - internal
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_part = part
                if best_part != current:
                    assignment[node] = best_part
                    part_weight[current] -= weight
                    part_weight[best_part] += weight
                    moved_any = True
            if not moved_any:
                break
        return assignment


def partition_graph(
    graph: nx.Graph,
    num_parts: int,
    imbalance: float = 1.0,
    seed: int = 0,
) -> PartitionResult:
    """Convenience wrapper around :class:`MultilevelPartitioner`."""
    partitioner = MultilevelPartitioner(num_parts, imbalance=imbalance, seed=seed)
    return partitioner.partition(graph)
