"""Multilevel k-way graph partitioning (METIS-style, pure Python).

The paper's Algorithm 2 starts from a balanced partition produced by the
METIS library (multilevel k-way partitioning, Karypis & Kumar).  METIS is a
C library that is not available in this environment, so this module
implements the same algorithmic scheme from scratch:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the
   graph is small (a few times the number of parts);
2. **Initial partition** — balanced region growing (greedy BFS) on the
   coarsest graph;
3. **Uncoarsening + refinement** — project the partition back level by
   level and improve it with Fiduccia–Mattheyses-style boundary moves that
   reduce the cut while respecting the imbalance constraint
   ``max part weight <= alpha * total weight / k``.

Internally the hierarchy lives in flat adjacency arrays (METIS's own
CSR-style representation): nodes are dense integer ids in the input graph's
iteration order, each level keeps parallel neighbour/weight lists plus a
numpy CSR view for the vectorised boundary scans, and ``nx.Graph`` appears
only at the public API boundary.  Every loop mirrors the iteration order of
the original networkx implementation (adjacency insertion order, node
insertion order, label-sorted leftovers), so the partitioner produces
bit-identical assignments for a fixed seed.

The partitioner is deterministic for a fixed seed and is validated in the
test suite against the balance constraint, cut-coverage invariants, and
(on structured graphs) against known good cuts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.obs.trace import TRACER
from repro.partition.types import PartitionResult
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng

__all__ = ["MultilevelPartitioner", "partition_graph"]


class _ArrayGraph:
    """Undirected weighted multigraph-free graph over dense integer ids.

    Adjacency lists preserve edge insertion order (matching networkx
    semantics); repeated ``add_edge`` calls accumulate the weight in place.
    ``labels`` maps ids back to the caller's node objects on level 0 and is
    the identity on coarser levels.
    """

    __slots__ = (
        "num_nodes",
        "node_weight",
        "adj",
        "adj_weight",
        "labels",
        "projection",
        "_adj_pos",
        "_csr",
    )

    def __init__(self, num_nodes: int, labels: Optional[List[object]] = None) -> None:
        self.num_nodes = num_nodes
        self.node_weight: List[float] = [0] * num_nodes
        self.adj: List[List[int]] = [[] for _ in range(num_nodes)]
        self.adj_weight: List[List[float]] = [[] for _ in range(num_nodes)]
        self.labels = labels
        # Mapping from this level's nodes to the coarser level's nodes.
        self.projection: Optional[List[int]] = None
        self._adj_pos: List[Dict[int, int]] = [{} for _ in range(num_nodes)]
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def add_edge(self, u: int, v: int, weight) -> None:
        pos = self._adj_pos[u].get(v)
        if pos is None:
            self._adj_pos[u][v] = len(self.adj[u])
            self.adj[u].append(v)
            self.adj_weight[u].append(weight)
            if v != u:  # a self-loop keeps a single adjacency entry, as in nx
                self._adj_pos[v][u] = len(self.adj[v])
                self.adj[v].append(u)
                self.adj_weight[v].append(weight)
        else:
            self.adj_weight[u][pos] += weight
            if v != u:
                self.adj_weight[v][self._adj_pos[v][u]] += weight

    def iter_edges(self):
        """Yield ``(u, v, weight)`` in networkx ``edges()`` order.

        networkx reports each undirected edge once, from the endpoint that
        comes first in node order, in that endpoint's adjacency order — with
        dense ids that is "neighbours at or after me" (self-loops included).
        """
        for u in range(self.num_nodes):
            adj_u = self.adj[u]
            weight_u = self.adj_weight[u]
            for position, v in enumerate(adj_u):
                if v >= u:
                    yield u, v, weight_u[position]

    def weighted_degree(self, node: int) -> float:
        """Weighted degree, with self-loops counted twice (nx semantics)."""
        total = sum(self.adj_weight[node])
        self_pos = self._adj_pos[node].get(node)
        if self_pos is not None:
            total += self.adj_weight[node][self_pos]
        return total

    def label_of(self, node: int):
        return self.labels[node] if self.labels is not None else node

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sources, targets) flat edge-endpoint arrays, built lazily.

        One entry per directed adjacency slot (both directions of every
        edge), in adjacency order — the vectorised boundary scan in the FM
        refinement consumes exactly this.
        """
        if self._csr is None:
            degrees = np.fromiter(
                (len(neighbours) for neighbours in self.adj),
                dtype=np.int64,
                count=self.num_nodes,
            )
            sources = np.repeat(np.arange(self.num_nodes, dtype=np.int64), degrees)
            targets = np.fromiter(
                (v for neighbours in self.adj for v in neighbours),
                dtype=np.int64,
                count=int(degrees.sum()),
            )
            self._csr = (sources, targets)
        return self._csr


class MultilevelPartitioner:
    """METIS-style multilevel k-way partitioner with an imbalance factor.

    Args:
        num_parts: Number of parts (QPUs).
        imbalance: Allowed imbalance ``alpha``; every part's weight must stay
            below ``alpha * total_weight / num_parts``.  ``1.0`` requests a
            perfectly balanced partition (rounded up to whole nodes).
        seed: Seed for the randomised matching / tie-breaking.
        refinement_passes: Number of FM boundary passes per level.
        capacities: Optional relative capacity per part (e.g. RSG cells per
            layer of a heterogeneous QPU fleet).  Part ``p``'s target weight
            becomes ``total * capacities[p] / sum(capacities)`` instead of
            the uniform ``total / num_parts``.  ``None`` (or an all-equal
            sequence) keeps the exact uniform code path, bit-identical to
            the homogeneous partitioner.
        comm_costs: Optional ``num_parts x num_parts`` communication-cost
            matrix of the interconnect (e.g. the pipelined relay volume —
            QPU, buffer and capacity-weighted link cycles — one sync
            between the parts costs).  FM refinement then scores a
            boundary move by the *cost-weighted* cut it leaves behind (an
            edge cut between parts ``p`` and ``q`` costs
            ``weight * comm_costs[p][q]``), steering cut edges onto
            cheap-to-reach QPUs.  ``None`` (or any matrix whose
            off-diagonal entries are all equal, e.g. a uniform
            fully-connected interconnect) keeps the classic
            external-minus-internal gain, bit-identical to the seed
            implementation.
    """

    def __init__(
        self,
        num_parts: int,
        imbalance: float = 1.0,
        seed: int = 0,
        refinement_passes: int = 4,
        capacities: Optional[Sequence[float]] = None,
        comm_costs: Optional[Sequence[Sequence[float]]] = None,
    ) -> None:
        if num_parts < 1:
            raise PartitionError("num_parts must be at least 1")
        if imbalance < 1.0:
            raise PartitionError("imbalance factor must be >= 1.0")
        self.num_parts = num_parts
        self.imbalance = imbalance
        self.seed = seed
        self.refinement_passes = refinement_passes

        # Degenerate inputs collapse to the uniform/topology-free paths so
        # homogeneous fully-connected systems reproduce the seed partitioner
        # bit for bit (no float arithmetic reordering).
        self.capacities: Optional[Tuple[float, ...]] = None
        if capacities is not None:
            if len(capacities) != num_parts:
                raise PartitionError(
                    f"capacities lists {len(capacities)} parts, expected {num_parts}"
                )
            if any(value <= 0 for value in capacities):
                raise PartitionError("part capacities must be positive")
            if any(value != capacities[0] for value in capacities):
                total = float(sum(capacities))
                self.capacities = tuple(float(v) / total for v in capacities)
        self.comm_costs: Optional[Tuple[Tuple[float, ...], ...]] = None
        if comm_costs is not None:
            matrix = tuple(tuple(float(h) for h in row) for row in comm_costs)
            if len(matrix) != num_parts or any(len(row) != num_parts for row in matrix):
                raise PartitionError("comm_costs must be a num_parts x num_parts matrix")
            off_diagonal = [
                matrix[p][q]
                for p in range(num_parts)
                for q in range(num_parts)
                if p != q
            ]
            if any(value != off_diagonal[0] for value in off_diagonal):
                self.comm_costs = matrix

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def partition(self, graph: nx.Graph) -> PartitionResult:
        """Partition ``graph`` into ``num_parts`` parts."""
        with TRACER.span(
            "partition.multilevel",
            nodes=graph.number_of_nodes(),
            parts=self.num_parts,
        ):
            return self._partition(graph)

    def _partition(self, graph: nx.Graph) -> PartitionResult:
        if graph.number_of_nodes() == 0:
            return PartitionResult({}, self.num_parts)
        if self.num_parts == 1:
            return PartitionResult({node: 0 for node in graph.nodes}, 1)
        if graph.number_of_nodes() < self.num_parts:
            raise PartitionError(
                f"cannot split {graph.number_of_nodes()} nodes into "
                f"{self.num_parts} parts"
            )

        # Array form: dense ids in node-iteration order, unit node and edge
        # weights (the partitioner works on its own weighting, as before).
        labels = list(graph.nodes)
        index = {label: i for i, label in enumerate(labels)}
        weighted = _ArrayGraph(len(labels), labels=labels)
        weighted.node_weight = [1] * len(labels)
        for a, b in graph.edges:
            weighted.add_edge(index[a], index[b], 1)

        with TRACER.span("partition.coarsen") as coarsen_span:
            levels = self._coarsen(weighted)
            coarsen_span.set(levels=len(levels))
        OP_COUNTERS.add("partition.calls")
        OP_COUNTERS.add("partition.levels", len(levels))
        coarsest = levels[-1]
        with TRACER.span("partition.refine", levels=len(levels)):
            assignment = self._initial_partition(coarsest)
            assignment = self._refine(coarsest, assignment)

            for level_index in range(len(levels) - 2, -1, -1):
                finer = levels[level_index]
                # ``finer.projection`` maps this level's nodes to the nodes
                # of the next (coarser) level, whose assignment we already
                # know.
                projection = finer.projection or []
                assignment = [
                    assignment[projection[node]] for node in range(finer.num_nodes)
                ]
                assignment = self._refine(finer, assignment)

        result = PartitionResult(
            {labels[node]: part for node, part in enumerate(assignment)},
            self.num_parts,
        )
        result.validate_covers(graph)
        return result

    # ------------------------------------------------------------------ #
    # Coarsening
    # ------------------------------------------------------------------ #

    def _coarsen(self, graph: _ArrayGraph) -> List[_ArrayGraph]:
        levels = [graph]
        rng = make_rng(self.seed)
        target = max(4 * self.num_parts, 32)
        while levels[-1].num_nodes > target:
            finer = levels[-1]
            matching = self._heavy_edge_matching(finer, rng)
            if not any(partner >= 0 for partner in matching):
                break
            coarser, projection = self._contract(finer, matching)
            if coarser.num_nodes >= finer.num_nodes:
                break
            finer.projection = projection
            levels.append(coarser)
        return levels

    @staticmethod
    def _heavy_edge_matching(graph: _ArrayGraph, rng) -> List[int]:
        """Return a matching (node -> partner id, -1 unmatched) preferring heavy edges."""
        nodes = list(range(graph.num_nodes))
        rng.shuffle(nodes)
        matched = [-1] * graph.num_nodes
        for node in nodes:
            if matched[node] >= 0:
                continue
            best_partner = -1
            best_weight = -1.0
            for neighbour, weight in zip(graph.adj[node], graph.adj_weight[node]):
                if matched[neighbour] >= 0 or neighbour == node:
                    continue
                if weight > best_weight:
                    best_weight = weight
                    best_partner = neighbour
            if best_partner >= 0:
                matched[node] = best_partner
                matched[best_partner] = node
        return matched

    @staticmethod
    def _contract(
        graph: _ArrayGraph, matching: List[int]
    ) -> Tuple[_ArrayGraph, List[int]]:
        """Contract matched pairs into super-nodes."""
        projection = [-1] * graph.num_nodes
        next_id = 0
        for node in range(graph.num_nodes):
            if projection[node] >= 0:
                continue
            partner = matching[node]
            projection[node] = next_id
            if partner >= 0 and projection[partner] < 0:
                projection[partner] = next_id
            next_id += 1

        coarser = _ArrayGraph(next_id)
        for node in range(graph.num_nodes):
            coarser.node_weight[projection[node]] += graph.node_weight[node]
        for a, b, weight in graph.iter_edges():
            ca, cb = projection[a], projection[b]
            if ca == cb:
                continue
            coarser.add_edge(ca, cb, weight)
        return coarser, projection

    # ------------------------------------------------------------------ #
    # Initial partition
    # ------------------------------------------------------------------ #

    def _max_part_weight(self, total_weight: float) -> float:
        ideal = total_weight / self.num_parts
        # Always allow at least one extra unit so whole nodes fit.
        return max(self.imbalance * ideal, ideal + 1.0)

    def _part_targets(self, total_weight: float) -> List[float]:
        """Per-part ideal weights (capacity shares; uniform when None)."""
        if self.capacities is None:
            return [total_weight / self.num_parts] * self.num_parts
        return [total_weight * share for share in self.capacities]

    def _part_limits(self, total_weight: float) -> List[float]:
        """Per-part weight ceilings under the imbalance factor."""
        if self.capacities is None:
            return [self._max_part_weight(total_weight)] * self.num_parts
        return [
            max(self.imbalance * target, target + 1.0)
            for target in self._part_targets(total_weight)
        ]

    def _initial_partition(self, graph: _ArrayGraph) -> List[int]:
        """Balanced region growing on the coarsest graph."""
        rng = make_rng(self.seed + 1)
        total_weight = sum(graph.node_weight)
        if self.capacities is None:
            limits = None
            limit = self._max_part_weight(total_weight)
        else:
            limits = self._part_limits(total_weight)
        targets = self._part_targets(total_weight)

        assignment = [-1] * graph.num_nodes
        part_weight = [0.0] * self.num_parts
        unassigned = set(range(graph.num_nodes))

        nodes_by_degree = sorted(
            range(graph.num_nodes), key=lambda n: -graph.weighted_degree(n)
        )
        for part in range(self.num_parts):
            if not unassigned:
                break
            part_limit = limit if limits is None else limits[part]
            # Seed with the highest-degree unassigned node.
            seed_node = next(n for n in nodes_by_degree if n in unassigned)
            frontier = [seed_node]
            cursor = 0  # frontier.pop(0) without the O(n) list shift
            while cursor < len(frontier) and part_weight[part] < targets[part]:
                node = frontier[cursor]
                cursor += 1
                if node not in unassigned:
                    continue
                weight = graph.node_weight[node]
                if part_weight[part] + weight > part_limit:
                    continue
                assignment[node] = part
                part_weight[part] += weight
                unassigned.discard(node)
                neighbours = [n for n in graph.adj[node] if n in unassigned]
                rng.shuffle(neighbours)
                frontier.extend(neighbours)

        # Any leftovers go to the part with the most free capacity.  Sort by
        # the caller's labels to match the original label-ordered sweep; the
        # uniform branch keeps the seed's lightest-part rule verbatim.
        for node in sorted(unassigned, key=graph.label_of):
            weight = graph.node_weight[node]
            if limits is None:
                part = min(range(self.num_parts), key=lambda p: part_weight[p])
            else:
                part = min(
                    range(self.num_parts),
                    key=lambda p: part_weight[p] - targets[p],
                )
            assignment[node] = part
            part_weight[part] += weight
        return assignment

    # ------------------------------------------------------------------ #
    # Refinement
    # ------------------------------------------------------------------ #

    def _refine(self, graph: _ArrayGraph, assignment: List[int]) -> List[int]:
        """FM-style boundary refinement respecting the imbalance limit.

        With ``comm_costs`` set, the gain of moving a boundary node weighs
        every cut edge by the communication volume between the endpoint
        parts, so a move that turns an expensive multi-hop cut into a cheap
        direct-link cut is profitable even when the plain cut size is
        unchanged.  The topology-free branch is the seed implementation
        verbatim.
        """
        assignment = list(assignment)
        total_weight = sum(graph.node_weight)
        if self.capacities is None:
            uniform_limit = self._max_part_weight(total_weight)
            limits = [uniform_limit] * self.num_parts
        else:
            limits = self._part_limits(total_weight)
        hops = self.comm_costs
        part_weight = [0.0] * self.num_parts
        for node, part in enumerate(assignment):
            part_weight[part] += graph.node_weight[node]

        sources, targets = graph.csr()
        adj = graph.adj
        adj_weight = graph.adj_weight
        node_weight = graph.node_weight

        moves = 0
        boundary_scanned = 0
        for _ in range(self.refinement_passes):
            moved_any = False
            # Vectorised boundary scan: a node is boundary iff any incident
            # edge crosses parts (np.unique keeps ascending node order).
            part_array = np.asarray(assignment, dtype=np.int64)
            if len(sources):
                crossing = part_array[sources] != part_array[targets]
                boundary = np.unique(sources[crossing]).tolist()
            else:
                boundary = []
            boundary_scanned += len(boundary)
            for node in boundary:
                current = assignment[node]
                weight = node_weight[node]
                # Connectivity of this node to every part (first-seen order).
                connectivity: Dict[int, float] = {}
                for neighbour, edge_weight in zip(adj[node], adj_weight[node]):
                    part = assignment[neighbour]
                    connectivity[part] = connectivity.get(part, 0.0) + edge_weight
                internal = connectivity.get(current, 0.0)
                best_part = current
                best_gain = 0.0
                if hops is None:
                    for part, external in connectivity.items():
                        if part == current:
                            continue
                        if part_weight[part] + weight > limits[part]:
                            continue
                        # Do not empty a part entirely.
                        if part_weight[current] - weight <= 0:
                            continue
                        gain = external - internal
                        if gain > best_gain + 1e-12:
                            best_gain = gain
                            best_part = part
                else:
                    current_cost = sum(
                        connected * hops[current][part]
                        for part, connected in connectivity.items()
                    )
                    for part in connectivity:
                        if part == current:
                            continue
                        if part_weight[part] + weight > limits[part]:
                            continue
                        if part_weight[current] - weight <= 0:
                            continue
                        hop_row = hops[part]
                        candidate_cost = sum(
                            connected * hop_row[other]
                            for other, connected in connectivity.items()
                        )
                        gain = current_cost - candidate_cost
                        if gain > best_gain + 1e-12:
                            best_gain = gain
                            best_part = part
                if best_part != current:
                    assignment[node] = best_part
                    part_weight[current] -= weight
                    part_weight[best_part] += weight
                    moves += 1
                    moved_any = True
            if not moved_any:
                break
        OP_COUNTERS.add("partition.boundary_nodes", boundary_scanned)
        OP_COUNTERS.add("partition.refine_moves", moves)
        return assignment


def partition_graph(
    graph: nx.Graph,
    num_parts: int,
    imbalance: float = 1.0,
    seed: int = 0,
    capacities: Optional[Sequence[float]] = None,
    comm_costs: Optional[Sequence[Sequence[float]]] = None,
) -> PartitionResult:
    """Convenience wrapper around :class:`MultilevelPartitioner`."""
    partitioner = MultilevelPartitioner(
        num_parts,
        imbalance=imbalance,
        seed=seed,
        capacities=capacities,
        comm_costs=comm_costs,
    )
    return partitioner.partition(graph)
