"""Spectral partitioning (recursive Fiedler bisection).

An alternative to the multilevel partitioner, provided both as a
cross-check in the test suite and as a user-selectable strategy: the graph
is recursively bisected along the Fiedler vector (the eigenvector of the
graph Laplacian associated with the second-smallest eigenvalue), which is a
classical approach to small-cut balanced partitioning.  It is slower than
the multilevel scheme on large graphs but needs no tuning.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

import networkx as nx
import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.partition.types import PartitionResult
from repro.utils.errors import PartitionError

__all__ = ["fiedler_bisection", "spectral_partition"]


def fiedler_bisection(graph: nx.Graph) -> Set[int]:
    """Split ``graph`` into two halves along its Fiedler vector.

    Returns the node set of one half (the nodes whose Fiedler component is
    below the median).  Falls back to an order-based split for graphs that
    are too small or degenerate for an eigendecomposition.
    """
    nodes = list(graph.nodes)
    if len(nodes) < 4 or graph.number_of_edges() == 0:
        half = len(nodes) // 2
        return set(nodes[:half])

    laplacian = nx.laplacian_matrix(graph, nodelist=nodes).astype(float)
    try:
        if len(nodes) > 32:
            # Shift-invert around 0 converges quickly for the smallest
            # eigenpairs of a graph Laplacian.
            eigenvalues, eigenvectors = scipy.sparse.linalg.eigsh(
                scipy.sparse.csc_matrix(laplacian), k=2, sigma=-1e-3, which="LM"
            )
            fiedler = eigenvectors[:, np.argsort(eigenvalues)[-1]]
        else:
            eigenvalues, eigenvectors = scipy.linalg.eigh(laplacian.toarray())
            fiedler = eigenvectors[:, 1]
    except (scipy.sparse.linalg.ArpackNoConvergence, ValueError, RuntimeError):
        half = len(nodes) // 2
        return set(nodes[:half])

    order = np.argsort(fiedler)
    half = len(nodes) // 2
    return {nodes[index] for index in order[:half]}


def spectral_partition(graph: nx.Graph, num_parts: int) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` parts by recursive bisection.

    ``num_parts`` does not have to be a power of two: at every bisection the
    target sizes are split proportionally.
    """
    if num_parts < 1:
        raise PartitionError("num_parts must be at least 1")
    if graph.number_of_nodes() == 0:
        return PartitionResult({}, num_parts)
    if graph.number_of_nodes() < num_parts:
        raise PartitionError(
            f"cannot split {graph.number_of_nodes()} nodes into {num_parts} parts"
        )

    assignment: Dict[int, int] = {}
    next_part = 0

    def recurse(nodes: Sequence[int], parts: int) -> None:
        nonlocal next_part
        if parts == 1 or len(nodes) <= 1:
            part = next_part
            next_part += 1
            for node in nodes:
                assignment[node] = part
            return
        subgraph = graph.subgraph(nodes)
        left_parts = parts // 2
        right_parts = parts - left_parts
        left = fiedler_bisection(subgraph)
        # Re-balance the halves to the proportional target size.
        target_left = round(len(nodes) * left_parts / parts)
        ordered = sorted(nodes, key=lambda n: (n not in left, n))
        left_nodes = ordered[:target_left]
        right_nodes = ordered[target_left:]
        recurse(left_nodes, left_parts)
        recurse(right_nodes, right_parts)

    recurse(list(graph.nodes), num_parts)
    result = PartitionResult(assignment, num_parts)
    result.validate_covers(graph)
    return result
