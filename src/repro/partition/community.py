"""Community detection by modularity optimisation.

The paper contrasts strict k-way partitioners with community-detection
algorithms (Louvain / Leiden) that maximise modularity but do not control
the number or balance of parts.  This module provides a self-contained
Louvain implementation (used by the test-suite to cross-check modularity
behaviour and available to users who want structure-first partitions) and a
simple greedy agglomerative alternative.  A thin wrapper over networkx's
Louvain is used as an oracle in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from repro.partition.modularity import modularity
from repro.utils.rng import make_rng

__all__ = ["louvain_communities", "greedy_modularity_communities"]


def _one_louvain_level(graph: nx.Graph, seed: int) -> Dict[int, int]:
    """One local-moving phase of Louvain; returns node -> community."""
    rng = make_rng(seed)
    nodes = list(graph.nodes)
    community: Dict[int, int] = {node: index for index, node in enumerate(nodes)}
    degree = dict(graph.degree(weight="weight"))
    total_weight = graph.size(weight="weight")
    if total_weight == 0:
        return community
    community_degree: Dict[int, float] = {community[n]: degree[n] for n in nodes}

    improved = True
    sweeps = 0
    while improved and sweeps < 20:
        improved = False
        sweeps += 1
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            current = community[node]
            k_i = degree[node]
            # Weights from node to each neighbouring community.
            neighbour_weights: Dict[int, float] = {}
            for neighbour, data in graph[node].items():
                if neighbour == node:
                    continue
                weight = data.get("weight", 1.0)
                neighbour_weights.setdefault(community[neighbour], 0.0)
                neighbour_weights[community[neighbour]] += weight
            # Remove the node from its community.
            community_degree[current] -= k_i
            best_community = current
            best_gain = neighbour_weights.get(current, 0.0) - (
                community_degree[current] * k_i / (2.0 * total_weight)
            )
            for candidate, weight_to in neighbour_weights.items():
                if candidate == current:
                    continue
                gain = weight_to - community_degree[candidate] * k_i / (2.0 * total_weight)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community[node] = best_community
            community_degree.setdefault(best_community, 0.0)
            community_degree[best_community] += k_i
            if best_community != current:
                improved = True
    return community


def _aggregate(graph: nx.Graph, community: Dict[int, int]) -> nx.Graph:
    """Collapse every community into a single weighted super-node.

    Intra-community weight is preserved as a self-loop so that the next
    Louvain level sees the correct degrees and internal densities.
    """
    aggregated = nx.Graph()
    aggregated.add_nodes_from(set(community.values()))
    for a, b, data in graph.edges(data=True):
        weight = data.get("weight", 1.0)
        ca, cb = community[a], community[b]
        if aggregated.has_edge(ca, cb):
            aggregated[ca][cb]["weight"] += weight
        else:
            aggregated.add_edge(ca, cb, weight=weight)
    return aggregated


def louvain_communities(
    graph: nx.Graph, seed: int = 0, max_levels: int = 10
) -> List[Set[int]]:
    """Detect communities with the Louvain method.

    Returns a list of node sets.  The implementation follows the standard
    two-phase scheme: local moving until no gain, then aggregation, repeated
    until the community structure stops changing.
    """
    if graph.number_of_nodes() == 0:
        return []
    if graph.number_of_edges() == 0:
        return [{node} for node in graph.nodes]

    mapping: Dict[int, int] = {node: node for node in graph.nodes}
    working = nx.Graph()
    working.add_nodes_from(graph.nodes)
    working.add_edges_from((a, b, {"weight": 1.0}) for a, b in graph.edges)

    for level in range(max_levels):
        community = _one_louvain_level(working, seed=seed + level)
        num_communities = len(set(community.values()))
        if num_communities == working.number_of_nodes():
            break
        mapping = {node: community[mapping[node]] for node in mapping}
        working = _aggregate(working, community)

    groups: Dict[int, Set[int]] = {}
    for node, comm in mapping.items():
        groups.setdefault(comm, set()).add(node)
    return list(groups.values())


def greedy_modularity_communities(graph: nx.Graph, target_parts: Optional[int] = None) -> List[Set[int]]:
    """Agglomerative modularity clustering (CNM-style, simplified).

    Starts from singleton communities and repeatedly merges the pair of
    connected communities with the best modularity gain, stopping when no
    merge improves modularity (or when ``target_parts`` communities remain).
    Quadratic and intended for small graphs and tests; use
    :func:`louvain_communities` for anything large.
    """
    communities: List[Set[int]] = [{node} for node in graph.nodes]
    if not communities:
        return []

    def assignment_of(groups: List[Set[int]]) -> Dict[int, int]:
        return {node: index for index, group in enumerate(groups) for node in group}

    current_q = modularity(graph, assignment_of(communities))
    while len(communities) > 1:
        if target_parts is not None and len(communities) <= target_parts:
            break
        best_pair = None
        best_q = current_q
        for i in range(len(communities)):
            for j in range(i + 1, len(communities)):
                if not any(
                    graph.has_edge(a, b) for a in communities[i] for b in communities[j]
                ):
                    continue
                merged = (
                    communities[:i]
                    + communities[i + 1 : j]
                    + communities[j + 1 :]
                    + [communities[i] | communities[j]]
                )
                q = modularity(graph, assignment_of(merged))
                if q > best_q + 1e-12 or (
                    target_parts is not None and len(communities) > target_parts and best_pair is None
                ):
                    best_q = q
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        merged_group = communities[i] | communities[j]
        communities = [
            group for index, group in enumerate(communities) if index not in (i, j)
        ]
        communities.append(merged_group)
        current_q = best_q
    return communities
