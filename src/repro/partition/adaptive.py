"""Adaptive graph partitioning — Algorithm 2 of the paper.

The adaptive partitioner navigates the trade-off between strict workload
balance (what a k-way partitioner enforces) and subgraph structural quality
(what community detection maximises).  Starting from a perfectly balanced
partition (``alpha = 1``), it iteratively relaxes the imbalance constraint by
a multiplicative step ``gamma``, re-partitions, and keeps the result when the
modularity gain exceeds ``epsilon_Q``; the search stops when the gain
stagnates or the maximum imbalance ``alpha_max`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.obs.trace import TRACER
from repro.partition.modularity import modularity
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.types import PartitionResult
from repro.utils.errors import PartitionError

__all__ = ["AdaptivePartitionConfig", "AdaptivePartitioner", "AdaptiveSearchTrace"]


@dataclass(frozen=True)
class AdaptivePartitionConfig:
    """Parameters of Algorithm 2.

    Attributes:
        num_parts: Number of QPUs to partition across.
        epsilon_q: Modularity-improvement threshold for accepting a more
            imbalanced partition (paper default 0.01).
        alpha_max: Maximum allowed imbalance factor (paper default 1.5).
        gamma: Multiplicative step applied to the imbalance factor
            (paper default 1.02).
        max_iterations: Safety bound on the search loop.
        seed: Seed forwarded to the underlying multilevel partitioner.
        capacities: Optional relative per-part capacities (heterogeneous QPU
            fleets); forwarded to the multilevel partitioner, which balances
            part weights against capacity shares instead of uniform ``1/k``.
        comm_costs: Optional inter-part communication-volume matrix of the
            interconnect (relay QPU + buffer + capacity-weighted link
            cycles per sync); FM refinement weights cut edges by it so
            cuts land on cheap-to-reach QPUs.  ``None`` keeps the
            topology-free behaviour (fully-connected systems).
    """

    num_parts: int
    epsilon_q: float = 0.01
    alpha_max: float = 1.5
    gamma: float = 1.02
    max_iterations: int = 64
    seed: int = 0
    capacities: Optional[Tuple[float, ...]] = None
    comm_costs: Optional[Tuple[Tuple[float, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.num_parts < 1:
            raise PartitionError("num_parts must be at least 1")
        if self.gamma <= 1.0:
            raise PartitionError("gamma must be greater than 1")
        if self.alpha_max < 1.0:
            raise PartitionError("alpha_max must be at least 1")


@dataclass
class AdaptiveSearchTrace:
    """Record of one Algorithm 2 iteration (for reports and Figure 9)."""

    alpha: float
    modularity: float
    cut_size: int
    imbalance: float
    accepted: bool


@dataclass
class AdaptivePartitioner:
    """Adaptive graph partitioning (Algorithm 2)."""

    config: AdaptivePartitionConfig
    trace: List[AdaptiveSearchTrace] = field(default_factory=list)

    def partition(self, graph: nx.Graph) -> PartitionResult:
        """Run the adaptive search and return the best partition found."""
        with TRACER.span(
            "partition.adaptive",
            nodes=graph.number_of_nodes(),
            parts=self.config.num_parts,
        ) as search_span:
            result = self._partition(graph)
            search_span.set(
                passes=len(self.trace), modularity=round(self.best_modularity, 6)
            )
        return result

    def _partition(self, graph: nx.Graph) -> PartitionResult:
        config = self.config
        self.trace = []
        if config.num_parts == 1 or graph.number_of_nodes() <= config.num_parts:
            return MultilevelPartitioner(
                config.num_parts,
                seed=config.seed,
                capacities=config.capacities,
                comm_costs=config.comm_costs,
            ).partition(graph)

        alpha = 1.0
        best_partition: Optional[PartitionResult] = None
        best_q = -1.0
        previous_q: Optional[float] = None

        for _ in range(config.max_iterations):
            partitioner = MultilevelPartitioner(
                config.num_parts,
                imbalance=alpha,
                seed=config.seed,
                capacities=config.capacities,
                comm_costs=config.comm_costs,
            )
            candidate = partitioner.partition(graph)
            q = modularity(graph, candidate.assignment)
            accepted = q > best_q
            self.trace.append(
                AdaptiveSearchTrace(
                    alpha=alpha,
                    modularity=q,
                    cut_size=candidate.cut_size(graph),
                    imbalance=candidate.imbalance(),
                    accepted=accepted,
                )
            )
            if accepted:
                best_q = q
                best_partition = candidate

            delta_q = q - previous_q if previous_q is not None else q
            previous_q = q
            if delta_q > config.epsilon_q and alpha < config.alpha_max:
                alpha = min(alpha * config.gamma, config.alpha_max)
            elif delta_q < -config.epsilon_q:
                alpha = max(1.0, alpha / config.gamma)
            else:
                break

        assert best_partition is not None
        return best_partition

    @property
    def best_modularity(self) -> float:
        """Modularity of the best accepted partition (after :meth:`partition`)."""
        accepted = [t.modularity for t in self.trace if t.accepted]
        return max(accepted) if accepted else 0.0
