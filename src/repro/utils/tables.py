"""Plain-text table rendering for the benchmark harness.

The paper reports its evaluation as tables (Tables II-VI) and line plots
(Figures 1, 7-10).  The benchmark harness regenerates the same rows/series and
prints them with this small formatter so the output can be compared against
the paper side by side without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["Table", "format_float"]


def format_float(value: float, digits: int = 2) -> str:
    """Format ``value`` with ``digits`` decimals, dropping a trailing ``.00``."""
    text = f"{value:.{digits}f}"
    if text.endswith("." + "0" * digits):
        return text[: -(digits + 1)]
    return text


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(title="Demo", columns=["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Demo
    a | b
    --+----
    1 | 2.5
    """

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; values are stringified (floats via format_float)."""
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(format_float(value))
            else:
                rendered.append(str(value))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row has {len(rendered)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """Return the table as an aligned multi-line string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
