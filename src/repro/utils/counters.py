"""Deterministic operation counters for the compile hot path.

Wall-clock benchmarks are noisy on shared CI machines; the perf-regression
harness therefore tracks *operation counts* of the compiler's inner loops —
scheduler cycles, annealing evaluations, partitioner moves, mapper probes —
which are exact, platform-independent functions of the input (for a fixed
seed).  A regression that makes a loop quadratic again shows up as a counter
jump long before it shows up reliably in seconds.

The registry is process-global (mirroring
:data:`repro.pipeline.telemetry.TELEMETRY`) and intentionally cheap: the
hot paths call :meth:`OpCounters.add` with pre-aggregated increments (once
per cycle / pass / call), never once per element.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["OpCounters", "OP_COUNTERS"]


class OpCounters:
    """Thread-safe named integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        """Current value of one counter (0 if never touched)."""
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of every counter, sorted by name."""
        with self._lock:
            return {name: self._counts[name] for name in sorted(self._counts)}

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        current = self.snapshot()
        names = sorted(set(current) | set(baseline))
        return {
            name: current.get(name, 0) - baseline.get(name, 0) for name in names
        }

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        with self._lock:
            self._counts.clear()


#: Process-global operation-counter registry for the compile hot path.
OP_COUNTERS = OpCounters()
