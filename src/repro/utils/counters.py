"""Deterministic operation counters for the compile hot path.

Wall-clock benchmarks are noisy on shared CI machines; the perf-regression
harness therefore tracks *operation counts* of the compiler's inner loops —
scheduler cycles, annealing evaluations, partitioner moves, mapper probes —
which are exact, platform-independent functions of the input (for a fixed
seed).  A regression that makes a loop quadratic again shows up as a counter
jump long before it shows up reliably in seconds.

:class:`OpCounters` is a thin compatibility view over the unified metrics
core (:class:`repro.obs.metrics.MetricsRegistry`): every ``add`` lands in
the shared registry under the ``ops.`` namespace, so the same counters the
perf harness pins are visible to the tracer (per-span op deltas) and to the
metrics facade, without a second lock or snapshot implementation.  The view
keeps the original public API — ``add``/``get``/``snapshot``/
``delta_since``/``reset`` with un-namespaced names — byte-compatible.

The registry is process-global (mirroring
:data:`repro.pipeline.telemetry.TELEMETRY`) and intentionally cheap: the
hot paths call :meth:`OpCounters.add` with pre-aggregated increments (once
per cycle / pass / call), never once per element.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import METRICS, MetricsRegistry

__all__ = ["OpCounters", "OP_COUNTERS"]


class OpCounters:
    """Named integer counters: a namespaced view over a metrics registry."""

    #: Metric-name prefix the view owns inside the shared registry.
    NAMESPACE = "ops."

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        # A private registry by default keeps ad-hoc instances (tests,
        # scoped measurements) isolated; the process-global OP_COUNTERS
        # shares the METRICS core.
        self._registry = registry if registry is not None else MetricsRegistry()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._registry.inc(self.NAMESPACE + name, amount)

    def get(self, name: str) -> int:
        """Current value of one counter (0 if never touched)."""
        return self._registry.counter(self.NAMESPACE + name)

    def snapshot(self) -> Dict[str, int]:
        """Copy of every counter, sorted by name."""
        return self._registry.counters_with_prefix(self.NAMESPACE)

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        current = self.snapshot()
        names = sorted(set(current) | set(baseline))
        return {
            name: current.get(name, 0) - baseline.get(name, 0) for name in names
        }

    def reset(self) -> None:
        """Zero every counter in this namespace (used between benchmark phases)."""
        self._registry.reset(self.NAMESPACE)


#: Process-global operation-counter registry for the compile hot path,
#: backed by the shared :data:`repro.obs.metrics.METRICS` core.
OP_COUNTERS = OpCounters(registry=METRICS)
