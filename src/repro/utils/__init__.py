"""Shared utilities for the DC-MBQC reproduction.

This package holds small, dependency-free helpers that every other subsystem
relies on: error types, seeded random-number helpers, 2D grid geometry, and
plain-text table rendering used by the benchmark harness.
"""

from repro.utils.errors import (
    ReproError,
    CompilationError,
    PartitionError,
    SchedulingError,
    ValidationError,
)
from repro.utils.rng import make_rng, derive_seed
from repro.utils.grid import GridPoint, manhattan_distance, spiral_order, grid_points
from repro.utils.tables import Table, format_float

__all__ = [
    "ReproError",
    "CompilationError",
    "PartitionError",
    "SchedulingError",
    "ValidationError",
    "make_rng",
    "derive_seed",
    "GridPoint",
    "manhattan_distance",
    "spiral_order",
    "grid_points",
    "Table",
    "format_float",
]
