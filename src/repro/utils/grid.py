"""2D grid geometry used by the single-QPU grid mapper.

The photonic MBQC architecture arranges resource-state generators (RSGs) on a
2D grid (Section II-B of the paper); every logical resource layer is an
``L x L`` grid of cells.  This module provides the coordinate type and simple
geometric helpers (Manhattan distance, L-shaped routing paths, traversal
orders) that the placement and routing code builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = [
    "GridPoint",
    "manhattan_distance",
    "grid_points",
    "spiral_order",
    "l_shaped_path",
    "neighbors4",
]


@dataclass(frozen=True, order=True)
class GridPoint:
    """A cell on an ``L x L`` resource-state layer, addressed as (row, col)."""

    row: int
    col: int

    def shifted(self, d_row: int, d_col: int) -> "GridPoint":
        """Return the point offset by ``(d_row, d_col)``."""
        return GridPoint(self.row + d_row, self.col + d_col)

    def in_bounds(self, size: int) -> bool:
        """Return True if the point lies on a ``size x size`` grid."""
        return 0 <= self.row < size and 0 <= self.col < size


def manhattan_distance(a: GridPoint, b: GridPoint) -> int:
    """Return the Manhattan (L1) distance between two grid points."""
    return abs(a.row - b.row) + abs(a.col - b.col)


def grid_points(size: int) -> Iterator[GridPoint]:
    """Yield every point of a ``size x size`` grid in row-major order."""
    for row in range(size):
        for col in range(size):
            yield GridPoint(row, col)


def neighbors4(point: GridPoint, size: int) -> List[GridPoint]:
    """Return the 4-connected in-bounds neighbours of ``point``."""
    candidates = (
        point.shifted(-1, 0),
        point.shifted(1, 0),
        point.shifted(0, -1),
        point.shifted(0, 1),
    )
    return [p for p in candidates if p.in_bounds(size)]


def l_shaped_path(a: GridPoint, b: GridPoint) -> List[GridPoint]:
    """Return the cells of the L-shaped (row-then-column) path from a to b.

    The path includes both endpoints.  This is the canonical single-bend
    route used by the intra-layer router to connect two photons through a
    chain of fusions (Figure 4 (c) of the paper).
    """
    path: List[GridPoint] = []
    row_step = 1 if b.row >= a.row else -1
    for row in range(a.row, b.row, row_step):
        path.append(GridPoint(row, a.col))
    col_step = 1 if b.col >= a.col else -1
    for col in range(a.col, b.col, col_step):
        path.append(GridPoint(b.row, col))
    path.append(b)
    return path


def spiral_order(size: int) -> List[GridPoint]:
    """Return all cells of a ``size x size`` grid ordered by a centre-out spiral.

    Placing the first nodes of a layer near the centre keeps routing paths
    short, which is how the greedy grid mapper seeds each layer.
    """
    if size <= 0:
        return []
    centre = (size - 1) / 2.0
    points = list(grid_points(size))
    points.sort(key=lambda p: (abs(p.row - centre) + abs(p.col - centre), p.row, p.col))
    return points
