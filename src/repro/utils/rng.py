"""Seeded randomness helpers.

All stochastic components of the library (QAOA instance generation, the BDIR
simulated-annealing scheduler, the runtime loss sampler) accept either a seed
or a :class:`numpy.random.Generator`.  These helpers centralise the conversion
so results are reproducible end to end from a single integer seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator which is returned unchanged.  Passing a generator through makes
    it easy for higher-level components to share one stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the labels, so independent subsystems that start
    from the same experiment seed (e.g. the partitioner and the scheduler)
    receive decorrelated but reproducible streams.

    >>> derive_seed(7, "qaoa", 16) == derive_seed(7, "qaoa", 16)
    True
    >>> derive_seed(7, "qaoa", 16) != derive_seed(7, "vqe", 16)
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")
