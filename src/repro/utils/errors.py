"""Exception hierarchy shared by all DC-MBQC subsystems.

Every error raised on purpose by the library derives from :class:`ReproError`
so that callers can catch library failures without also swallowing genuine
bugs (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CompilationError(ReproError):
    """Raised when a circuit or pattern cannot be compiled.

    Typical causes: a computation graph that does not fit the configured
    resource grid, an unsupported gate in the circuit front end, or a
    malformed measurement pattern.
    """


class PartitionError(ReproError):
    """Raised when graph partitioning cannot produce a valid partition.

    For example when the requested number of parts exceeds the number of
    nodes, or when the imbalance constraint is infeasible.
    """


class SchedulingError(ReproError):
    """Raised when the layer scheduler is given an inconsistent problem.

    For example a synchronisation task that references a non-existent main
    task, or a schedule that violates machine exclusivity.
    """


class ValidationError(ReproError):
    """Raised when a produced artefact fails its internal consistency check.

    The runtime simulator and the schedule validator use this to signal that
    a schedule or a distributed program violates a hard constraint.
    """
