"""Experiment drivers that regenerate the paper's tables and figures.

Each function in :mod:`~repro.reporting.experiments` reproduces one artefact
of the evaluation section (Tables I-VI, Figures 1 and 7-10) and returns plain
data rows; :mod:`~repro.reporting.render` turns them into aligned text tables
so the benchmark harness, the examples and the CLI can print paper-style
output without any plotting dependency.
"""

from repro.reporting.experiments import (
    BenchmarkScale,
    ComparisonRow,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
    figure1_series,
    figure7_series,
    figure8_series,
    figure9_series,
    figure10_series,
)
from repro.reporting.render import (
    render_comparison_table,
    render_series,
    render_table1,
    render_table2,
    render_table6,
)

__all__ = [
    "BenchmarkScale",
    "ComparisonRow",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "figure1_series",
    "figure7_series",
    "figure8_series",
    "figure9_series",
    "figure10_series",
    "render_comparison_table",
    "render_series",
    "render_table1",
    "render_table2",
    "render_table6",
]
