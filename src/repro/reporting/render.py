"""Rendering of experiment rows into paper-style text tables."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.reporting.experiments import ComparisonRow
from repro.utils.tables import Table

__all__ = [
    "render_table1",
    "render_table2",
    "render_comparison_table",
    "render_table6",
    "render_table7",
    "render_fault_sweep",
    "render_series",
]


def render_table1(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table I (platform survey)."""
    table = Table(
        title="Table I — Remote entanglement platform survey",
        columns=["Platform", "Fidelity %", "Clock (Hz)", "Experimental", "Meets DQC thresholds"],
    )
    for row in rows:
        table.add_row(
            [
                row["platform"],
                row["fidelity_percent"],
                f"{row['clock_speed_hz']:.3g}",
                "yes" if row["experimental"] else "no",
                "yes" if row["meets_dqc_thresholds"] else "no",
            ]
        )
    return table.render()


def render_table2(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table II (benchmark characteristics, measured vs paper)."""
    table = Table(
        title="Table II — Benchmark programs",
        columns=[
            "Program",
            "Grid",
            "#2Q gates",
            "#Nodes",
            "#Fusions",
            "Paper #2Q",
            "Paper #Fusions",
        ],
    )
    for row in rows:
        table.add_row(
            [
                row["program"],
                f"{row['grid_size']}x{row['grid_size']}",
                row["num_2q_gates"],
                row["num_nodes"],
                row["num_fusions"],
                row["paper_2q_gates"] if row["paper_2q_gates"] is not None else "-",
                row["paper_fusions"] if row["paper_fusions"] is not None else "-",
            ]
        )
    return table.render()


def render_comparison_table(rows: Sequence[ComparisonRow], title: str) -> str:
    """Render a Table III/IV-style baseline comparison."""
    table = Table(
        title=title,
        columns=[
            "Program",
            "Baseline Exec.",
            "Our Exec.",
            "Improv.",
            "Baseline Lifetime",
            "Our Lifetime",
            "Improv.",
        ],
    )
    for row in rows:
        table.add_row(
            [
                row.label,
                row.baseline_exec,
                row.our_exec,
                round(row.exec_improvement, 2),
                row.baseline_lifetime,
                row.our_lifetime,
                round(row.lifetime_improvement, 2),
            ]
        )
    return table.render()


def render_table6(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table VI (BDIR effectiveness)."""
    table = Table(
        title="Table VI — Effectiveness of BDIR",
        columns=["Program", "List-scheduling lifetime", "BDIR lifetime", "Improvement %"],
    )
    for row in rows:
        table.add_row(
            [
                row["program"],
                row["list_lifetime"],
                row["bdir_lifetime"],
                row["improvement_percent"],
            ]
        )
    return table.render()


def render_table7(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table VII (extended workload matrix, all nine families)."""
    table = Table(
        title="Table VII — Extended workloads (vs OneQ)",
        columns=[
            "Program",
            "Grid",
            "#2Q gates",
            "#Fusions",
            "OneQ Exec.",
            "Our Exec.",
            "Improv.",
            "OneQ Lifetime",
            "Our Lifetime",
            "Improv.",
        ],
    )
    for row in rows:
        table.add_row(
            [
                f"{row['program']}-{row['num_qubits']}",
                f"{row['grid_size']}x{row['grid_size']}",
                row["num_2q_gates"],
                row["num_fusions"],
                row["baseline_exec"],
                row["our_exec"],
                round(float(row["exec_improvement"]), 2),
                row["baseline_lifetime"],
                row["our_lifetime"],
                round(float(row["lifetime_improvement"]), 2),
            ]
        )
    return table.render()


def render_table8(
    rows: Sequence[Dict[str, object]],
    title: str = "Table VIII — Interconnect topology ablation",
) -> str:
    """Render Table VIII (topology / heterogeneity / relay-model ablation)."""
    table = Table(
        title=title,
        columns=[
            "Program",
            "QPUs",
            "Topology",
            "Relay model",
            "Grids",
            "Links",
            "Connectors",
            "Relay hops",
            "Exec.",
            "Lifetime",
            "Runtime max storage",
            "Consistent",
            "Survival",
        ],
    )
    for row in rows:
        survival = row.get("survival_probability")
        table.add_row(
            [
                f"{row['program']}-{row['num_qubits']}",
                row["num_qpus"],
                row["topology"],
                row.get("relay_model", "pipelined"),
                row["grid_sizes"],
                row["num_links"],
                row["connectors"],
                row["relay_hops"],
                row["execution_time"],
                row["required_photon_lifetime"],
                row["runtime_max_storage"],
                "yes" if row["runtime_consistent"] else "NO",
                "-" if survival is None else f"{survival:.4f}",
            ]
        )
    return table.render()


def render_fault_sweep(
    rows: Sequence[Dict[str, object]],
    title: str = "Fault sweep — failure accounting by recovery policy",
) -> str:
    """Render fault-sweep rows (fault x injection time x recovery policy)."""
    table = Table(
        title=title,
        columns=[
            "Program",
            "Topology",
            "Fault",
            "Policy",
            "Cycle",
            "Affected",
            "Lost",
            "Failure rate",
            "Recovered rate",
            "Overhead (cyc)",
            "Survival",
        ],
    )
    for row in rows:
        survival = row.get("survival_probability")
        affected = int(row.get("affected_mains", 0)) + int(
            row.get("affected_syncs", 0)
        )
        table.add_row(
            [
                f"{row['program']}-{row['num_qubits']}",
                row["topology"],
                row["fault"],
                row["policy"],
                row["fault_cycle"],
                affected,
                row.get("lost_photons", 0),
                f"{row['failure_rate']:.2f}",
                f"{row['recovered_rate']:.2f}",
                row["recovery_overhead_cycles"],
                "-" if survival is None else f"{survival:.4f}",
            ]
        )
    return table.render()


def render_series(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render a generic figure series (one column per dict key)."""
    if not rows:
        return f"{title}\n(empty)"
    columns = list(rows[0].keys())
    table = Table(title=title, columns=[str(c) for c in columns])
    for row in rows:
        table.add_row([row[c] for c in columns])
    return table.render()
