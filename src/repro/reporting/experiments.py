"""Experiment drivers for every table and figure of the paper.

The functions here are deliberately *data in, rows out*: they run the
relevant compilations and return lists of dictionaries, leaving rendering to
:mod:`repro.reporting.render` and pacing/scaling decisions to the caller.

Because the reproduction's single-QPU mapping engine is a reimplementation
(not the authors' OneQ binary), the functions default to reduced benchmark
sizes that run in seconds; passing ``BenchmarkScale.PAPER`` (or setting the
``DCMBQC_FULL_BENCH=1`` environment variable in the benchmark harness)
evaluates the paper's full sizes.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compiler import OneQCompiler, computation_graph_from_pattern
from repro.compiler.compgraph import ComputationGraph
from repro.core import DCMBQCCompiler, DCMBQCConfig, compare_with_baseline
from repro.hardware.loss import photon_loss_probability
from repro.hardware.platforms import PLATFORM_SURVEY, meets_dqc_thresholds
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.translate import circuit_to_pattern
from repro.metrics.improvement import improvement_factor
from repro.programs import build_benchmark
from repro.programs.registry import PAPER_TABLE2, paper_grid_size
from repro.scheduling.bdir import BDIRConfig, BDIRScheduler
from repro.scheduling.list_scheduler import list_schedule

__all__ = [
    "BenchmarkScale",
    "ComparisonRow",
    "benchmark_sizes",
    "build_computation",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "figure1_series",
    "figure7_series",
    "figure8_series",
    "figure9_series",
    "figure10_series",
]


class BenchmarkScale(str, enum.Enum):
    """How large the benchmark instances should be.

    ``SMOKE`` uses the smallest sizes (CI-friendly, seconds), ``REDUCED``
    uses the paper's smallest published size per family plus one medium
    instance (the default for the benchmark harness), and ``PAPER`` uses the
    full Table II grid (minutes to hours).
    """

    SMOKE = "smoke"
    REDUCED = "reduced"
    PAPER = "paper"

    @classmethod
    def from_environment(cls) -> "BenchmarkScale":
        """Pick the scale from ``DCMBQC_FULL_BENCH`` / ``DCMBQC_BENCH_SCALE``."""
        if os.environ.get("DCMBQC_FULL_BENCH", "") == "1":
            return cls.PAPER
        name = os.environ.get("DCMBQC_BENCH_SCALE", "").lower()
        for member in cls:
            if member.value == name:
                return member
        return cls.REDUCED


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a Table III/IV/V-style comparison."""

    program: str
    num_qubits: int
    baseline_exec: int
    our_exec: int
    exec_improvement: float
    baseline_lifetime: int
    our_lifetime: int
    lifetime_improvement: float

    @property
    def label(self) -> str:
        """Paper-style row label."""
        return f"{self.program}-{self.num_qubits}"


def benchmark_sizes(scale: BenchmarkScale) -> List[Tuple[str, int]]:
    """Return the (program, qubits) pairs evaluated at a given scale."""
    if scale is BenchmarkScale.PAPER:
        return [(spec.program, spec.num_qubits) for spec in PAPER_TABLE2]
    if scale is BenchmarkScale.REDUCED:
        return [
            ("VQE", 16),
            ("QAOA", 16),
            ("QFT", 16),
            ("RCA", 16),
            ("QFT", 25),
        ]
    return [("VQE", 8), ("QAOA", 8), ("QFT", 8), ("RCA", 8)]


_COMPUTATION_CACHE: Dict[Tuple[str, int, int], ComputationGraph] = {}


def build_computation(program: str, num_qubits: int, seed: int = 2026) -> ComputationGraph:
    """Build (and cache) the computation graph of one benchmark instance."""
    key = (program.upper(), num_qubits, seed)
    if key not in _COMPUTATION_CACHE:
        circuit = build_benchmark(program, num_qubits, seed=seed)
        _COMPUTATION_CACHE[key] = computation_graph_from_pattern(
            circuit_to_pattern(circuit)
        )
    return _COMPUTATION_CACHE[key]


# --------------------------------------------------------------------------- #
# Tables I and II — static survey and benchmark characteristics
# --------------------------------------------------------------------------- #


def table1_rows() -> List[Dict[str, object]]:
    """Table I: remote-entanglement platform survey."""
    rows = []
    for record in PLATFORM_SURVEY:
        rows.append(
            {
                "platform": record.platform,
                "fidelity_percent": round(100.0 * record.fidelity, 2),
                "clock_speed_hz": record.clock_speed_hz,
                "experimental": record.experimental,
                "post_selected": record.post_selected,
                "meets_dqc_thresholds": meets_dqc_thresholds(record),
            }
        )
    return rows


def table2_rows(scale: BenchmarkScale = BenchmarkScale.REDUCED) -> List[Dict[str, object]]:
    """Table II: benchmark characteristics, measured vs the paper's values."""
    rows = []
    paper_by_label = {spec.label: spec for spec in PAPER_TABLE2}
    for program, qubits in benchmark_sizes(scale):
        circuit = build_benchmark(program, qubits)
        computation = build_computation(program, qubits)
        label = f"{program}-{qubits}"
        paper = paper_by_label.get(label)
        rows.append(
            {
                "program": label,
                "grid_size": paper_grid_size(qubits),
                "num_2q_gates": circuit.num_two_qubit_gates,
                "num_nodes": computation.num_nodes,
                "num_fusions": computation.num_fusions,
                "paper_2q_gates": paper.num_2q_gates if paper else None,
                "paper_fusions": paper.num_fusions if paper else None,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Tables III, IV, V — distributed vs monolithic comparisons
# --------------------------------------------------------------------------- #


def _comparison_rows(
    scale: BenchmarkScale,
    num_qpus: int,
    rsg_type: ResourceStateType,
    baseline: str,
    use_bdir: bool = True,
    seed: int = 0,
) -> List[ComparisonRow]:
    rows: List[ComparisonRow] = []
    for program, qubits in benchmark_sizes(scale):
        computation = build_computation(program, qubits)
        config = DCMBQCConfig(
            num_qpus=num_qpus,
            grid_size=paper_grid_size(qubits),
            rsg_type=rsg_type,
            use_bdir=use_bdir,
            seed=seed,
        )
        comparison = compare_with_baseline(computation, config, baseline=baseline)
        rows.append(
            ComparisonRow(
                program=program,
                num_qubits=qubits,
                baseline_exec=comparison.baseline_execution_time,
                our_exec=comparison.distributed_execution_time,
                exec_improvement=comparison.execution_improvement,
                baseline_lifetime=comparison.baseline_lifetime,
                our_lifetime=comparison.distributed_lifetime,
                lifetime_improvement=comparison.lifetime_improvement,
            )
        )
    return rows


def table3_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED, seed: int = 0
) -> List[ComparisonRow]:
    """Table III: DC-MBQC vs OneQ with 4 QPUs and 5-star resource states."""
    return _comparison_rows(scale, 4, ResourceStateType.STAR_5, "oneq", seed=seed)


def table4_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED, seed: int = 0
) -> List[ComparisonRow]:
    """Table IV: DC-MBQC vs OneQ with 8 QPUs and 4-ring resource states."""
    return _comparison_rows(scale, 8, ResourceStateType.RING_4, "oneq", seed=seed)


def table5_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    num_qpus_list: Sequence[int] = (4, 8),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Table V: DC-MBQC vs an OneAdapt-style baseline for 4 and 8 QPUs."""
    rows: List[Dict[str, object]] = []
    for num_qpus in num_qpus_list:
        for comparison in _comparison_rows(
            scale, num_qpus, ResourceStateType.STAR_5, "oneadapt", seed=seed
        ):
            row = {"num_qpus": num_qpus}
            row.update(
                {
                    "program": comparison.label,
                    "oneadapt_exec": comparison.baseline_exec,
                    "our_exec": comparison.our_exec,
                    "exec_improvement": round(comparison.exec_improvement, 2),
                    "oneadapt_lifetime": comparison.baseline_lifetime,
                    "our_lifetime": comparison.our_lifetime,
                    "lifetime_improvement": round(comparison.lifetime_improvement, 2),
                }
            )
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table VI — BDIR vs priority list scheduling
# --------------------------------------------------------------------------- #


def table6_rows(
    qft_sizes: Sequence[int] = (16, 25, 36),
    num_qpus: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Table VI: required lifetime of list scheduling vs BDIR on QFT programs."""
    rows = []
    for qubits in qft_sizes:
        computation = build_computation("QFT", qubits)
        config = DCMBQCConfig(
            num_qpus=num_qpus,
            grid_size=paper_grid_size(qubits),
            use_bdir=False,
            seed=seed,
        )
        compiler = DCMBQCCompiler(config)
        partition = compiler.partition(computation)
        schedules = compiler.compile_partitions(computation, partition)
        problem, _ = compiler.build_scheduling_problem(computation, partition, schedules)

        baseline_schedule = list_schedule(problem)
        baseline_lifetime = problem.evaluate(baseline_schedule).tau_photon
        refined = BDIRScheduler(problem, BDIRConfig(seed=seed)).refine(baseline_schedule)
        bdir_lifetime = problem.evaluate(refined).tau_photon
        rows.append(
            {
                "program": f"QFT-{qubits}",
                "list_lifetime": baseline_lifetime,
                "bdir_lifetime": bdir_lifetime,
                "improvement_percent": round(
                    100.0 * (baseline_lifetime - bdir_lifetime) / max(1, baseline_lifetime), 2
                ),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figures
# --------------------------------------------------------------------------- #


def figure1_series(
    cycle_times_ns: Sequence[float] = (1.0, 10.0, 100.0),
    cycle_counts: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
) -> List[Dict[str, object]]:
    """Figure 1: photon-loss probability vs storage duration and clock rate."""
    rows = []
    for cycle_time in cycle_times_ns:
        for cycles in cycle_counts:
            rows.append(
                {
                    "cycle_time_ns": cycle_time,
                    "cycles": cycles,
                    "loss_probability": photon_loss_probability(
                        cycles, cycle_time_ns=cycle_time
                    ),
                }
            )
    return rows


def figure7_series(
    program_qubits: int = 12,
    num_qpus: int = 4,
    programs: Sequence[str] = ("QAOA", "VQE", "QFT", "RCA"),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 7: improvement factors for each resource-state shape."""
    rows = []
    for program in programs:
        computation = build_computation(program, program_qubits)
        for rsg in ResourceStateType:
            config = DCMBQCConfig(
                num_qpus=num_qpus,
                grid_size=paper_grid_size(program_qubits),
                rsg_type=rsg,
                seed=seed,
            )
            comparison = compare_with_baseline(computation, config, "oneq")
            rows.append(
                {
                    "program": program,
                    "rsg_type": rsg.value,
                    "exec_improvement": round(comparison.execution_improvement, 2),
                    "lifetime_improvement": round(comparison.lifetime_improvement, 2),
                }
            )
    return rows


def figure8_series(
    program_qubits: Sequence[int] = (16, 25),
    kmax_values: Sequence[int] = (1, 2, 4, 8, 16),
    num_qpus: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 8: sensitivity to the connection capacity K_max (QFT programs)."""
    rows = []
    for qubits in program_qubits:
        computation = build_computation("QFT", qubits)
        baseline = OneQCompiler(grid_size=paper_grid_size(qubits), seed=seed).compile(
            computation
        )
        for kmax in kmax_values:
            config = DCMBQCConfig(
                num_qpus=num_qpus,
                grid_size=paper_grid_size(qubits),
                connection_capacity=kmax,
                seed=seed,
            )
            result = DCMBQCCompiler(config).compile(computation)
            rows.append(
                {
                    "program": f"QFT-{qubits}",
                    "kmax": kmax,
                    "exec_improvement": round(
                        improvement_factor(baseline.execution_time, result.execution_time), 2
                    ),
                    "lifetime_improvement": round(
                        improvement_factor(
                            baseline.required_photon_lifetime,
                            result.required_photon_lifetime,
                        ),
                        2,
                    ),
                }
            )
    return rows


def figure9_series(
    program_qubits: int = 16,
    alpha_values: Sequence[float] = (1.05, 1.2, 1.5, 2.0, 3.0, 4.0),
    num_qpus: int = 4,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 9: robustness to the maximum imbalance factor alpha_max."""
    computation = build_computation("QFT", program_qubits)
    baseline = OneQCompiler(grid_size=paper_grid_size(program_qubits), seed=seed).compile(
        computation
    )
    rows = []
    for alpha_max in alpha_values:
        config = DCMBQCConfig(
            num_qpus=num_qpus,
            grid_size=paper_grid_size(program_qubits),
            alpha_max=alpha_max,
            seed=seed,
        )
        result = DCMBQCCompiler(config).compile(computation)
        rows.append(
            {
                "alpha_max": alpha_max,
                "cut_size": result.num_connectors,
                "exec_improvement": round(
                    improvement_factor(baseline.execution_time, result.execution_time), 2
                ),
                "lifetime_improvement": round(
                    improvement_factor(
                        baseline.required_photon_lifetime, result.required_photon_lifetime
                    ),
                    2,
                ),
            }
        )
    return rows


def figure10_series(
    qft_sizes: Sequence[int] = (8, 12, 16, 25),
    num_qpus: int = 8,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 10: compilation-runtime scaling of the three compiler variants."""
    rows = []
    for qubits in qft_sizes:
        computation = build_computation("QFT", qubits)
        grid = paper_grid_size(qubits)

        start = time.perf_counter()
        OneQCompiler(grid_size=grid, seed=seed).compile(computation)
        baseline_runtime = time.perf_counter() - start

        start = time.perf_counter()
        DCMBQCCompiler(
            DCMBQCConfig(num_qpus=num_qpus, grid_size=grid, use_bdir=False, seed=seed)
        ).compile(computation)
        core_runtime = time.perf_counter() - start

        start = time.perf_counter()
        DCMBQCCompiler(
            DCMBQCConfig(num_qpus=num_qpus, grid_size=grid, use_bdir=True, seed=seed)
        ).compile(computation)
        full_runtime = time.perf_counter() - start

        rows.append(
            {
                "qubits": qubits,
                "baseline_oneq_seconds": round(baseline_runtime, 4),
                "dcmbqc_core_seconds": round(core_runtime, 4),
                "dcmbqc_core_bdir_seconds": round(full_runtime, 4),
            }
        )
    return rows
