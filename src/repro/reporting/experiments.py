"""Experiment drivers for every table and figure of the paper.

The functions here are deliberately *data in, rows out*: they declare the
parameter grid of the relevant artefact (via :mod:`repro.sweep.grids`), run
it through the sweep engine, and return lists of dictionaries, leaving
rendering to :mod:`repro.reporting.render` and pacing/scaling decisions to
the caller.  Every driver accepts ``workers``/``store`` so large grids can
be fanned out across processes and resumed from a durable run table —
``python -m repro.cli sweep`` exposes the same machinery on the command
line.

Because the reproduction's single-QPU mapping engine is a reimplementation
(not the authors' OneQ binary), the functions default to reduced benchmark
sizes that run in seconds; passing ``BenchmarkScale.PAPER`` (or setting the
``DCMBQC_FULL_BENCH=1`` environment variable in the benchmark harness)
evaluates the paper's full sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.hardware.loss import photon_loss_probability
from repro.hardware.platforms import PLATFORM_SURVEY, meets_dqc_thresholds
from repro.programs import build_benchmark
from repro.programs.registry import PAPER_TABLE2, paper_grid_size
from repro.sweep import grids
from repro.sweep.cache import build_computation
from repro.sweep.grids import BenchmarkScale, benchmark_sizes, pin_system_overrides
from repro.sweep.runner import run_grid
from repro.sweep.store import ResultStore

__all__ = [
    "BenchmarkScale",
    "ComparisonRow",
    "benchmark_sizes",
    "build_computation",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "table7_rows",
    "table8_rows",
    "relay_ablation_rows",
    "fault_sweep_rows",
    "figure1_series",
    "figure7_series",
    "figure8_series",
    "figure9_series",
    "figure10_series",
]

#: System-model overrides every grid-backed driver accepts: a serialisable
#: mapping (topology name, per-QPU tuples, relay model, ...) pinned onto the
#: grid via :func:`repro.sweep.grids.pin_system_overrides`, so
#: ``experiment --topology line`` and ``sweep --topology line`` evaluate
#: byte-identical points.
SystemOverrides = Optional[Mapping[str, object]]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a Table III/IV/V-style comparison."""

    program: str
    num_qubits: int
    baseline_exec: int
    our_exec: int
    exec_improvement: float
    baseline_lifetime: int
    our_lifetime: int
    lifetime_improvement: float

    @property
    def label(self) -> str:
        """Paper-style row label."""
        return f"{self.program}-{self.num_qubits}"

    @classmethod
    def from_result(cls, result: Dict[str, object]) -> "ComparisonRow":
        """Build a row from a ``compare`` sweep-task result dict."""
        return cls(
            program=str(result["program"]),
            num_qubits=int(result["num_qubits"]),
            baseline_exec=int(result["baseline_exec"]),
            our_exec=int(result["our_exec"]),
            exec_improvement=float(result["exec_improvement"]),
            baseline_lifetime=int(result["baseline_lifetime"]),
            our_lifetime=int(result["our_lifetime"]),
            lifetime_improvement=float(result["lifetime_improvement"]),
        )


# --------------------------------------------------------------------------- #
# Tables I and II — static survey and benchmark characteristics
# --------------------------------------------------------------------------- #


def table1_rows() -> List[Dict[str, object]]:
    """Table I: remote-entanglement platform survey."""
    rows = []
    for record in PLATFORM_SURVEY:
        rows.append(
            {
                "platform": record.platform,
                "fidelity_percent": round(100.0 * record.fidelity, 2),
                "clock_speed_hz": record.clock_speed_hz,
                "experimental": record.experimental,
                "post_selected": record.post_selected,
                "meets_dqc_thresholds": meets_dqc_thresholds(record),
            }
        )
    return rows


def table2_rows(scale: BenchmarkScale = BenchmarkScale.REDUCED) -> List[Dict[str, object]]:
    """Table II: benchmark characteristics, measured vs the paper's values."""
    rows = []
    paper_by_label = {spec.label: spec for spec in PAPER_TABLE2}
    for program, qubits in benchmark_sizes(scale):
        circuit = build_benchmark(program, qubits)
        computation = build_computation(program, qubits)
        label = f"{program}-{qubits}"
        paper = paper_by_label.get(label)
        rows.append(
            {
                "program": label,
                "grid_size": paper_grid_size(qubits),
                "num_2q_gates": circuit.num_two_qubit_gates,
                "num_nodes": computation.num_nodes,
                "num_fusions": computation.num_fusions,
                "paper_2q_gates": paper.num_2q_gates if paper else None,
                "paper_fusions": paper.num_fusions if paper else None,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Tables III, IV, V — distributed vs monolithic comparisons
# --------------------------------------------------------------------------- #


def table3_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[ComparisonRow]:
    """Table III: DC-MBQC vs OneQ with 4 QPUs and 5-star resource states."""
    grid = pin_system_overrides(grids.table3_grid(scale, seed=seed), system_overrides)
    outcome = run_grid(grid, workers=workers, store=store)
    return [ComparisonRow.from_result(result) for result in outcome.results()]


def table4_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[ComparisonRow]:
    """Table IV: DC-MBQC vs OneQ with 8 QPUs and 4-ring resource states."""
    grid = pin_system_overrides(grids.table4_grid(scale, seed=seed), system_overrides)
    outcome = run_grid(grid, workers=workers, store=store)
    return [ComparisonRow.from_result(result) for result in outcome.results()]


def table5_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    num_qpus_list: Sequence[int] = (4, 8),
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Table V: DC-MBQC vs an OneAdapt-style baseline for 4 and 8 QPUs."""
    grid = pin_system_overrides(
        grids.table5_grid(scale, seed=seed, num_qpus_list=num_qpus_list),
        system_overrides,
    )
    outcome = run_grid(grid, workers=workers, store=store)
    rows: List[Dict[str, object]] = []
    for point, result in zip(outcome.points, outcome.results()):
        comparison = ComparisonRow.from_result(result)
        rows.append(
            {
                "num_qpus": point.num_qpus,
                "program": comparison.label,
                "oneadapt_exec": comparison.baseline_exec,
                "our_exec": comparison.our_exec,
                "exec_improvement": round(comparison.exec_improvement, 2),
                "oneadapt_lifetime": comparison.baseline_lifetime,
                "our_lifetime": comparison.our_lifetime,
                "lifetime_improvement": round(comparison.lifetime_improvement, 2),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table VI — BDIR vs priority list scheduling
# --------------------------------------------------------------------------- #


def table6_rows(
    qft_sizes: Sequence[int] = (16, 25, 36),
    num_qpus: int = 4,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
    bdir_starts: int = 1,
) -> List[Dict[str, object]]:
    """Table VI: required lifetime of list scheduling vs BDIR on QFT programs."""
    grid = pin_system_overrides(
        grids.table6_grid(
            seed=seed,
            qft_sizes=qft_sizes,
            num_qpus=num_qpus,
            bdir_starts=bdir_starts,
        ),
        system_overrides,
    )
    return run_grid(grid, workers=workers, store=store).results()


# --------------------------------------------------------------------------- #
# Table VII — extended workload matrix (all nine program families)
# --------------------------------------------------------------------------- #


def table7_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    num_qpus: int = 4,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Table VII: every program family (paper + extended) vs OneQ.

    One row per instance of :func:`repro.sweep.grids.extended_benchmark_sizes`,
    combining the workload's structural characteristics with the
    OneQ-vs-DC-MBQC comparison.
    """
    grid = pin_system_overrides(
        grids.table7_grid(scale, seed=seed, num_qpus=num_qpus), system_overrides
    )
    return run_grid(grid, workers=workers, store=store).results()


# --------------------------------------------------------------------------- #
# Table VIII — interconnect topology ablation
# --------------------------------------------------------------------------- #


def table8_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Table VIII: topology x QPU count x heterogeneity ablation.

    One row per system model of :func:`repro.sweep.grids.table8_grid` —
    fully-connected / ring / line / 2D-grid interconnects at 4 and 8 QPUs,
    homogeneous vs mixed grid sizes — each compiled end to end and replayed
    on the runtime executor (the ``runtime_consistent`` column is the
    executor's independent storage/makespan cross-check).
    """
    grid = pin_system_overrides(grids.table8_grid(scale, seed=seed), system_overrides)
    return run_grid(grid, workers=workers, store=store).results()


def relay_ablation_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    topology: str = "line",
    num_qpus: int = 4,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Pipelined vs atomic relay model on one sparse interconnect.

    The before/after companion of Table VIII: every instance of
    :func:`repro.sweep.grids.relay_ablation_grid` compiles twice against
    the same sparse system — once per relay model — isolating what the
    store-and-forward hop windows buy over booking the whole route
    atomically.
    """
    grid = pin_system_overrides(
        grids.relay_ablation_grid(
            scale, seed=seed, topology=topology, num_qpus=num_qpus
        ),
        system_overrides,
    )
    return run_grid(grid, workers=workers, store=store).results()


def fault_sweep_rows(
    scale: BenchmarkScale = BenchmarkScale.REDUCED,
    seed: int = 0,
    topology: str = "ring",
    num_qpus: int = 4,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Failure accounting over fault type x injection time x recovery policy.

    Every row of :func:`repro.sweep.grids.fault_sweep_grid` injects one
    seeded fault (QPU/link death, capacity brownout, or delay-line photon
    loss) into one compiled instance's replay and applies one recovery
    policy, reporting ``failure_rate`` / ``recovered_rate`` /
    ``recovery_overhead_cycles`` next to the healthy
    ``survival_probability`` baseline.
    """
    grid = pin_system_overrides(
        grids.fault_sweep_grid(
            scale, seed=seed, topology=topology, num_qpus=num_qpus
        ),
        system_overrides,
    )
    return run_grid(grid, workers=workers, store=store).results()


# --------------------------------------------------------------------------- #
# Figures
# --------------------------------------------------------------------------- #


def figure1_series(
    cycle_times_ns: Sequence[float] = (1.0, 10.0, 100.0),
    cycle_counts: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
) -> List[Dict[str, object]]:
    """Figure 1: photon-loss probability vs storage duration and clock rate."""
    rows = []
    for cycle_time in cycle_times_ns:
        for cycles in cycle_counts:
            rows.append(
                {
                    "cycle_time_ns": cycle_time,
                    "cycles": cycles,
                    "loss_probability": photon_loss_probability(
                        cycles, cycle_time_ns=cycle_time
                    ),
                }
            )
    return rows


def figure7_series(
    program_qubits: int = 12,
    num_qpus: int = 4,
    programs: Sequence[str] = ("QAOA", "VQE", "QFT", "RCA"),
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Figure 7: improvement factors for each resource-state shape."""
    grid = pin_system_overrides(
        grids.figure7_grid(
            seed=seed,
            program_qubits=program_qubits,
            num_qpus=num_qpus,
            programs=programs,
        ),
        system_overrides,
    )
    outcome = run_grid(grid, workers=workers, store=store)
    rows = []
    for point, result in zip(outcome.points, outcome.results()):
        rows.append(
            {
                "program": point.program,
                "rsg_type": point.rsg_type,
                "exec_improvement": round(float(result["exec_improvement"]), 2),
                "lifetime_improvement": round(float(result["lifetime_improvement"]), 2),
            }
        )
    return rows


def figure8_series(
    program_qubits: Sequence[int] = (16, 25),
    kmax_values: Sequence[int] = (1, 2, 4, 8, 16),
    num_qpus: int = 4,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Figure 8: sensitivity to the connection capacity K_max (QFT programs)."""
    grid = pin_system_overrides(
        grids.figure8_grid(
            seed=seed,
            program_qubits=program_qubits,
            kmax_values=kmax_values,
            num_qpus=num_qpus,
        ),
        system_overrides,
    )
    outcome = run_grid(grid, workers=workers, store=store)
    rows = []
    for result in outcome.results():
        rows.append(
            {
                "program": result["program"],
                "kmax": result["kmax"],
                "exec_improvement": round(float(result["exec_improvement"]), 2),
                "lifetime_improvement": round(float(result["lifetime_improvement"]), 2),
            }
        )
    return rows


def figure9_series(
    program_qubits: int = 16,
    alpha_values: Sequence[float] = (1.05, 1.2, 1.5, 2.0, 3.0, 4.0),
    num_qpus: int = 4,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
) -> List[Dict[str, object]]:
    """Figure 9: robustness to the maximum imbalance factor alpha_max."""
    grid = pin_system_overrides(
        grids.figure9_grid(
            seed=seed,
            program_qubits=program_qubits,
            alpha_values=alpha_values,
            num_qpus=num_qpus,
        ),
        system_overrides,
    )
    outcome = run_grid(grid, workers=workers, store=store)
    rows = []
    for result in outcome.results():
        rows.append(
            {
                "alpha_max": result["alpha_max"],
                "cut_size": result["cut_size"],
                "exec_improvement": round(float(result["exec_improvement"]), 2),
                "lifetime_improvement": round(float(result["lifetime_improvement"]), 2),
            }
        )
    return rows


def figure10_series(
    qft_sizes: Sequence[int] = (8, 12, 16, 24, 32),
    num_qpus: int = 8,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    system_overrides: SystemOverrides = None,
    bdir_starts: int = 1,
) -> List[Dict[str, object]]:
    """Figure 10: compilation-runtime scaling of the three compiler variants."""
    grid = pin_system_overrides(
        grids.figure10_grid(
            seed=seed,
            qft_sizes=qft_sizes,
            num_qpus=num_qpus,
            bdir_starts=bdir_starts,
        ),
        system_overrides,
    )
    return run_grid(grid, workers=workers, store=store).results()
