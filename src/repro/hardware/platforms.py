"""Survey of remote-entanglement platforms (Table I of the paper).

The table records, for each hardware platform, the demonstrated fidelity of
remote entanglement generation between two QPUs and the corresponding clock
speed.  It is static data, reproduced here so the benchmark harness can
regenerate Table I and so the examples can reason about which platforms meet
the >90% fidelity / MHz-clock thresholds for distributed QEC cited from the
fault-tolerant interconnect literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["PlatformRecord", "PLATFORM_SURVEY", "meets_dqc_thresholds"]


@dataclass(frozen=True)
class PlatformRecord:
    """One row of the platform survey.

    Attributes:
        platform: Hardware family name.
        fidelity: Remote entanglement fidelity (0-1), without distillation.
        clock_speed_hz: Entanglement generation clock speed in Hz.
        experimental: True if demonstrated experimentally, False if proposed.
        post_selected: True when the fidelity estimate relies on
            post-selection and may therefore be an overestimate.
    """

    platform: str
    fidelity: float
    clock_speed_hz: float
    experimental: bool
    post_selected: bool = False


PLATFORM_SURVEY: List[PlatformRecord] = [
    PlatformRecord("Superconducting", 0.793, 1e6, True),
    PlatformRecord("Quantum dot", 0.616, 7.3e3, True),
    PlatformRecord("Trapped ion (Main et al.)", 0.861, 9.7, True),
    PlatformRecord("Trapped ion (Stephenson et al.)", 0.940, 182.0, True),
    PlatformRecord("Neutral atom (Ritter et al.)", 0.987, 30.0, True, post_selected=True),
    PlatformRecord("Neutral atom (Li & Thompson)", 0.999, 1e5, False),
    PlatformRecord("Photonic", 0.9972, 1e6, True, post_selected=True),
]

FIDELITY_THRESHOLD = 0.90
"""Remote-entanglement fidelity needed to keep distributed QEC effective."""

CLOCK_THRESHOLD_HZ = 1e6
"""Clock speed (MHz level) needed to keep decoherence negligible per QEC cycle."""


def meets_dqc_thresholds(record: PlatformRecord) -> bool:
    """True when a platform clears both DQC scalability thresholds.

    The paper argues (Section I) that a platform needs >90% remote
    entanglement fidelity *and* an MHz-level clock to sustain quantum error
    correction across QPUs; photonics is the only experimental platform in
    the survey that clears both.
    """
    return (
        record.fidelity >= FIDELITY_THRESHOLD
        and record.clock_speed_hz >= CLOCK_THRESHOLD_HZ
    )
