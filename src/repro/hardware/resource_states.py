"""Resource-state shapes emitted by resource-state generators (RSGs).

Figure 4 (a) of the paper shows the four standard shapes: the 4-ring,
5-star, 6-ring and 7-star.  The compiler only needs a few combinatorial
facts about each shape:

* ``num_photons`` — how many photons the RSG emits per clock cycle,
* ``native_degree`` — how many graph-state neighbours a computation photon
  hosted on this resource state can support without borrowing photons from
  an adjacent cell,
* ``routing_uses`` — how many independent routing segments one resource
  state can provide.  The 6-ring is special (Section V-B): removing a
  diagonal pair of photons leaves two 2-photon chains, so a single 6-ring
  can serve *two* routing connections while every other shape serves one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import networkx as nx

__all__ = [
    "ResourceStateType",
    "ResourceStateSpec",
    "RESOURCE_STATE_LIBRARY",
    "resource_state_graph",
]


class ResourceStateType(str, enum.Enum):
    """The four resource-state shapes evaluated in the paper (Figure 4a)."""

    RING_4 = "4-ring"
    STAR_5 = "5-star"
    RING_6 = "6-ring"
    STAR_7 = "7-star"

    @classmethod
    def from_name(cls, name: "str | ResourceStateType") -> "ResourceStateType":
        """Parse a resource-state name such as ``"5-star"`` (case-insensitive)."""
        if isinstance(name, cls):
            return name
        normalised = str(name).strip().lower().replace("_", "-")
        for member in cls:
            if member.value == normalised:
                return member
        raise ValueError(f"unknown resource state {name!r}")


@dataclass(frozen=True)
class ResourceStateSpec:
    """Combinatorial capabilities of one resource-state shape."""

    type: ResourceStateType
    num_photons: int
    native_degree: int
    routing_uses: int

    @property
    def is_ring(self) -> bool:
        """True for ring-shaped states."""
        return self.type in (ResourceStateType.RING_4, ResourceStateType.RING_6)

    @property
    def is_star(self) -> bool:
        """True for star-shaped states."""
        return not self.is_ring


RESOURCE_STATE_LIBRARY: Dict[ResourceStateType, ResourceStateSpec] = {
    ResourceStateType.RING_4: ResourceStateSpec(ResourceStateType.RING_4, 4, 3, 1),
    ResourceStateType.STAR_5: ResourceStateSpec(ResourceStateType.STAR_5, 5, 4, 1),
    ResourceStateType.RING_6: ResourceStateSpec(ResourceStateType.RING_6, 6, 4, 2),
    ResourceStateType.STAR_7: ResourceStateSpec(ResourceStateType.STAR_7, 7, 6, 1),
}


def resource_state_graph(rsg_type: "ResourceStateType | str") -> nx.Graph:
    """Return the entanglement graph of one freshly generated resource state.

    Ring states are cycles; star states have one central photon entangled
    with all leaves.  Node labels are ``0..k-1`` with node 0 the star centre.
    """
    rsg_type = ResourceStateType.from_name(rsg_type)
    spec = RESOURCE_STATE_LIBRARY[rsg_type]
    graph = nx.Graph()
    graph.add_nodes_from(range(spec.num_photons))
    if spec.is_ring:
        for i in range(spec.num_photons):
            graph.add_edge(i, (i + 1) % spec.num_photons)
    else:
        for leaf in range(1, spec.num_photons):
            graph.add_edge(0, leaf)
    return graph
