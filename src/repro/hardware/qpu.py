"""QPU and multi-QPU system descriptions.

A single photonic QPU is described by the side length of its 2D logical
resource layer, the resource-state shape its RSGs emit, and the connection
capacity ``K_max`` — the number of inter-QPU connections one connection
layer can support concurrently (Section IV of the paper).  A multi-QPU
system adds the interconnect topology; the paper evaluates fully connected
systems of 4 and 8 QPUs, and this module also supports line and ring
topologies for ablation studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import networkx as nx

from repro.hardware.resource_states import (
    RESOURCE_STATE_LIBRARY,
    ResourceStateSpec,
    ResourceStateType,
)

__all__ = ["QPUSpec", "InterconnectTopology", "MultiQPUSystem"]

DEFAULT_CONNECTION_CAPACITY = 4
"""Default ``K_max`` used by the paper's main experiments."""


class InterconnectTopology(str, enum.Enum):
    """How QPUs are wired together by heralded-entanglement links.

    The paper evaluates fully connected systems; the remaining shapes are
    ablation topologies realised by :func:`repro.hardware.system.build_system`
    (``CUSTOM`` marks a system built from an explicit link list).
    """

    FULLY_CONNECTED = "fully-connected"
    LINE = "line"
    RING = "ring"
    STAR = "star"
    GRID_2D = "grid-2d"
    TORUS = "torus"
    CUSTOM = "custom"


@dataclass(frozen=True)
class QPUSpec:
    """Description of a single photonic QPU.

    Attributes:
        grid_size: Side length ``L`` of the 2D logical resource layer.
        rsg_type: Resource-state shape emitted by this QPU's RSGs.
        connection_capacity: ``K_max`` — concurrent inter-QPU connections a
            single connection layer can support (lower-bounded by 4 in the
            paper via the four grid edges).
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    connection_capacity: int = DEFAULT_CONNECTION_CAPACITY

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError("grid size must be positive")
        if self.connection_capacity < 1:
            raise ValueError("connection capacity must be at least 1")

    @property
    def resource_spec(self) -> ResourceStateSpec:
        """Combinatorial capabilities of this QPU's resource states."""
        return RESOURCE_STATE_LIBRARY[self.rsg_type]

    @property
    def cells_per_layer(self) -> int:
        """Number of RSG cells in one logical layer."""
        return self.grid_size * self.grid_size

    def with_grid_size(self, grid_size: int) -> "QPUSpec":
        """Return a copy with a different grid size (boundary reservation)."""
        return QPUSpec(grid_size, self.rsg_type, self.connection_capacity)


@dataclass
class MultiQPUSystem:
    """A collection of identical QPUs plus an interconnect topology.

    Retained as the homogeneous convenience wrapper around
    :class:`~repro.hardware.system.SystemModel` — the full model (per-QPU
    specs, explicit links, custom adjacency) is what the compile pipeline
    consumes; this class delegates its connectivity queries to one cached
    model instead of rebuilding a networkx graph per call (the seed
    implementation reconstructed the interconnect on every
    ``are_connected``/``communication_distance`` query).
    """

    num_qpus: int
    qpu: QPUSpec
    topology: InterconnectTopology = InterconnectTopology.FULLY_CONNECTED

    def __post_init__(self) -> None:
        if self.num_qpus < 1:
            raise ValueError("need at least one QPU")
        self._model = None
        self._model_key = None

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def system_model(self):
        """The cached :class:`~repro.hardware.system.SystemModel` equivalent.

        Keyed on the (mutable) dataclass fields so reassigning ``topology``
        or ``num_qpus`` invalidates the cache instead of serving stale
        connectivity answers.
        """
        key = (self.num_qpus, self.qpu, self.topology)
        if self._model is None or self._model_key != key:
            from repro.hardware.system import build_system

            self._model = build_system(self.num_qpus, self.qpu, self.topology)
            self._model_key = key
        return self._model

    def interconnect_graph(self) -> nx.Graph:
        """Return the QPU-level connectivity graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qpus))
        for link in self.system_model().links:
            graph.add_edge(link.qpu_a, link.qpu_b, capacity=link.capacity)
        return graph

    def are_connected(self, qpu_a: int, qpu_b: int) -> bool:
        """True if the two QPUs share a direct heralded-entanglement link."""
        return self.system_model().are_connected(qpu_a, qpu_b)

    def communication_distance(self, qpu_a: int, qpu_b: int) -> int:
        """Hop count between two QPUs in the interconnect graph."""
        return self.system_model().communication_distance(qpu_a, qpu_b)

    # ------------------------------------------------------------------ #
    # Aggregate capacities
    # ------------------------------------------------------------------ #

    @property
    def total_cells_per_layer(self) -> int:
        """Total RSG cells across all QPUs in one clock cycle."""
        return self.num_qpus * self.qpu.cells_per_layer

    def describe(self) -> Dict[str, object]:
        """Return a plain-dict description for reports."""
        return {
            "num_qpus": self.num_qpus,
            "grid_size": self.qpu.grid_size,
            "rsg_type": self.qpu.rsg_type.value,
            "connection_capacity": self.qpu.connection_capacity,
            "topology": self.topology.value,
        }
