"""QPU and multi-QPU system descriptions.

A single photonic QPU is described by the side length of its 2D logical
resource layer, the resource-state shape its RSGs emit, and the connection
capacity ``K_max`` — the number of inter-QPU connections one connection
layer can support concurrently (Section IV of the paper).  A multi-QPU
system adds the interconnect topology; the paper evaluates fully connected
systems of 4 and 8 QPUs, and this module also supports line and ring
topologies for ablation studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import networkx as nx

from repro.hardware.resource_states import (
    RESOURCE_STATE_LIBRARY,
    ResourceStateSpec,
    ResourceStateType,
)

__all__ = ["QPUSpec", "InterconnectTopology", "MultiQPUSystem"]

DEFAULT_CONNECTION_CAPACITY = 4
"""Default ``K_max`` used by the paper's main experiments."""


class InterconnectTopology(str, enum.Enum):
    """How QPUs are wired together by heralded-entanglement links."""

    FULLY_CONNECTED = "fully-connected"
    LINE = "line"
    RING = "ring"


@dataclass(frozen=True)
class QPUSpec:
    """Description of a single photonic QPU.

    Attributes:
        grid_size: Side length ``L`` of the 2D logical resource layer.
        rsg_type: Resource-state shape emitted by this QPU's RSGs.
        connection_capacity: ``K_max`` — concurrent inter-QPU connections a
            single connection layer can support (lower-bounded by 4 in the
            paper via the four grid edges).
    """

    grid_size: int
    rsg_type: ResourceStateType = ResourceStateType.STAR_5
    connection_capacity: int = DEFAULT_CONNECTION_CAPACITY

    def __post_init__(self) -> None:
        if self.grid_size < 1:
            raise ValueError("grid size must be positive")
        if self.connection_capacity < 1:
            raise ValueError("connection capacity must be at least 1")

    @property
    def resource_spec(self) -> ResourceStateSpec:
        """Combinatorial capabilities of this QPU's resource states."""
        return RESOURCE_STATE_LIBRARY[self.rsg_type]

    @property
    def cells_per_layer(self) -> int:
        """Number of RSG cells in one logical layer."""
        return self.grid_size * self.grid_size

    def with_grid_size(self, grid_size: int) -> "QPUSpec":
        """Return a copy with a different grid size (boundary reservation)."""
        return QPUSpec(grid_size, self.rsg_type, self.connection_capacity)


@dataclass
class MultiQPUSystem:
    """A collection of identical QPUs plus an interconnect topology."""

    num_qpus: int
    qpu: QPUSpec
    topology: InterconnectTopology = InterconnectTopology.FULLY_CONNECTED

    def __post_init__(self) -> None:
        if self.num_qpus < 1:
            raise ValueError("need at least one QPU")

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def interconnect_graph(self) -> nx.Graph:
        """Return the QPU-level connectivity graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qpus))
        if self.num_qpus == 1:
            return graph
        if self.topology is InterconnectTopology.FULLY_CONNECTED:
            for a in range(self.num_qpus):
                for b in range(a + 1, self.num_qpus):
                    graph.add_edge(a, b)
        elif self.topology is InterconnectTopology.LINE:
            for a in range(self.num_qpus - 1):
                graph.add_edge(a, a + 1)
        else:  # ring
            for a in range(self.num_qpus):
                graph.add_edge(a, (a + 1) % self.num_qpus)
        return graph

    def are_connected(self, qpu_a: int, qpu_b: int) -> bool:
        """True if the two QPUs share a direct heralded-entanglement link."""
        if qpu_a == qpu_b:
            return True
        return self.interconnect_graph().has_edge(qpu_a, qpu_b)

    def communication_distance(self, qpu_a: int, qpu_b: int) -> int:
        """Hop count between two QPUs in the interconnect graph."""
        if qpu_a == qpu_b:
            return 0
        return int(
            nx.shortest_path_length(self.interconnect_graph(), qpu_a, qpu_b)
        )

    # ------------------------------------------------------------------ #
    # Aggregate capacities
    # ------------------------------------------------------------------ #

    @property
    def total_cells_per_layer(self) -> int:
        """Total RSG cells across all QPUs in one clock cycle."""
        return self.num_qpus * self.qpu.cells_per_layer

    def describe(self) -> Dict[str, object]:
        """Return a plain-dict description for reports."""
        return {
            "num_qpus": self.num_qpus,
            "grid_size": self.qpu.grid_size,
            "rsg_type": self.qpu.rsg_type.value,
            "connection_capacity": self.qpu.connection_capacity,
            "topology": self.topology.value,
        }
