"""Probabilistic fusion operations.

A fusion consumes one photon from each of two resource states and, on
success, entangles the neighbours of the consumed photons (Figure 4 (b)).
Fusions are probabilistic: the experimentally demonstrated failure rate is
about 29% (boosted fusion, Guo et al. 2024), and architectures such as
OnePerc handle failures with online renormalisation.  The DC-MBQC framework
plans at the logical-layer level (the PL-ratio argument in Section II-C), so
the compiler does not need to track individual fusion outcomes; this module
provides the stochastic model used by the runtime simulator and by the
loss/fidelity analysis examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.rng import make_rng

__all__ = ["FusionOutcome", "FusionModel"]

DEFAULT_FUSION_FAILURE_RATE = 0.29
"""Experimental boosted-fusion failure probability cited by the paper."""


class FusionOutcome(str, enum.Enum):
    """Result of attempting one fusion."""

    SUCCESS = "success"
    FAILURE = "failure"
    PHOTON_LOSS = "photon_loss"


@dataclass(frozen=True)
class FusionModel:
    """Stochastic model of a fusion device.

    Attributes:
        failure_rate: Probability that the fusion fails even when both
            photons arrive (erasure outcome that can be renormalised away).
        photon_loss_rate: Probability that at least one of the two photons
            was lost before reaching the device; losses are fatal for the
            affected connection, which is why the paper minimises the
            required photon lifetime.
    """

    failure_rate: float = DEFAULT_FUSION_FAILURE_RATE
    photon_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be a probability")
        if not 0.0 <= self.photon_loss_rate <= 1.0:
            raise ValueError("photon_loss_rate must be a probability")

    @property
    def success_probability(self) -> float:
        """Probability the fusion both receives its photons and succeeds."""
        return (1.0 - self.photon_loss_rate) * (1.0 - self.failure_rate)

    def sample(self, rng=None) -> FusionOutcome:
        """Sample the outcome of one fusion attempt."""
        rng = make_rng(rng)
        if rng.random() < self.photon_loss_rate:
            return FusionOutcome.PHOTON_LOSS
        if rng.random() < self.failure_rate:
            return FusionOutcome.FAILURE
        return FusionOutcome.SUCCESS

    def expected_attempts(self) -> float:
        """Expected number of attempts until a success (geometric mean)."""
        p = self.success_probability
        if p <= 0.0:
            return float("inf")
        return 1.0 / p

    def with_loss(self, photon_loss_rate: float) -> "FusionModel":
        """Return a copy of the model with a different photon-loss rate."""
        return FusionModel(self.failure_rate, photon_loss_rate)
