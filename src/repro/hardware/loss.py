"""Photon loss in fibre-optical delay lines.

Following Figure 1 of the paper, a photon stored for ``n`` clock cycles in a
delay line travels ``L = n * cycle_time * (2/3) c`` metres of fibre and is
lost with probability ``1 - exp(-alpha L)`` where ``alpha = 0.2 dB/km`` is
the attenuation of state-of-the-art optical fibre.  The required photon
lifetime produced by the compiler converts directly into a loss probability
through this model, which is how the paper argues that minimising the
lifetime is the right compiler objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DelayLineModel",
    "photon_loss_probability",
    "max_cycles_for_loss_budget",
]

_SPEED_OF_LIGHT_KM_PER_S = 299_792.458
_DB_TO_NEPER = math.log(10.0) / 10.0


@dataclass(frozen=True)
class DelayLineModel:
    """Physical parameters of a fibre delay line.

    Attributes:
        cycle_time_ns: Duration of one system clock cycle (resource-state
            generation period) in nanoseconds.  The paper studies 1, 10 and
            100 ns/cycle.
        attenuation_db_per_km: Fibre attenuation; 0.2 dB/km by default.
        speed_fraction: Group velocity in the fibre as a fraction of c
            (2/3 by default).
    """

    cycle_time_ns: float = 1.0
    attenuation_db_per_km: float = 0.2
    speed_fraction: float = 2.0 / 3.0

    def fibre_length_km(self, cycles: float) -> float:
        """Distance travelled while stored for ``cycles`` clock cycles."""
        seconds = cycles * self.cycle_time_ns * 1e-9
        return seconds * self.speed_fraction * _SPEED_OF_LIGHT_KM_PER_S

    def survival_probability(self, cycles: float) -> float:
        """Probability the photon is *not* lost after ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        length_km = self.fibre_length_km(cycles)
        return math.exp(-self.attenuation_db_per_km * _DB_TO_NEPER * length_km)

    def loss_probability(self, cycles: float) -> float:
        """Probability the photon is lost after ``cycles`` cycles (Figure 1)."""
        return 1.0 - self.survival_probability(cycles)

    def max_cycles(self, loss_budget: float) -> int:
        """Largest number of cycles whose loss probability stays below budget."""
        if not 0.0 < loss_budget < 1.0:
            raise ValueError("loss budget must be in (0, 1)")
        per_cycle = self.attenuation_db_per_km * _DB_TO_NEPER * self.fibre_length_km(1.0)
        if per_cycle <= 0.0:
            return 0
        return int(math.floor(-math.log(1.0 - loss_budget) / per_cycle))


def photon_loss_probability(
    cycles: float,
    cycle_time_ns: float = 1.0,
    attenuation_db_per_km: float = 0.2,
    speed_fraction: float = 2.0 / 3.0,
) -> float:
    """Convenience wrapper computing the Figure 1 loss curve at one point."""
    model = DelayLineModel(cycle_time_ns, attenuation_db_per_km, speed_fraction)
    return model.loss_probability(cycles)


def max_cycles_for_loss_budget(
    loss_budget: float,
    cycle_time_ns: float = 1.0,
    attenuation_db_per_km: float = 0.2,
    speed_fraction: float = 2.0 / 3.0,
) -> int:
    """Maximum storage (in cycles) that keeps loss below ``loss_budget``.

    With the paper's defaults (1 ns/cycle, 0.2 dB/km, 2/3 c) this evaluates
    to roughly 5000 cycles at a 5% loss budget, matching the photon-lifetime
    limit quoted from the OneQ/interleaving literature.
    """
    model = DelayLineModel(cycle_time_ns, attenuation_db_per_km, speed_fraction)
    return model.max_cycles(loss_budget)
