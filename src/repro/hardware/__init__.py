"""Photonic MBQC hardware model.

This package captures the hardware abstractions of Section II-B of the
paper:

* :mod:`~repro.hardware.resource_states` — the small resource states emitted
  by resource-state generators (4-ring, 5-star, 6-ring, 7-star) and their
  routing/degree capabilities,
* :mod:`~repro.hardware.fusion` — probabilistic fusion operations,
* :mod:`~repro.hardware.loss` — the delay-line photon-loss model behind
  Figure 1 and the required-photon-lifetime metric,
* :mod:`~repro.hardware.qpu` — single-QPU and multi-QPU system descriptions
  (grid size, connection capacity ``K_max``, interconnect topology),
* :mod:`~repro.hardware.system` — the first-class :class:`SystemModel`
  consumed by every compile layer: per-QPU specs (heterogeneous fleets),
  an explicit weighted interconnect graph with per-link capacities, cached
  all-pairs hop distances/routes, topology builders and JSON custom specs,
* :mod:`~repro.hardware.platforms` — the remote-entanglement platform survey
  of Table I.
"""

from repro.hardware.resource_states import (
    ResourceStateType,
    ResourceStateSpec,
    RESOURCE_STATE_LIBRARY,
    resource_state_graph,
)
from repro.hardware.fusion import FusionModel, FusionOutcome
from repro.hardware.loss import (
    DelayLineModel,
    photon_loss_probability,
    max_cycles_for_loss_budget,
)
from repro.hardware.qpu import QPUSpec, MultiQPUSystem, InterconnectTopology
from repro.hardware.system import (
    Link,
    SystemModel,
    build_system,
    system_from_json,
    system_to_json,
)
from repro.hardware.platforms import PlatformRecord, PLATFORM_SURVEY

__all__ = [
    "ResourceStateType",
    "ResourceStateSpec",
    "RESOURCE_STATE_LIBRARY",
    "resource_state_graph",
    "FusionModel",
    "FusionOutcome",
    "DelayLineModel",
    "photon_loss_probability",
    "max_cycles_for_loss_budget",
    "QPUSpec",
    "MultiQPUSystem",
    "InterconnectTopology",
    "Link",
    "SystemModel",
    "build_system",
    "system_from_json",
    "system_to_json",
    "PlatformRecord",
    "PLATFORM_SURVEY",
]
