"""First-class multi-QPU system model: heterogeneity + interconnect graph.

The paper's multi-QPU machine (Section IV) is defined by its interconnect:
QPUs exchange connector photons over heralded-entanglement links, and the
compiler must respect which links exist, how many concurrent connections
each supports, and how far apart two QPUs are.  :class:`SystemModel` makes
that description a first-class compile input:

* **per-QPU specs** — every QPU has its own
  :class:`~repro.hardware.qpu.QPUSpec` (grid size, resource-state shape,
  connection capacity), so heterogeneous fleets are expressible;
* **an explicit weighted interconnect graph** — a tuple of
  :class:`Link` objects with per-link capacities, built by topology
  builders (fully-connected, line, ring, star, 2D grid, torus) or loaded
  from a custom JSON adjacency;
* **cached all-pairs hop distances and routes** — BFS shortest paths are
  computed once per model and memoised, with an op-counter
  (``system.graph_builds``) pinning the build count in the perf harness.

Every compile layer consults the same model: the partitioner balances
against per-QPU cell capacities and weights cut edges by hop distance, the
mapper uses each partition's own grid, the scheduler routes multi-hop
relay chains and enforces per-link capacities, and the runtime executor
re-checks all of it during replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hardware.qpu import (
    DEFAULT_CONNECTION_CAPACITY,
    InterconnectTopology,
    QPUSpec,
)
from repro.hardware.resource_states import ResourceStateType
from repro.utils.counters import OP_COUNTERS
from repro.utils.errors import ValidationError

__all__ = [
    "Link",
    "SystemModel",
    "build_system",
    "enumerate_routes",
    "grid2d_dimensions",
    "system_from_json",
    "system_to_json",
]

UNREACHABLE = -1
"""Hop-distance marker for QPU pairs with no connecting path."""


def _bfs_route(adjacency, qpu_a, qpu_b, banned=None):
    """Lexicographically-smallest shortest path ``qpu_a -> qpu_b``.

    ``adjacency`` maps each node to its neighbours in ascending order;
    ``banned`` is one normalised link to avoid (detour search).  Returns
    ``None`` when no path exists.
    """

    def blocked(u, v):
        return banned is not None and (min(u, v), max(u, v)) == banned

    distance = {qpu_b: 0}
    frontier = [qpu_b]
    while frontier:
        upcoming = []
        for node in frontier:
            for neighbour in adjacency.get(node, ()):
                if blocked(node, neighbour) or neighbour in distance:
                    continue
                distance[neighbour] = distance[node] + 1
                upcoming.append(neighbour)
        frontier = upcoming
    if qpu_a not in distance:
        return None
    path = [qpu_a]
    node = qpu_a
    while node != qpu_b:
        for neighbour in adjacency[node]:
            if blocked(node, neighbour):
                continue
            if distance.get(neighbour, UNREACHABLE) == distance[node] - 1:
                node = neighbour
                break
        else:  # pragma: no cover - unreachable on a consistent BFS table
            return None
        path.append(node)
    return tuple(path)


def enumerate_routes(links, qpu_a, qpu_b, limit=4):
    """Deterministic simple routes between two QPUs over a raw link set.

    ``links`` is any iterable (or mapping) of normalised ``(min, max)``
    QPU pairs.  The primary route (lexicographically-smallest shortest
    path) comes first, followed by the detours obtained by avoiding one
    primary link at a time — shortest first, ties lexicographic — up to
    ``limit`` routes in total.  This is the route set BDIR's re-route and
    link-shift moves draw from when no :class:`SystemModel` is at hand.
    """
    neighbours: Dict[int, set] = {}
    for u, v in links:
        neighbours.setdefault(u, set()).add(v)
        neighbours.setdefault(v, set()).add(u)
    adjacency = {node: tuple(sorted(peers)) for node, peers in neighbours.items()}
    primary = _bfs_route(adjacency, qpu_a, qpu_b)
    if primary is None:
        return []
    seen = {primary}
    detours = []
    for u, v in zip(primary, primary[1:]):
        detour = _bfs_route(adjacency, qpu_a, qpu_b, banned=(min(u, v), max(u, v)))
        if detour is not None and detour not in seen:
            seen.add(detour)
            detours.append(detour)
    detours.sort(key=lambda route: (len(route), route))
    return [primary, *detours][:limit]


@dataclass(frozen=True)
class Link:
    """One heralded-entanglement link between two QPUs.

    Attributes:
        qpu_a / qpu_b: Endpoint QPU indices, normalised so ``qpu_a < qpu_b``.
        capacity: Concurrent synchronisation tasks this link can carry in
            one cycle (per-link ``K_max``).
    """

    qpu_a: int
    qpu_b: int
    capacity: int = DEFAULT_CONNECTION_CAPACITY

    def __post_init__(self) -> None:
        if self.qpu_a == self.qpu_b:
            raise ValidationError("a link must join two distinct QPUs")
        if self.qpu_a > self.qpu_b:
            a, b = self.qpu_b, self.qpu_a
            object.__setattr__(self, "qpu_a", a)
            object.__setattr__(self, "qpu_b", b)
        if self.qpu_a < 0:
            raise ValidationError("link endpoints must be non-negative QPU indices")
        if self.capacity < 1:
            raise ValidationError("link capacity must be at least 1")

    @property
    def key(self) -> Tuple[int, int]:
        """Normalised ``(min, max)`` endpoint pair."""
        return (self.qpu_a, self.qpu_b)


class SystemModel:
    """A multi-QPU system: per-QPU specs plus a weighted interconnect graph.

    Instances are immutable after construction; the adjacency structure,
    all-pairs hop distances and shortest-path routes are computed once in
    ``__init__`` and cached (the seed implementation rebuilt a networkx
    graph on every connectivity query).
    """

    __slots__ = (
        "qpus",
        "links",
        "topology",
        "_adjacency",
        "_link_capacity",
        "_distance",
        "_next_hop",
    )

    def __init__(
        self,
        qpus: Sequence[QPUSpec],
        links: Sequence[Link],
        topology: InterconnectTopology = InterconnectTopology.CUSTOM,
    ) -> None:
        if not qpus:
            raise ValidationError("a system needs at least one QPU")
        self.qpus: Tuple[QPUSpec, ...] = tuple(qpus)
        self.topology = InterconnectTopology(topology)
        num = len(self.qpus)

        normalised: Dict[Tuple[int, int], Link] = {}
        for link in links:
            if link.qpu_b >= num:
                raise ValidationError(
                    f"link {link.key} references QPU {link.qpu_b}, but the "
                    f"system has only {num} QPUs"
                )
            if link.key in normalised:
                raise ValidationError(f"duplicate link {link.key}")
            normalised[link.key] = link
        self.links: Tuple[Link, ...] = tuple(
            normalised[key] for key in sorted(normalised)
        )

        # Adjacency lists + per-link capacity map, built once.
        adjacency: List[List[int]] = [[] for _ in range(num)]
        capacity: Dict[Tuple[int, int], int] = {}
        for link in self.links:
            adjacency[link.qpu_a].append(link.qpu_b)
            adjacency[link.qpu_b].append(link.qpu_a)
            capacity[link.key] = link.capacity
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbours)) for neighbours in adjacency
        )
        self._link_capacity = capacity

        # All-pairs BFS: hop distances plus a next-hop table for route
        # reconstruction.  Neighbours are visited in ascending index order,
        # so routes are deterministic (lexicographically smallest shortest
        # path) for a fixed link set.
        distance = [[UNREACHABLE] * num for _ in range(num)]
        next_hop = [[UNREACHABLE] * num for _ in range(num)]
        for source in range(num):
            dist_row = distance[source]
            hop_row = next_hop[source]
            dist_row[source] = 0
            hop_row[source] = source
            frontier = [source]
            while frontier:
                upcoming: List[int] = []
                for node in frontier:
                    for neighbour in self._adjacency[node]:
                        if dist_row[neighbour] == UNREACHABLE:
                            dist_row[neighbour] = dist_row[node] + 1
                            # First hop on the path source -> neighbour.
                            hop_row[neighbour] = (
                                neighbour if node == source else hop_row[node]
                            )
                            upcoming.append(neighbour)
                frontier = upcoming
        self._distance: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row) for row in distance
        )
        self._next_hop: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(row) for row in next_hop
        )
        OP_COUNTERS.add("system.graph_builds")

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def num_qpus(self) -> int:
        """Number of QPUs in the system."""
        return len(self.qpus)

    @property
    def num_links(self) -> int:
        """Number of interconnect links."""
        return len(self.links)

    def neighbors(self, qpu: int) -> Tuple[int, ...]:
        """QPUs directly linked to ``qpu``, in ascending index order."""
        return self._adjacency[qpu]

    def are_connected(self, qpu_a: int, qpu_b: int) -> bool:
        """True if the two QPUs share a direct link (or are the same QPU)."""
        if qpu_a == qpu_b:
            return True
        return (min(qpu_a, qpu_b), max(qpu_a, qpu_b)) in self._link_capacity

    def communication_distance(self, qpu_a: int, qpu_b: int) -> int:
        """Hop count between two QPUs (``UNREACHABLE`` when disconnected)."""
        return self._distance[qpu_a][qpu_b]

    def hop_matrix(self) -> Tuple[Tuple[int, ...], ...]:
        """Cached all-pairs hop-distance matrix."""
        return self._distance

    def route(self, qpu_a: int, qpu_b: int) -> Tuple[int, ...]:
        """Deterministic shortest QPU path from ``qpu_a`` to ``qpu_b``.

        Raises:
            ValidationError: if the two QPUs are not connected by any path.
        """
        if qpu_a == qpu_b:
            return (qpu_a,)
        if self._distance[qpu_a][qpu_b] == UNREACHABLE:
            raise ValidationError(
                f"QPUs {qpu_a} and {qpu_b} are not connected in the "
                f"{self.topology.value} interconnect"
            )
        path = [qpu_a]
        node = qpu_a
        while node != qpu_b:
            node = self._next_hop[node][qpu_b]
            path.append(node)
        return tuple(path)

    def alternate_routes(self, qpu_a: int, qpu_b: int, limit: int = 4) -> List[Tuple[int, ...]]:
        """The canonical route plus deterministic link-avoiding detours.

        The first entry is always :meth:`route`; each further entry is the
        shortest path avoiding one canonical link (shortest first, ties
        lexicographic), up to ``limit`` routes.  BDIR's re-route and
        link-shift moves pick from this set.
        """
        primary = self.route(qpu_a, qpu_b)
        adjacency = {qpu: self._adjacency[qpu] for qpu in range(self.num_qpus)}
        seen = {primary}
        detours = []
        for u, v in zip(primary, primary[1:]):
            detour = _bfs_route(adjacency, qpu_a, qpu_b, banned=(min(u, v), max(u, v)))
            if detour is not None and detour not in seen:
                seen.add(detour)
                detours.append(detour)
        detours.sort(key=lambda route: (len(route), route))
        return [primary, *detours][:limit]

    def comm_volume_matrix(self) -> Tuple[Tuple[float, ...], ...]:
        """Per-pair communication volume: relay cycles under the route table.

        One pipelined sync between QPUs ``p`` and ``q`` with an ``H``-hop
        route consumes ``2H`` QPU communication cycles (the endpoints one
        each, every store-and-forward intermediate two), ``H - 1`` buffer
        cycles, and one link cycle per hop weighted by how narrow the link
        is relative to the system's widest (``max_cap / cap``) — a
        congested-prone link prices higher.  This replaces the raw
        hop-count weighting as the partitioner's cut objective; on uniform
        fully-connected systems all off-diagonal entries are equal, which
        the partitioner collapses back to the classic unweighted gain.
        """
        widest = max((link.capacity for link in self.links), default=1)
        size = self.num_qpus
        matrix = []
        for source in range(size):
            row = []
            for target in range(size):
                if source == target:
                    row.append(0.0)
                    continue
                route = self.route(source, target)
                hops = len(route) - 1
                link_cost = sum(
                    widest / self.link_capacity(u, v)
                    for u, v in zip(route, route[1:])
                )
                row.append(2.0 * hops + (hops - 1) + link_cost)
            matrix.append(tuple(row))
        return tuple(matrix)

    def link_capacity(self, qpu_a: int, qpu_b: int) -> int:
        """Per-link ``K_max`` of the direct link between two QPUs.

        Raises:
            ValidationError: if no direct link exists.
        """
        key = (min(qpu_a, qpu_b), max(qpu_a, qpu_b))
        capacity = self._link_capacity.get(key)
        if capacity is None:
            raise ValidationError(f"no direct link between QPUs {qpu_a} and {qpu_b}")
        return capacity

    def link_capacities(self) -> Dict[Tuple[int, int], int]:
        """Copy of the ``(min, max) pair -> capacity`` link table."""
        return dict(self._link_capacity)

    def validate_connected(self) -> None:
        """Raise unless every QPU can reach every other QPU."""
        for source in range(self.num_qpus):
            for target in range(self.num_qpus):
                if self._distance[source][target] == UNREACHABLE:
                    raise ValidationError(
                        f"interconnect is disconnected: QPU {source} cannot "
                        f"reach QPU {target}"
                    )

    # ------------------------------------------------------------------ #
    # Degraded views (fault injection)
    # ------------------------------------------------------------------ #

    def without_link(self, qpu_a: int, qpu_b: int) -> "SystemModel":
        """Degraded view with one link removed; QPU indices are unchanged.

        The recovery policies route around a dead or browned-out link by
        querying this view: routes, hop distances and alternate paths are
        all recomputed without the severed link.  The resulting system may
        be disconnected — callers decide whether that is fatal.

        Raises:
            ValidationError: if the two QPUs share no direct link.
        """
        key = (min(qpu_a, qpu_b), max(qpu_a, qpu_b))
        if key not in self._link_capacity:
            raise ValidationError(f"no direct link between QPUs {qpu_a} and {qpu_b}")
        return SystemModel(
            self.qpus,
            tuple(link for link in self.links if link.key != key),
            topology=InterconnectTopology.CUSTOM,
        )

    def without_qpu(self, qpu: int) -> "SystemModel":
        """Degraded view with one QPU's links severed; indices are unchanged.

        The dead QPU keeps its index — schedules and routes stay
        addressable — but loses every incident link, so it is unreachable
        and can no longer relay.  Callers additionally treat it as unable
        to host tasks; :class:`SystemModel` itself only models the
        interconnect.

        Raises:
            ValidationError: if ``qpu`` is not part of the system.
        """
        if not 0 <= qpu < self.num_qpus:
            raise ValidationError(f"QPU {qpu} is not part of the system")
        return SystemModel(
            self.qpus,
            tuple(link for link in self.links if qpu not in link.key),
            topology=InterconnectTopology.CUSTOM,
        )

    # ------------------------------------------------------------------ #
    # Heterogeneity
    # ------------------------------------------------------------------ #

    @property
    def is_homogeneous(self) -> bool:
        """True if every QPU shares one spec and every link one capacity."""
        if any(qpu != self.qpus[0] for qpu in self.qpus[1:]):
            return False
        capacities = {link.capacity for link in self.links}
        return len(capacities) <= 1

    @property
    def is_fully_connected(self) -> bool:
        """True if every QPU pair shares a direct link."""
        expected = self.num_qpus * (self.num_qpus - 1) // 2
        return self.num_links == expected

    def qpu_capacity_weights(self) -> Tuple[float, ...]:
        """Relative computational capacity of every QPU (cells per layer)."""
        cells = [qpu.cells_per_layer for qpu in self.qpus]
        total = float(sum(cells))
        return tuple(c / total for c in cells)

    def qpu_connection_capacities(self) -> Tuple[int, ...]:
        """Per-QPU ``K_max`` values."""
        return tuple(qpu.connection_capacity for qpu in self.qpus)

    @property
    def total_cells_per_layer(self) -> int:
        """Total RSG cells across the fleet in one clock cycle."""
        return sum(qpu.cells_per_layer for qpu in self.qpus)

    # ------------------------------------------------------------------ #
    # Reporting / serialisation
    # ------------------------------------------------------------------ #

    def describe(self) -> Dict[str, object]:
        """Plain-dict description for reports and cache keys."""
        return {
            "num_qpus": self.num_qpus,
            "topology": self.topology.value,
            "grid_sizes": [qpu.grid_size for qpu in self.qpus],
            "rsg_types": [qpu.rsg_type.value for qpu in self.qpus],
            "qpu_kmax": [qpu.connection_capacity for qpu in self.qpus],
            "links": [[link.qpu_a, link.qpu_b, link.capacity] for link in self.links],
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemModel):
            return NotImplemented
        return (
            self.qpus == other.qpus
            and self.links == other.links
            and self.topology == other.topology
        )

    def __hash__(self) -> int:
        return hash((self.qpus, self.links, self.topology))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemModel(num_qpus={self.num_qpus}, "
            f"topology={self.topology.value!r}, links={self.num_links})"
        )


# --------------------------------------------------------------------------- #
# Topology builders
# --------------------------------------------------------------------------- #


def grid2d_dimensions(num_qpus: int) -> Tuple[int, int]:
    """Most-square ``rows x cols`` factorisation of ``num_qpus``."""
    best = (1, num_qpus)
    for rows in range(1, num_qpus + 1):
        if num_qpus % rows:
            continue
        cols = num_qpus // rows
        if abs(rows - cols) <= abs(best[0] - best[1]):
            best = (rows, cols)
    return best


def _topology_edges(
    topology: InterconnectTopology, num_qpus: int
) -> List[Tuple[int, int]]:
    """Edge list of a named topology over ``num_qpus`` QPUs."""
    if num_qpus == 1:
        return []
    if topology is InterconnectTopology.FULLY_CONNECTED:
        return [
            (a, b) for a in range(num_qpus) for b in range(a + 1, num_qpus)
        ]
    if topology is InterconnectTopology.LINE:
        return [(a, a + 1) for a in range(num_qpus - 1)]
    if topology is InterconnectTopology.RING:
        if num_qpus == 2:
            return [(0, 1)]
        return [(a, (a + 1) % num_qpus) for a in range(num_qpus)]
    if topology is InterconnectTopology.STAR:
        return [(0, b) for b in range(1, num_qpus)]
    if topology in (InterconnectTopology.GRID_2D, InterconnectTopology.TORUS):
        rows, cols = grid2d_dimensions(num_qpus)
        edges = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    edges.append((node, node + 1))
                elif topology is InterconnectTopology.TORUS and cols > 2:
                    edges.append((r * cols, node))
                if r + 1 < rows:
                    edges.append((node, node + cols))
                elif topology is InterconnectTopology.TORUS and rows > 2:
                    edges.append((c, node))
        return sorted(set((min(a, b), max(a, b)) for a, b in edges))
    raise ValidationError(
        f"topology {topology.value!r} has no builder; pass explicit links"
    )


def build_system(
    num_qpus: int,
    qpu: Union[QPUSpec, Sequence[QPUSpec]],
    topology: InterconnectTopology = InterconnectTopology.FULLY_CONNECTED,
    link_capacity: Optional[int] = None,
    custom_links: Optional[Sequence[Tuple[int, ...]]] = None,
) -> SystemModel:
    """Build a :class:`SystemModel` from a named topology or custom links.

    Args:
        num_qpus: Number of QPUs.
        qpu: One shared :class:`QPUSpec` (homogeneous) or a sequence with
            one spec per QPU (heterogeneous; length must equal ``num_qpus``).
        topology: Named interconnect shape; ``CUSTOM`` requires
            ``custom_links``.
        link_capacity: Per-link ``K_max`` applied to every built link;
            defaults to the minimum endpoint ``connection_capacity``.
        custom_links: Explicit ``(qpu_a, qpu_b)`` or
            ``(qpu_a, qpu_b, capacity)`` tuples for ``CUSTOM`` systems.
    """
    topology = InterconnectTopology(topology)
    if isinstance(qpu, QPUSpec):
        qpus: Tuple[QPUSpec, ...] = (qpu,) * num_qpus
    else:
        qpus = tuple(qpu)
        if len(qpus) != num_qpus:
            raise ValidationError(
                f"heterogeneous spec lists {len(qpus)} QPUs, but the system "
                f"declares num_qpus={num_qpus}"
            )

    def capacity_for(a: int, b: int, explicit: Optional[int] = None) -> int:
        if explicit is not None:
            return explicit
        if link_capacity is not None:
            return link_capacity
        return min(qpus[a].connection_capacity, qpus[b].connection_capacity)

    if topology is InterconnectTopology.CUSTOM:
        if not custom_links:
            raise ValidationError("custom topology requires explicit links")
        links = []
        for entry in custom_links:
            if len(entry) == 2:
                a, b = entry
                links.append(Link(int(a), int(b), capacity_for(int(a), int(b))))
            elif len(entry) == 3:
                a, b, cap = entry
                links.append(Link(int(a), int(b), capacity_for(int(a), int(b), int(cap))))
            else:
                raise ValidationError(
                    f"custom link {entry!r} must be (a, b) or (a, b, capacity)"
                )
    else:
        if custom_links:
            raise ValidationError(
                "explicit links are only accepted with the custom topology"
            )
        links = [
            Link(a, b, capacity_for(a, b)) for a, b in _topology_edges(topology, num_qpus)
        ]
    system = SystemModel(qpus, links, topology)
    if num_qpus > 1:
        system.validate_connected()
    return system


# --------------------------------------------------------------------------- #
# JSON serialisation (custom system specs on disk)
# --------------------------------------------------------------------------- #


def system_to_json(system: SystemModel) -> Dict[str, object]:
    """JSON-serialisable description of a system (``system_from_json`` inverse)."""
    return {
        "topology": system.topology.value,
        "qpus": [
            {
                "grid_size": qpu.grid_size,
                "rsg_type": qpu.rsg_type.value,
                "connection_capacity": qpu.connection_capacity,
            }
            for qpu in system.qpus
        ],
        "links": [
            [link.qpu_a, link.qpu_b, link.capacity] for link in system.links
        ],
    }


def system_from_json(source: Union[str, Dict[str, object]]) -> SystemModel:
    """Load a :class:`SystemModel` from a JSON file path or parsed dict.

    The document lists per-QPU specs and (for custom topologies) an explicit
    adjacency::

        {
          "topology": "custom",
          "qpus": [{"grid_size": 7, "rsg_type": "5-star", "connection_capacity": 4}, ...],
          "links": [[0, 1], [1, 2, 2]]
        }

    Named topologies may omit ``links`` (the builder derives them).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = dict(source)

    qpu_entries = document.get("qpus")
    if not qpu_entries:
        raise ValidationError("system spec must list at least one QPU under 'qpus'")
    qpus = []
    for entry in qpu_entries:
        qpus.append(
            QPUSpec(
                grid_size=int(entry["grid_size"]),
                rsg_type=ResourceStateType.from_name(
                    entry.get("rsg_type", ResourceStateType.STAR_5)
                ),
                connection_capacity=int(
                    entry.get("connection_capacity", DEFAULT_CONNECTION_CAPACITY)
                ),
            )
        )

    topology = InterconnectTopology(document.get("topology", "custom"))
    raw_links = document.get("links")
    links = [tuple(int(x) for x in entry) for entry in raw_links] if raw_links else None
    if topology is not InterconnectTopology.CUSTOM and links is not None:
        # An explicit adjacency wins over the named shape.
        topology = InterconnectTopology.CUSTOM
    link_capacity = document.get("link_capacity")
    return build_system(
        num_qpus=len(qpus),
        qpu=qpus,
        topology=topology,
        link_capacity=None if link_capacity is None else int(link_capacity),
        custom_links=links,
    )
