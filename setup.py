"""Setup shim.

The environment used for the reproduction has no network access and no
``wheel`` package, so PEP 660 editable installs (which shell out to
``bdist_wheel``) are unavailable.  Keeping a classic ``setup.py`` alongside
``pyproject.toml`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
