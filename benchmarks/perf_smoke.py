"""Counter-based perf smoke check for CI.

Runs the small figure-10 grid through the ``runtime`` sweep task and
compares the deterministic hot-path **op counters** (scheduler cycles,
annealing evaluations, partitioner moves, mapper probes — see
:mod:`repro.utils.counters`) against the committed baseline in
``benchmarks/results/perf_smoke_counters.json``.

Op counts are exact functions of the input for a fixed seed, so the check
is immune to CI machine noise: a change that reintroduces a quadratic
rescan shows up as a counter jump even when wall-clock jitter would hide
it.  The check fails when any counter regresses by more than
``TOLERANCE`` (counters may also *drop* freely — improvements only ratchet
the baseline down when it is regenerated).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "perf_smoke_counters.json"

#: Allowed relative growth per counter before the check fails.
TOLERANCE = 0.10
#: Absolute slack for tiny counters where one extra call is not a regression.
ABSOLUTE_SLACK = 8

#: The grid the smoke check compiles (kept small: seconds on CI).
QFT_SIZES = (8, 12)
NUM_QPUS = 8
SEED = 0


def collect_counters() -> dict:
    """Compile the smoke grid and return the per-point op-counter table.

    The ``runtime`` task counts the timed compiler stages (partition,
    mapping, scheduling); the translate/compgraph prefix runs before its
    counter window (and may be served from the computation LRU), so the
    front end — signal shifting and the dependency build — is counted here
    explicitly with a fresh translation per instance.
    """
    # The check must measure real compiles, never a previous run's cache.
    os.environ.pop("DCMBQC_ARTIFACT_CACHE_DIR", None)
    os.environ.pop("DCMBQC_PIPELINE_DISABLE_CACHE", None)

    from repro.mbqc.dependency import build_dependency_graph
    from repro.mbqc.signal_shift import signal_shift
    from repro.mbqc.translate import circuit_to_pattern
    from repro.programs.registry import build_benchmark
    from repro.sweep import grids
    from repro.sweep.tasks import TASK_REGISTRY
    from repro.utils.counters import OP_COUNTERS

    table = {}
    for point in grids.figure10_grid(seed=SEED, qft_sizes=QFT_SIZES, num_qpus=NUM_QPUS):
        row = TASK_REGISTRY[point.task](point)
        counters = {
            name[len("ops_"):]: value
            for name, value in sorted(row.items())
            if name.startswith("ops_") and value
        }
        before = OP_COUNTERS.snapshot()
        pattern = circuit_to_pattern(
            build_benchmark(point.program, point.num_qubits, seed=point.circuit_seed)
        )
        shifted = signal_shift(pattern)
        dependency = build_dependency_graph(shifted)
        for name, value in OP_COUNTERS.delta_since(before).items():
            if value:
                counters[name.replace(".", "_")] = counters.get(
                    name.replace(".", "_"), 0
                ) + value
        counters["dependency_edges"] = dependency.graph.number_of_edges()
        table[f"qft-{row['qubits']}"] = counters

    # Sparse-interconnect point: a 4-QPU line exercises the pipelined
    # relay scheduler — route re-evaluations, store-and-forward buffer
    # conflicts, BDIR re-route/link-shift moves — which the
    # fully-connected figure-10 grid never touches.
    from repro.core.compiler import DCMBQCCompiler
    from repro.core.config import DCMBQCConfig
    from repro.programs.registry import paper_grid_size
    from repro.sweep.cache import build_computation

    computation = build_computation("QFT", QFT_SIZES[-1], SEED)
    config = DCMBQCConfig(
        num_qpus=4,
        grid_size=paper_grid_size(QFT_SIZES[-1]),
        topology="line",
        seed=SEED,
    )
    before = OP_COUNTERS.snapshot()
    DCMBQCCompiler(config).compile_run(computation, store=None, use_cache=False)
    table[f"qft-{QFT_SIZES[-1]}-line"] = {
        name.replace(".", "_"): value
        for name, value in sorted(OP_COUNTERS.delta_since(before).items())
        if value
    }
    return table


def check_zero_overhead(reference: dict) -> list:
    """Guard the disabled-observability fast path.

    With tracer, event log and resource sampler all off, a second collection
    pass must produce an op-counter table byte-identical to ``reference``.
    Any drift means an instrumentation layer leaked ops (or state) into the
    hot path while disabled.
    """
    from repro.obs.events import EVENTS
    from repro.obs.resources import RESOURCES
    from repro.obs.trace import TRACER

    problems = []
    if TRACER.enabled:
        problems.append("tracer unexpectedly enabled during perf smoke")
    if EVENTS.enabled:
        problems.append("event log unexpectedly enabled during perf smoke")
    if RESOURCES.enabled:
        problems.append("resource sampler unexpectedly enabled during perf smoke")
    if problems:
        return problems
    second = collect_counters()
    if json.dumps(reference, sort_keys=True) != json.dumps(second, sort_keys=True):
        problems.append(
            "op-counter tables differ between identical runs with "
            "observability disabled — the disabled path is not zero-overhead"
        )
    return problems


def compare(baseline: dict, current: dict) -> list:
    """Return a list of human-readable regression descriptions."""
    regressions = []
    for instance, base_counters in sorted(baseline.items()):
        seen = current.get(instance)
        if seen is None:
            regressions.append(f"{instance}: missing from current run")
            continue
        for name, base_value in sorted(base_counters.items()):
            value = seen.get(name, 0)
            limit = max(base_value * (1.0 + TOLERANCE), base_value + ABSOLUTE_SLACK)
            if value > limit:
                regressions.append(
                    f"{instance}: {name} = {value} exceeds baseline "
                    f"{base_value} by more than {TOLERANCE:.0%} (limit {limit:.0f})"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    args = parser.parse_args(argv)

    current = collect_counters()
    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(
                {"qft_sizes": list(QFT_SIZES), "num_qpus": NUM_QPUS, "seed": SEED,
                 "tolerance": TOLERANCE, "counters": current},
                indent=1,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"error: no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    regressions = compare(baseline["counters"], current)
    for line in regressions:
        print(f"REGRESSION {line}", file=sys.stderr)
    if regressions:
        return 1
    overhead = check_zero_overhead(current)
    for line in overhead:
        print(f"OVERHEAD {line}", file=sys.stderr)
    if overhead:
        return 1
    total = sum(sum(c.values()) for c in current.values())
    print(
        f"perf smoke OK: {len(current)} instances, "
        f"{total} hot-path ops within {TOLERANCE:.0%} of baseline; "
        f"zero-overhead guard held (obs disabled, counters byte-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
