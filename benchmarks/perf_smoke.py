"""Counter-based perf smoke check for CI.

Runs the small figure-10 grid through the ``runtime`` sweep task and
compares the deterministic hot-path **op counters** (scheduler cycles,
annealing evaluations, partitioner moves, mapper probes — see
:mod:`repro.utils.counters`) against the committed baseline in
``benchmarks/results/perf_smoke_counters.json``.

Op counts are exact functions of the input for a fixed seed, so the check
is immune to CI machine noise: a change that reintroduces a quadratic
rescan shows up as a counter jump even when wall-clock jitter would hide
it.  The check fails when any counter regresses by more than
``TOLERANCE`` (counters may also *drop* freely — improvements only ratchet
the baseline down when it is regenerated).

A dedicated 64-qubit line instance additionally pins the incremental-BDIR
contract: every annealing iteration goes through exactly one
delta-evaluator proposal, and the Python-level cone walk stays bounded by
the per-call budget — ``evaluate.delta_cone_nodes`` must remain far below
``delta_calls × kernel nodes``, i.e. per-move evaluate cost is sub-linear
in problem size (heavy repairs hand off to the vectorized full pass).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "perf_smoke_counters.json"

#: Allowed relative growth per counter before the check fails.
TOLERANCE = 0.10
#: Absolute slack for tiny counters where one extra call is not a regression.
ABSOLUTE_SLACK = 8

#: The grid the smoke check compiles (kept small: seconds on CI).
QFT_SIZES = (8, 12)
NUM_QPUS = 8
SEED = 0

#: Instance size for the incremental-BDIR sub-linearity pin (figure-10's
#: largest tier-1 row; big enough that a cone-budget regression is loud).
SUBLINEAR_QUBITS = 64
#: ``evaluate.delta_cone_nodes`` may not exceed ``delta_calls`` times this
#: fraction of the kernel's node count.  The delta evaluator's own budget is
#: ``max(64, nodes // 64)`` per call; 1/16 leaves headroom while still being
#: decisively sub-linear.
SUBLINEAR_FRACTION = 16


def collect_counters() -> dict:
    """Compile the smoke grid and return the per-point op-counter table.

    The ``runtime`` task counts the timed compiler stages (partition,
    mapping, scheduling); the translate/compgraph prefix runs before its
    counter window (and may be served from the computation LRU), so the
    front end — signal shifting and the dependency build — is counted here
    explicitly with a fresh translation per instance.
    """
    # The check must measure real compiles, never a previous run's cache.
    os.environ.pop("DCMBQC_ARTIFACT_CACHE_DIR", None)
    os.environ.pop("DCMBQC_PIPELINE_DISABLE_CACHE", None)

    from repro.mbqc.dependency import build_dependency_graph
    from repro.mbqc.signal_shift import signal_shift
    from repro.mbqc.translate import circuit_to_pattern
    from repro.programs.registry import build_benchmark
    from repro.sweep import grids
    from repro.sweep.tasks import TASK_REGISTRY
    from repro.utils.counters import OP_COUNTERS

    table = {}
    for point in grids.figure10_grid(seed=SEED, qft_sizes=QFT_SIZES, num_qpus=NUM_QPUS):
        row = TASK_REGISTRY[point.task](point)
        counters = {
            name[len("ops_"):]: value
            for name, value in sorted(row.items())
            if name.startswith("ops_") and value
        }
        before = OP_COUNTERS.snapshot()
        pattern = circuit_to_pattern(
            build_benchmark(point.program, point.num_qubits, seed=point.circuit_seed)
        )
        shifted = signal_shift(pattern)
        dependency = build_dependency_graph(shifted)
        for name, value in OP_COUNTERS.delta_since(before).items():
            if value:
                counters[name.replace(".", "_")] = counters.get(
                    name.replace(".", "_"), 0
                ) + value
        counters["dependency_edges"] = dependency.graph.number_of_edges()
        table[f"qft-{row['qubits']}"] = counters

    # Sparse-interconnect point: a 4-QPU line exercises the pipelined
    # relay scheduler — route re-evaluations, store-and-forward buffer
    # conflicts, BDIR re-route/link-shift moves — which the
    # fully-connected figure-10 grid never touches.
    from repro.core.compiler import DCMBQCCompiler
    from repro.core.config import DCMBQCConfig
    from repro.programs.registry import paper_grid_size
    from repro.sweep.cache import build_computation

    computation = build_computation("QFT", QFT_SIZES[-1], SEED)
    config = DCMBQCConfig(
        num_qpus=4,
        grid_size=paper_grid_size(QFT_SIZES[-1]),
        topology="line",
        seed=SEED,
    )
    before = OP_COUNTERS.snapshot()
    DCMBQCCompiler(config).compile_run(computation, store=None, use_cache=False)
    table[f"qft-{QFT_SIZES[-1]}-line"] = {
        name.replace(".", "_"): value
        for name, value in sorted(OP_COUNTERS.delta_since(before).items())
        if value
    }

    # Incremental-BDIR sub-linearity instance: a 64-qubit QFT on the same
    # 4-QPU line.  Alongside the op counters the row records the evaluation
    # kernel's node count, so the baseline (and check_delta_sublinearity)
    # can relate per-move cone work to problem size.
    computation = build_computation("QFT", SUBLINEAR_QUBITS, SEED)
    config = DCMBQCConfig(
        num_qpus=4,
        grid_size=paper_grid_size(SUBLINEAR_QUBITS),
        topology="line",
        seed=SEED,
    )
    before = OP_COUNTERS.snapshot()
    result, _ = DCMBQCCompiler(config).compile_run(
        computation, store=None, use_cache=False
    )
    row = {
        name.replace(".", "_"): value
        for name, value in sorted(OP_COUNTERS.delta_since(before).items())
        if value
    }
    row["kernel_nodes"] = result.problem.delta_evaluator().present_count
    table[f"qft-{SUBLINEAR_QUBITS}-line"] = row
    return table


def check_delta_sublinearity(current: dict) -> list:
    """Pin per-move evaluate cost sub-linear in problem size.

    On the 64-qubit line row, every BDIR iteration must make exactly one
    delta-evaluator proposal, and the total Python-level cone walk across
    all proposals must stay far below ``delta_calls × kernel_nodes`` — the
    evaluator either finishes inside its ``max(64, nodes // 64)`` budget or
    bails out to the vectorized full pass *before* walking a linear cone.
    """
    instance = f"qft-{SUBLINEAR_QUBITS}-line"
    row = current.get(instance)
    if row is None:
        return [f"{instance}: missing from current run"]
    problems = []
    nodes = row.get("kernel_nodes", 0)
    iterations = row.get("bdir_iterations", 0)
    calls = row.get("evaluate_delta_calls", 0)
    cone = row.get("evaluate_delta_cone_nodes", 0)
    if nodes <= 0 or iterations <= 0:
        problems.append(
            f"{instance}: no kernel nodes ({nodes}) or BDIR iterations "
            f"({iterations}) recorded — the pin has nothing to measure"
        )
        return problems
    if calls != iterations:
        problems.append(
            f"{instance}: evaluate.delta_calls = {calls} != bdir.iterations "
            f"= {iterations} — an iteration bypassed the delta evaluator"
        )
    limit = calls * max(64, nodes // SUBLINEAR_FRACTION)
    if cone > limit:
        problems.append(
            f"{instance}: evaluate.delta_cone_nodes = {cone} exceeds "
            f"{limit} (= delta_calls x nodes/{SUBLINEAR_FRACTION}, "
            f"nodes = {nodes}) — per-move cone work is no longer sub-linear"
        )
    return problems


def check_zero_overhead(reference: dict) -> list:
    """Guard the disabled-observability fast path.

    With tracer, event log and resource sampler all off, a second collection
    pass must produce an op-counter table byte-identical to ``reference``.
    Any drift means an instrumentation layer leaked ops (or state) into the
    hot path while disabled.
    """
    from repro.obs.events import EVENTS
    from repro.obs.resources import RESOURCES
    from repro.obs.trace import TRACER

    problems = []
    if TRACER.enabled:
        problems.append("tracer unexpectedly enabled during perf smoke")
    if EVENTS.enabled:
        problems.append("event log unexpectedly enabled during perf smoke")
    if RESOURCES.enabled:
        problems.append("resource sampler unexpectedly enabled during perf smoke")
    if problems:
        return problems
    second = collect_counters()
    if json.dumps(reference, sort_keys=True) != json.dumps(second, sort_keys=True):
        problems.append(
            "op-counter tables differ between identical runs with "
            "observability disabled — the disabled path is not zero-overhead"
        )
    return problems


def compare(baseline: dict, current: dict) -> list:
    """Return a list of human-readable regression descriptions."""
    regressions = []
    for instance, base_counters in sorted(baseline.items()):
        seen = current.get(instance)
        if seen is None:
            regressions.append(f"{instance}: missing from current run")
            continue
        for name, base_value in sorted(base_counters.items()):
            value = seen.get(name, 0)
            limit = max(base_value * (1.0 + TOLERANCE), base_value + ABSOLUTE_SLACK)
            if value > limit:
                regressions.append(
                    f"{instance}: {name} = {value} exceeds baseline "
                    f"{base_value} by more than {TOLERANCE:.0%} (limit {limit:.0f})"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    args = parser.parse_args(argv)

    current = collect_counters()
    if args.update:
        # Never commit a baseline that already violates the sub-linearity
        # contract: a regenerated baseline must not grandfather in a cone
        # blow-up.
        sublinearity = check_delta_sublinearity(current)
        for line in sublinearity:
            print(f"SUBLINEARITY {line}", file=sys.stderr)
        if sublinearity:
            return 1
        BASELINE_PATH.write_text(
            json.dumps(
                {"qft_sizes": list(QFT_SIZES), "num_qpus": NUM_QPUS, "seed": SEED,
                 "tolerance": TOLERANCE, "counters": current},
                indent=1,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"error: no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    regressions = compare(baseline["counters"], current)
    for line in regressions:
        print(f"REGRESSION {line}", file=sys.stderr)
    if regressions:
        return 1
    sublinearity = check_delta_sublinearity(current)
    for line in sublinearity:
        print(f"SUBLINEARITY {line}", file=sys.stderr)
    if sublinearity:
        return 1
    overhead = check_zero_overhead(current)
    for line in overhead:
        print(f"OVERHEAD {line}", file=sys.stderr)
    if overhead:
        return 1
    total = sum(sum(c.values()) for c in current.values())
    print(
        f"perf smoke OK: {len(current)} instances, "
        f"{total} hot-path ops within {TOLERANCE:.0%} of baseline; "
        f"zero-overhead guard held (obs disabled, counters byte-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
