"""Table III — DC-MBQC vs OneQ with 4 QPUs and 5-star resource states.

The paper reports execution-time improvements of 2.19x-3.81x and
required-lifetime improvements of 1.61x-4.11x at this configuration.  With
our reimplemented mapping substrate the absolute factors are smaller, but
the benchmark asserts the qualitative shape: the distributed compiler wins
on execution time for every program and never materially regresses the
required photon lifetime.
"""

from repro.metrics.improvement import geometric_mean_improvement
from repro.reporting.experiments import table3_rows
from repro.reporting.render import render_comparison_table


def test_table3_four_qpus_vs_oneq(benchmark, bench_scale, bench_workers, record_table):
    rows = benchmark.pedantic(
        table3_rows,
        args=(bench_scale,),
        kwargs={"workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    record_table(
        "table3_4qpu_vs_oneq",
        render_comparison_table(rows, "Table III — DC-MBQC vs OneQ (4 QPUs, 5-star)"),
    )

    # Distributed execution wins for every benchmark program.
    for row in rows:
        assert row.exec_improvement > 1.0, f"{row.label} regressed on execution time"

    # Lifetime improves on average and never collapses.
    lifetime_factors = [row.lifetime_improvement for row in rows]
    assert geometric_mean_improvement(lifetime_factors) > 1.0
    assert all(factor > 0.8 for factor in lifetime_factors)

    # The aggregate speedup is well below the ideal 4x but clearly above 1.5x
    # for the structured programs (QFT / RCA), matching the paper's ordering.
    structured = [row.exec_improvement for row in rows if row.program in ("QFT", "RCA")]
    assert max(structured) > 1.8
