"""Table VIII — interconnect topology / heterogeneity ablation.

Runs the ``topology`` sweep task over the table-8 grid: every instance is
compiled against fully-connected / ring / line / 2D-grid interconnects at
4 and 8 QPUs, homogeneous and mixed grid sizes, then replayed on the
runtime executor.  The assertions pin the claims the SystemModel refactor
rides on: the interconnect genuinely constrains compilation (sparse
topologies pay relay hops and schedule length), and the executor's
independent storage/lifetime cross-check holds on every system.
"""

from repro.reporting.experiments import table8_rows
from repro.reporting.render import render_table8


def test_table8_topology_ablation(benchmark, bench_scale, bench_workers, record_table):
    rows = benchmark.pedantic(
        table8_rows,
        args=(bench_scale,),
        kwargs={"workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    record_table("table8_topologies", render_table8(rows))

    topologies = {row["topology"] for row in rows}
    assert {"fully-connected", "ring", "line", "grid-2d"} <= topologies

    # The runtime executor's lifetime cross-check holds on every system.
    for row in rows:
        label = f"{row['program']}-{row['num_qubits']}/{row['topology']}/{row['hetero']}"
        assert row["runtime_consistent"], f"{label} violated the storage bound"
        assert row["runtime_max_storage"] <= row["required_photon_lifetime"]

    # Fully-connected systems never relay; sparse interconnects do.
    by_key = {}
    for row in rows:
        key = (row["program"], row["num_qubits"], row["num_qpus"], row["hetero"])
        by_key.setdefault(key, {})[row["topology"]] = row
    for key, variants in by_key.items():
        assert variants["fully-connected"]["relay_hops"] == 0
        sparse_relays = sum(
            variants[t]["relay_hops"] for t in ("ring", "line", "grid-2d") if t in variants
        )
        assert sparse_relays > 0, f"{key}: no sparse topology paid any relay hops"
        # A line at 8 QPUs is the hardest interconnect in the grid: it must
        # relay at least as much as the ring (which halves worst-case hops).
        if key[2] == 8 and "line" in variants and "ring" in variants:
            assert variants["line"]["relay_hops"] >= variants["ring"]["relay_hops"]

    # Heterogeneous fleets change the partition (mixed grids shift
    # capacity), visible as different connector counts or execution times
    # somewhere in the matrix.
    assert any(
        variants["fully-connected"]["connectors"]
        != by_key[(*key[:3], "mixed")]["fully-connected"]["connectors"]
        or variants["fully-connected"]["execution_time"]
        != by_key[(*key[:3], "mixed")]["fully-connected"]["execution_time"]
        for key, variants in by_key.items()
        if key[3] == "homogeneous" and (*key[:3], "mixed") in by_key
    )
