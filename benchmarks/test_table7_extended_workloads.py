"""Table VII — the extended nine-family workload matrix vs OneQ.

Runs every program family (the paper's VQE / QAOA / QFT / RCA plus the
extended GROVER / QPE / GHZ / HS / ANSATZ) through the ``workload`` sweep
task: one distributed compilation and one OneQ baseline per instance, with
the workload's structural characteristics reported alongside the
improvement factors.  The assertions pin the qualitative claims the
extension rides on: every family compiles end to end, distribution wins on
execution time across the board, and the required lifetime never collapses.
"""

from repro.metrics.improvement import geometric_mean_improvement
from repro.programs.registry import benchmark_names
from repro.reporting.experiments import table7_rows
from repro.reporting.render import render_table7


def test_table7_extended_workloads(benchmark, bench_scale, bench_workers, record_table):
    rows = benchmark.pedantic(
        table7_rows,
        args=(bench_scale,),
        kwargs={"workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    record_table("table7_extended_workloads", render_table7(rows))

    # Every registered family appears in the matrix.
    families = {row["program"] for row in rows}
    assert families == set(benchmark_names())

    # Every instance compiled through both compilers and produced a
    # non-trivial computation graph.
    for row in rows:
        assert row["num_fusions"] > 0
        assert row["our_exec"] > 0
        assert row["baseline_exec"] > 0

    # Distributed execution wins for every instance of every family.
    for row in rows:
        label = f"{row['program']}-{row['num_qubits']}"
        assert row["exec_improvement"] > 1.0, f"{label} regressed on execution time"

    # Lifetime improves on average and never collapses.
    lifetime_factors = [float(row["lifetime_improvement"]) for row in rows]
    assert geometric_mean_improvement(lifetime_factors) > 1.0
    assert all(factor > 0.8 for factor in lifetime_factors)
