"""Figure 9 — robustness against the maximum imbalance factor alpha_max.

The paper finds that performance fluctuates only within a narrow band across
alpha_max from 1.05 to 4, because Algorithm 2 returns essentially the same
partition across that whole range.  The benchmark reproduces the sweep on a
QFT instance and checks both the bounded fluctuation and the partition
stability (cut size nearly constant).
"""

from repro.reporting.experiments import figure9_series
from repro.reporting.render import render_series


def test_figure9_alpha_max_robustness(benchmark, record_table):
    rows = benchmark.pedantic(
        figure9_series, kwargs={"program_qubits": 16}, rounds=1, iterations=1
    )
    record_table("figure9_alpha_max", render_series(rows, "Figure 9 — alpha_max robustness"))

    exec_factors = [row["exec_improvement"] for row in rows]
    lifetime_factors = [row["lifetime_improvement"] for row in rows]
    cut_sizes = [row["cut_size"] for row in rows]

    # Performance fluctuates in a narrow band across the whole range.
    assert (max(exec_factors) - min(exec_factors)) / max(exec_factors) < 0.5
    assert (max(lifetime_factors) - min(lifetime_factors)) / max(lifetime_factors) < 0.6

    # The partition itself is stable: the cut size barely moves.
    assert max(cut_sizes) - min(cut_sizes) <= max(5, 0.3 * max(cut_sizes))

    # Distribution keeps winning for every alpha_max.
    assert all(factor > 1.0 for factor in exec_factors)
