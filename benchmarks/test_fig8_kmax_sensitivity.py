"""Figure 8 — sensitivity to the connection capacity K_max.

The paper observes diminishing returns as K_max grows, with the elbow around
K_max = 4-7: inter-QPU communication is the bottleneck only when very few
concurrent connections are available.  The benchmark sweeps K_max for two
QFT sizes and checks monotone improvement with a flattening tail.
"""

from repro.reporting.experiments import figure8_series
from repro.reporting.render import render_series


def test_figure8_kmax_sensitivity(benchmark, record_table):
    rows = benchmark.pedantic(
        figure8_series,
        kwargs={"program_qubits": (16, 25), "kmax_values": (1, 2, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    record_table("figure8_kmax", render_series(rows, "Figure 8 — K_max sensitivity"))

    for program in ("QFT-16", "QFT-25"):
        series = {row["kmax"]: row["exec_improvement"] for row in rows if row["program"] == program}
        # More connection capacity never hurts much...
        assert series[4] >= series[1] * 0.95
        assert series[16] >= series[4] * 0.9
        # ...and the gain from 1 -> 4 dominates the gain from 4 -> 16
        # (diminishing returns; the elbow sits at small K_max).
        low_gain = series[4] - series[1]
        high_gain = series[16] - series[4]
        assert high_gain <= low_gain + 0.15
