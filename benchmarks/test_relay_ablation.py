"""Pipelined vs atomic relay communication model on a 4-QPU line.

Runs the table-8 ``topology`` task with the relay model as the swept axis:
every instance is compiled twice on the same sparse line interconnect —
once under the atomic (circuit-switched) model that holds the whole route
for the whole transfer, once under the pipelined store-and-forward hop
windows — and replayed on the runtime executor.  The assertions pin the
headline claim of the pipelined communication model: same routes, same
relay volume, strictly shorter makespan on at least one row, never a worse
photon lifetime, and a runtime replay that agrees with the scheduler on
every row.
"""

from repro.reporting.experiments import relay_ablation_rows
from repro.reporting.render import render_table8


def test_relay_ablation_line(benchmark, bench_scale, bench_workers, record_table):
    rows = benchmark.pedantic(
        relay_ablation_rows,
        args=(bench_scale,),
        kwargs={"workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    record_table(
        "relay_ablation_line",
        render_table8(
            rows, title="Pipelined vs atomic relay ablation (line interconnect)"
        ),
    )

    by_instance = {}
    for row in rows:
        label = f"{row['program']}-{row['num_qubits']}/{row['relay_model']}"
        # The runtime replay re-derives every hop window independently and
        # must agree with the scheduler on makespan and storage bound.
        assert row["runtime_consistent"], f"{label}: runtime replay diverged"
        key = (row["program"], row["num_qubits"])
        by_instance.setdefault(key, {})[row["relay_model"]] = row

    wins = 0
    for key, variants in by_instance.items():
        atomic, pipelined = variants["atomic"], variants["pipelined"]
        # Same partition, same routes: the relay volume is model-independent.
        assert atomic["relay_hops"] == pipelined["relay_hops"] > 0
        assert pipelined["required_photon_lifetime"] <= atomic["required_photon_lifetime"]
        if pipelined["execution_time"] < atomic["execution_time"]:
            wins += 1
    assert wins >= 1, "pipelined relays never beat the atomic model"
