"""Peephole-cancellation scaling — resume-scan vs the seed restart scan.

``cancel_adjacent_inverses`` used to restart its scan from index 0 after
every removal, which is O(n^3) in the worst case: on a fully-cancelling
*mirror* circuit (``C`` followed by ``C``-dagger) every one of the n/2
removals pays a full rescan of the prefix.  The shipped pass resumes at the
nearest gates that the removal could have unblocked instead.

This benchmark pits the shipped pass against a faithful reimplementation of
the seed's restart-from-zero scan on mirror circuits of the ripple-carry
adder — the one benchmark family whose gate set (CX/CCX/T ladders, no
rotation merging needed) collapses completely inside a single cancellation
pass — at widths up to RCA-512, whose mirror exceeds the gate count of the
paper's largest Table II instances.  Both implementations must agree gate
for gate; the shipped one must be measurably faster.
"""

import time
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.circuit.optimize import (
    _gates_commute_trivially,
    _is_cancelling_pair,
    cancel_adjacent_inverses,
)
from repro.programs.rca import rca_circuit
from repro.utils.tables import Table


def _restart_from_zero_reference(circuit: QuantumCircuit) -> QuantumCircuit:
    """The seed implementation: rescan from index 0 after every removal."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        for index, gate in enumerate(gates):
            if gate is None:
                continue
            for later in range(index + 1, len(gates)):
                other = gates[later]
                if other is None:
                    continue
                if _is_cancelling_pair(gate, other):
                    gates[index] = None
                    gates[later] = None
                    changed = True
                    break
                if not _gates_commute_trivially(gate, other):
                    break
            if changed:
                break
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in gates:
        if gate is not None:
            result.append(gate)
    return result


def _mirror(circuit: QuantumCircuit) -> QuantumCircuit:
    mirror = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_mirror")
    mirror.extend(circuit.gates)
    mirror.extend(circuit.inverse().gates)
    return mirror


def test_resume_scan_beats_restart_scan(record_table, record_bench):
    table = Table(
        title="Peephole cancellation on fully-cancelling RCA mirror circuits",
        columns=["Circuit", "Gates", "Resume scan (s)", "Restart scan (s)", "Speedup"],
    )
    timings = []
    bench_rows = []
    for width in (128, 256, 512):
        mirror = _mirror(rca_circuit(width))

        start = time.perf_counter()
        resumed = cancel_adjacent_inverses(mirror)
        resume_seconds = time.perf_counter() - start

        start = time.perf_counter()
        restarted = _restart_from_zero_reference(mirror)
        restart_seconds = time.perf_counter() - start

        # Both implementations reach the same fixed point: nothing is left.
        assert resumed.num_gates == 0
        assert restarted.num_gates == 0

        timings.append((mirror.num_gates, resume_seconds, restart_seconds))
        bench_rows.append(
            {
                "width": width,
                "gates": mirror.num_gates,
                "resume_seconds": round(resume_seconds, 4),
                "restart_seconds": round(restart_seconds, 4),
            }
        )
        table.add_row(
            [
                f"RCA-{width} + dagger",
                mirror.num_gates,
                round(resume_seconds, 3),
                round(restart_seconds, 3),
                round(restart_seconds / max(resume_seconds, 1e-9), 2),
            ]
        )
    record_table("optimize_cancellation_scaling", table.render())
    record_bench(
        "optimize",
        {"name": "optimize", "schema_version": 1, "rows": bench_rows},
    )

    # At PAPER-scale gate counts the resume scan must win clearly (observed
    # ~3x; the bound is loose to stay robust on noisy CI machines).
    largest_gates, resume_seconds, restart_seconds = timings[-1]
    assert largest_gates > 3000
    assert resume_seconds < restart_seconds, (
        f"resume scan ({resume_seconds:.3f}s) no faster than the restart "
        f"reference ({restart_seconds:.3f}s)"
    )
