"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default
the reduced benchmark scale is used (16/25-qubit instances, seconds per
experiment); set ``DCMBQC_FULL_BENCH=1`` to evaluate the paper's full
Table II grid, or ``DCMBQC_BENCH_SCALE=smoke`` for the smallest instances.

Each benchmark prints its paper-style table to stdout (run pytest with
``-s`` to see it live) and writes it to ``benchmarks/results/<name>.txt`` so
the output can be diffed against the values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.reporting.experiments import BenchmarkScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> BenchmarkScale:
    """Benchmark scale selected via environment variables."""
    return BenchmarkScale.from_environment()


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Sweep-engine worker count (``DCMBQC_BENCH_WORKERS``, default serial).

    At ``DCMBQC_FULL_BENCH=1`` the Table III/IV grids take minutes per
    point; raising the worker count fans them out across processes.
    """
    try:
        return max(1, int(os.environ.get("DCMBQC_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory that receives the rendered tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Return a helper that prints a table and stores it under results/."""

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _record


@pytest.fixture
def record_bench(results_dir):
    """Return a helper that stores a machine-readable perf record.

    Benchmarks write ``BENCH_<name>.json`` next to their ``.txt`` report:
    structured rows (per-stage seconds, deterministic op counters, and the
    previously recorded trajectory) that CI uploads as artifacts so the
    perf history of the repo is diffable across PRs.
    """

    def _record(name: str, payload: dict) -> pathlib.Path:
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return _record
