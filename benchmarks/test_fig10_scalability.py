"""Figure 10 — compilation-runtime scaling.

The paper compares the compile time of the monolithic baseline against
DC-MBQC (Core) and DC-MBQC (Core + BDIR) on QFT programs of growing size,
finding that the distributed compiler scales better and that dropping BDIR
trades a little quality for faster compilation.  The benchmark measures the
same three variants; after the hot-path overhaul (bitset signal domains,
array partitioning/scheduling kernels) the sweep extends to 24 and 32
qubits — twice the size the pre-overhaul pipeline could walk in the same
budget — and, after the incremental-BDIR rework (delta evaluation with a
budgeted fallback to the vectorized full pass, active-set repair
scheduling, maintained link loads), to 64 and 128 qubits, where the BDIR
refinement adds only a small constant over the Core pipeline.

Alongside the paper-style text table the benchmark records
``BENCH_figure10.json``: the full per-stage timing and op-counter rows plus
the pre-overhaul trajectory, the machine-readable perf history CI uploads
as an artifact.
"""

from repro.reporting.experiments import figure10_series
from repro.reporting.render import render_series

#: Pre-overhaul trajectory, as recorded by this benchmark at PR 3
#: (benchmarks/results/figure10_scalability.txt before the hot-path rewrite).
PRE_OVERHAUL_ROWS = [
    {"qubits": 8, "baseline_oneq_seconds": 0.01, "dcmbqc_core_seconds": 0.04, "dcmbqc_core_bdir_seconds": 0.14},
    {"qubits": 12, "baseline_oneq_seconds": 0.03, "dcmbqc_core_seconds": 0.13, "dcmbqc_core_bdir_seconds": 0.86},
    {"qubits": 16, "baseline_oneq_seconds": 0.08, "dcmbqc_core_seconds": 0.51, "dcmbqc_core_bdir_seconds": 0.71},
]

CANONICAL_COLUMNS = (
    "qubits",
    "baseline_oneq_seconds",
    "dcmbqc_core_seconds",
    "dcmbqc_core_bdir_seconds",
)


def test_figure10_compile_time_scaling(benchmark, record_table, record_bench):
    # Warm up interpreter/numpy first-call overhead on the smallest instance
    # so the timed sweep measures the compiler, not import costs.
    figure10_series(qft_sizes=(8,))
    rows = benchmark.pedantic(
        figure10_series,
        kwargs={"qft_sizes": (8, 12, 16, 24, 32, 64, 128)},
        rounds=1,
        iterations=1,
    )
    table_rows = [{name: row[name] for name in CANONICAL_COLUMNS} for row in rows]
    record_table(
        "figure10_scalability",
        render_series(table_rows, "Figure 10 — compile-time scaling"),
    )
    record_bench(
        "figure10",
        {
            "name": "figure10",
            "schema_version": 1,
            "qft_sizes": [row["qubits"] for row in rows],
            "methodology": (
                "sum of per-stage pipeline execution times per variant; "
                "cache-hit stages charged the shared prefix's measured time; "
                "pipeline bookkeeping/hashing excluded (see the runtime task)"
            ),
            "rows": rows,
            "previous": {
                "source": "pre-overhaul recording (PR 3, figure10_scalability.txt)",
                "methodology": (
                    "end-to-end wall clock around compile_run(use_cache=False), "
                    "including pipeline bookkeeping"
                ),
                "rows": PRE_OVERHAUL_ROWS,
            },
        },
    )

    # Compile time grows with problem size for the distributed variants (the
    # baseline is so fast at these reduced sizes that its timing is noisy, so
    # only require that it does not shrink dramatically).
    for key in ("dcmbqc_core_seconds", "dcmbqc_core_bdir_seconds"):
        series = [row[key] for row in rows]
        assert series[-1] >= series[0]
    baseline_series = [row["baseline_oneq_seconds"] for row in rows]
    assert baseline_series[-1] >= 0.5 * baseline_series[0]

    # Core-only compilation is cheaper than Core + BDIR (BDIR re-evaluates the
    # schedule every annealing iteration).  After the hot-path overhaul the
    # smallest instances compile in a few tens of milliseconds, where timing
    # noise rivals the signal — allow a small absolute slack on top of the
    # relative bound.
    for row in rows:
        assert (
            row["dcmbqc_core_seconds"]
            <= row["dcmbqc_core_bdir_seconds"] * 1.25 + 0.05
        )

    # No wall-clock improvement assertion here on purpose: the recorded
    # evidence of the hot-path overhaul (12-qubit Core+BDIR 0.86 s -> ~0.1 s)
    # lives in BENCH_figure10.json, and algorithmic regressions are gated by
    # the counter-based benchmarks/perf_smoke.py, which is immune to CI
    # timing noise.  Only the interactive-time ceiling is asserted —
    # including the 64- and 128-qubit points the incremental BDIR unlocked.
    assert all(row["dcmbqc_core_bdir_seconds"] < 120 for row in rows)

    # The large instances must run BDIR through the incremental machinery:
    # one delta-evaluator proposal per annealing iteration (the authoritative
    # vectorized full pass only as the budgeted fallback inside it) and
    # unvalidated in-repair rescheduling.  Wall-clock-free, so CI-safe.
    for row in rows:
        if row["qubits"] < 64:
            continue
        iterations = row.get("ops_bdir_iterations", 0)
        assert iterations > 0, row["qubits"]
        assert row.get("ops_evaluate_delta_calls", 0) == iterations
        assert row.get("ops_bdir_incremental_repairs", 0) == iterations
