"""Figure 10 — compilation-runtime scaling.

The paper compares the compile time of the monolithic baseline against
DC-MBQC (Core) and DC-MBQC (Core + BDIR) on QFT programs of growing size,
finding that the distributed compiler scales better and that dropping BDIR
trades a little quality for faster compilation.  The benchmark measures the
same three variants on a reduced size sweep.
"""

from repro.reporting.experiments import figure10_series
from repro.reporting.render import render_series


def test_figure10_compile_time_scaling(benchmark, record_table):
    rows = benchmark.pedantic(
        figure10_series, kwargs={"qft_sizes": (8, 12, 16)}, rounds=1, iterations=1
    )
    record_table("figure10_scalability", render_series(rows, "Figure 10 — compile-time scaling"))

    # Compile time grows with problem size for the distributed variants (the
    # baseline is so fast at these reduced sizes that its timing is noisy, so
    # only require that it does not shrink dramatically).
    for key in ("dcmbqc_core_seconds", "dcmbqc_core_bdir_seconds"):
        series = [row[key] for row in rows]
        assert series[-1] >= series[0]
    baseline_series = [row["baseline_oneq_seconds"] for row in rows]
    assert baseline_series[-1] >= 0.5 * baseline_series[0]

    # Core-only compilation is cheaper than Core + BDIR (BDIR re-evaluates the
    # schedule every annealing iteration).
    for row in rows:
        assert row["dcmbqc_core_seconds"] <= row["dcmbqc_core_bdir_seconds"] * 1.25

    # All compilations finish in interactive time at these sizes.
    assert all(row["dcmbqc_core_bdir_seconds"] < 120 for row in rows)
