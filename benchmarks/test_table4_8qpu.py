"""Table IV — DC-MBQC vs OneQ with 8 QPUs and 4-ring resource states.

The paper's key claim for this table is that doubling the QPU count from 4
to 8 increases the improvement factors (up to 6.87x / 7.46x).  The benchmark
checks that (a) 8 QPUs beat the monolithic baseline on every program and
(b) 8 QPUs are at least as good as 4 QPUs on aggregate.
"""

from repro.metrics.improvement import geometric_mean_improvement
from repro.reporting.experiments import table3_rows, table4_rows
from repro.reporting.render import render_comparison_table


def test_table4_eight_qpus_vs_oneq(benchmark, bench_scale, bench_workers, record_table):
    rows = benchmark.pedantic(
        table4_rows,
        args=(bench_scale,),
        kwargs={"workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    record_table(
        "table4_8qpu_vs_oneq",
        render_comparison_table(rows, "Table IV — DC-MBQC vs OneQ (8 QPUs, 4-ring)"),
    )

    for row in rows:
        assert row.exec_improvement > 1.0, f"{row.label} regressed on execution time"

    four_qpu_rows = table3_rows(bench_scale)
    four_mean = geometric_mean_improvement([r.exec_improvement for r in four_qpu_rows])
    eight_mean = geometric_mean_improvement([r.exec_improvement for r in rows])
    # More QPUs help on aggregate (allowing a small tolerance for the
    # different resource state used by the two tables).
    assert eight_mean > 0.95 * four_mean

    # The best 8-QPU speedup clearly exceeds the best 4-QPU speedup.
    assert max(r.exec_improvement for r in rows) > max(
        r.exec_improvement for r in four_qpu_rows
    ) * 0.95
