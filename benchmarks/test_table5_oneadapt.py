"""Table V — DC-MBQC vs an OneAdapt-style baseline (4 and 8 QPUs).

OneAdapt bounds the photon lifetime via dynamic refresh and, for the
distributed comparison, reserves the boundary resource states of every layer
as communication interfaces.  The paper reports additive gains of up to
5.74x (execution time) and 4.33x (lifetime) on top of OneAdapt with 8 QPUs.
The benchmark asserts the same structure: DC-MBQC still wins on execution
time, and the gains with 8 QPUs exceed the gains with 4 QPUs.
"""

from repro.metrics.improvement import geometric_mean_improvement
from repro.reporting.experiments import table5_rows
from repro.reporting.render import render_series


def test_table5_vs_oneadapt(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(table5_rows, args=(bench_scale,), rounds=1, iterations=1)
    record_table("table5_vs_oneadapt", render_series(rows, "Table V — DC-MBQC vs OneAdapt"))

    four = [row for row in rows if row["num_qpus"] == 4]
    eight = [row for row in rows if row["num_qpus"] == 8]
    assert four and eight

    # Distributed execution is faster than the monolithic OneAdapt baseline.
    for row in rows:
        assert row["exec_improvement"] > 1.0, f"{row['program']} regressed vs OneAdapt"

    four_mean = geometric_mean_improvement([row["exec_improvement"] for row in four])
    eight_mean = geometric_mean_improvement([row["exec_improvement"] for row in eight])
    assert eight_mean > 0.95 * four_mean
