"""Table II — benchmark program characteristics.

Regenerates the benchmark-characteristics table with this library's circuit
generators and MBQC translation.  Absolute fusion counts differ from the
paper (our translation is J/CZ-based rather than OneQ's fusion-graph
construction), but the qualitative facts the evaluation relies on must hold:
2-qubit-gate counts match the paper exactly for the deterministic programs,
and fusion counts grow with the paper's fusion counts.
"""

from repro.reporting.experiments import table2_rows
from repro.reporting.render import render_table2


def test_table2_benchmark_characteristics(benchmark, bench_scale, record_table):
    rows = benchmark(table2_rows, bench_scale)
    record_table("table2_benchmarks", render_table2(rows))

    by_label = {row["program"]: row for row in rows}

    # Exact 2-qubit gate counts for the deterministic generators.
    if "QFT-16" in by_label:
        assert by_label["QFT-16"]["num_2q_gates"] == by_label["QFT-16"]["paper_2q_gates"] == 120
    if "VQE-16" in by_label:
        assert by_label["VQE-16"]["num_2q_gates"] == by_label["VQE-16"]["paper_2q_gates"] == 120

    # Fusion counts scale with problem size within each family.
    for family in ("QFT", "VQE", "QAOA", "RCA"):
        family_rows = [row for row in rows if row["program"].startswith(family)]
        sizes = [int(row["program"].split("-")[1]) for row in family_rows]
        fusions = [row["num_fusions"] for row in family_rows]
        ordered = [f for _, f in sorted(zip(sizes, fusions))]
        assert ordered == sorted(ordered)

    # Every instance has more fusions than 2-qubit gates (graph-state overhead).
    for row in rows:
        assert row["num_fusions"] > row["num_2q_gates"]
