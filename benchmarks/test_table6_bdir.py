"""Table VI — effectiveness of the BDIR layer scheduler.

The paper reports that BDIR reduces the required photon lifetime of QFT
programs by 4.62%-15.12% compared to priority-based list scheduling.  The
benchmark runs the same component ablation (full DC-MBQC pipeline, only the
final scheduling stage swapped) and asserts that BDIR never loses and wins
on at least one instance.
"""

from repro.reporting.experiments import table6_rows
from repro.reporting.render import render_table6


def test_table6_bdir_effectiveness(benchmark, record_table):
    rows = benchmark.pedantic(table6_rows, rounds=1, iterations=1)
    record_table("table6_bdir", render_table6(rows))

    for row in rows:
        assert row["bdir_lifetime"] <= row["list_lifetime"], f"BDIR regressed on {row['program']}"
        assert row["improvement_percent"] >= 0.0

    assert any(row["improvement_percent"] > 0.0 for row in rows)
