"""Figure 1 — photon-loss probability vs storage time and clock rate.

Regenerates the loss curves for 1, 10 and 100 ns resource-state clock cycles
and checks the anchors quoted in the paper's introduction: ~5% loss after
5000 cycles at 1 ns/cycle, ~36.9% at 10 ns/cycle, ~99.9% at 100 ns/cycle.
"""

from repro.reporting.experiments import figure1_series
from repro.reporting.render import render_series


def test_figure1_photon_loss(benchmark, record_table):
    rows = benchmark(figure1_series)
    record_table("figure1_photon_loss", render_series(rows, "Figure 1 — photon loss probability"))

    by_key = {(row["cycle_time_ns"], row["cycles"]): row["loss_probability"] for row in rows}
    assert 0.03 < by_key[(1.0, 5000)] < 0.06
    assert 0.30 < by_key[(10.0, 5000)] < 0.45
    assert by_key[(100.0, 5000)] > 0.98
    # Loss is monotone in both storage time and cycle duration.
    for cycle_time in (1.0, 10.0, 100.0):
        series = [by_key[(cycle_time, cycles)] for cycles in (1000, 2000, 3000, 4000, 5000)]
        assert series == sorted(series)
    assert by_key[(10.0, 5000)] > by_key[(1.0, 5000)]
