"""Table I — survey of distributed entangling generation platforms."""

from repro.reporting.experiments import table1_rows
from repro.reporting.render import render_table1


def test_table1_platform_survey(benchmark, record_table):
    rows = benchmark(table1_rows)
    record_table("table1_platform_survey", render_table1(rows))

    assert len(rows) == 7
    qualifying = [r["platform"] for r in rows if r["experimental"] and r["meets_dqc_thresholds"]]
    # The paper's conclusion: photonics is the only experimental platform
    # clearing both the fidelity and the clock-speed threshold.
    assert qualifying == ["Photonic"]
