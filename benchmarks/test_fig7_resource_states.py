"""Figure 7 — improvement factors for different resource-state shapes.

The paper compares 4-ring, 5-star, 6-ring and 7-star resource states on the
36-qubit benchmarks with 4 QPUs, and observes that the 6-ring resource state
gives the *lowest* lifetime improvement because its double routing capacity
makes the monolithic baseline unusually strong.  The benchmark reproduces
the sweep (at a reduced program size) and checks that shape.
"""

from repro.metrics.improvement import geometric_mean_improvement
from repro.reporting.experiments import figure7_series
from repro.reporting.render import render_series


def test_figure7_resource_state_comparison(benchmark, record_table):
    rows = benchmark.pedantic(
        figure7_series, kwargs={"program_qubits": 12, "num_qpus": 4}, rounds=1, iterations=1
    )
    record_table("figure7_resource_states", render_series(rows, "Figure 7 — resource states"))

    assert len(rows) == 4 * 4  # four programs x four resource states

    # Every resource state still benefits from distribution on aggregate.
    for rsg in ("4-ring", "5-star", "6-ring", "7-star"):
        factors = [row["exec_improvement"] for row in rows if row["rsg_type"] == rsg]
        assert geometric_mean_improvement(factors) > 1.0

    # The 6-ring gives the weakest lifetime improvement on aggregate
    # (its extra routing capacity helps the single-QPU baseline the most).
    mean_by_rsg = {
        rsg: geometric_mean_improvement(
            [row["lifetime_improvement"] for row in rows if row["rsg_type"] == rsg]
        )
        for rsg in ("4-ring", "5-star", "6-ring", "7-star")
    }
    assert mean_by_rsg["6-ring"] <= max(mean_by_rsg.values())
    assert min(mean_by_rsg, key=mean_by_rsg.get) in ("6-ring", "7-star")
