"""Tests for the OneQ and OneAdapt single-QPU compilers."""

import pytest

from repro.compiler import OneAdaptCompiler, OneQCompiler, computation_graph_from_pattern
from repro.compiler.execution import SingleQPUSchedule
from repro.hardware.resource_states import ResourceStateType
from repro.mbqc.translate import circuit_to_pattern
from repro.programs import qft_circuit
from repro.utils.errors import ValidationError


class TestOneQCompiler:
    def test_accepts_circuit_pattern_and_graph(self, small_circuit, small_pattern, small_computation):
        compiler = OneQCompiler(grid_size=5)
        for program in (small_circuit, small_pattern, small_computation):
            schedule = compiler.compile(program)
            assert isinstance(schedule, SingleQPUSchedule)
            assert schedule.num_layers > 0

    def test_rejects_unknown_input(self):
        with pytest.raises(TypeError):
            OneQCompiler(grid_size=5).compile("not a circuit")

    def test_schedule_validates(self, qft8_computation):
        OneQCompiler(grid_size=5).compile(qft8_computation).validate()

    def test_lifetime_not_larger_than_execution_time_plus_chain(self, qft8_computation):
        schedule = OneQCompiler(grid_size=5).compile(qft8_computation)
        report = schedule.lifetime_report()
        assert report.tau_fusee < schedule.execution_time

    def test_rsg_type_recorded(self, small_computation):
        schedule = OneQCompiler(grid_size=5, rsg_type=ResourceStateType.RING_4).compile(
            small_computation
        )
        assert schedule.rsg_type is ResourceStateType.RING_4

    def test_summary_keys(self, small_computation):
        summary = OneQCompiler(grid_size=5).compile(small_computation).summary()
        for key in ("layers", "execution_time", "required_photon_lifetime", "utilisation"):
            assert key in summary


class TestOneAdaptCompiler:
    def test_lifetime_bounded_by_refresh_limit(self, qft8_computation):
        compiler = OneAdaptCompiler(grid_size=5, refresh_limit=6)
        schedule = compiler.compile(qft8_computation)
        assert schedule.required_photon_lifetime <= 6

    def test_refresh_costs_execution_time(self, qft8_computation):
        oneq = OneQCompiler(grid_size=5).compile(qft8_computation)
        oneadapt = OneAdaptCompiler(grid_size=5, refresh_limit=3).compile(qft8_computation)
        assert oneadapt.execution_time >= oneq.execution_time

    def test_large_refresh_limit_changes_nothing(self, qft8_computation):
        oneq = OneQCompiler(grid_size=5).compile(qft8_computation)
        oneadapt = OneAdaptCompiler(grid_size=5, refresh_limit=10_000).compile(qft8_computation)
        assert oneadapt.execution_time == oneq.execution_time

    def test_boundary_reservation_increases_layers(self, qft8_computation):
        plain = OneAdaptCompiler(grid_size=6, refresh_limit=10_000).compile(qft8_computation)
        reserved = OneAdaptCompiler(
            grid_size=6, refresh_limit=10_000, boundary_reservation=True
        ).compile(qft8_computation)
        assert reserved.num_layers >= plain.num_layers

    def test_invalid_refresh_limit_rejected(self, small_computation):
        with pytest.raises(ValueError):
            OneAdaptCompiler(grid_size=5, refresh_limit=0).compile(small_computation)

    def test_accepts_circuit_input(self, ghz_circuit):
        schedule = OneAdaptCompiler(grid_size=4).compile(ghz_circuit)
        assert schedule.num_layers > 0

    def test_lifetime_cap_recorded(self, small_computation):
        schedule = OneAdaptCompiler(grid_size=5, refresh_limit=9).compile(small_computation)
        assert schedule.lifetime_cap == 9


class TestScheduleValidation:
    def test_duplicate_placement_detected(self, small_computation):
        schedule = OneQCompiler(grid_size=5).compile(small_computation)
        # Corrupt the schedule: place an existing node a second time.
        node = next(iter(schedule.layers[0].node_cells))
        schedule.layers[-1].node_cells[node] = list(schedule.layers[0].node_cells.values())[0]
        with pytest.raises(ValidationError):
            schedule.validate()
