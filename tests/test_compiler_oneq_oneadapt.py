"""Tests for the OneQ and OneAdapt single-QPU compilers."""

import pytest

from repro.compiler import OneAdaptCompiler, OneQCompiler
from repro.compiler.execution import SingleQPUSchedule
from repro.hardware.resource_states import ResourceStateType
from repro.utils.errors import ValidationError


class TestOneQCompiler:
    def test_accepts_circuit_pattern_and_graph(self, small_circuit, small_pattern, small_computation):
        compiler = OneQCompiler(grid_size=5)
        for program in (small_circuit, small_pattern, small_computation):
            schedule = compiler.compile(program)
            assert isinstance(schedule, SingleQPUSchedule)
            assert schedule.num_layers > 0

    def test_rejects_unknown_input(self):
        with pytest.raises(TypeError):
            OneQCompiler(grid_size=5).compile("not a circuit")

    def test_schedule_validates(self, qft8_computation):
        OneQCompiler(grid_size=5).compile(qft8_computation).validate()

    def test_lifetime_not_larger_than_execution_time_plus_chain(self, qft8_computation):
        schedule = OneQCompiler(grid_size=5).compile(qft8_computation)
        report = schedule.lifetime_report()
        assert report.tau_fusee < schedule.execution_time

    def test_rsg_type_recorded(self, small_computation):
        schedule = OneQCompiler(grid_size=5, rsg_type=ResourceStateType.RING_4).compile(
            small_computation
        )
        assert schedule.rsg_type is ResourceStateType.RING_4

    def test_summary_keys(self, small_computation):
        summary = OneQCompiler(grid_size=5).compile(small_computation).summary()
        for key in ("layers", "execution_time", "required_photon_lifetime", "utilisation"):
            assert key in summary


class TestOneAdaptCompiler:
    def test_lifetime_bounded_by_refresh_limit(self, qft8_computation):
        compiler = OneAdaptCompiler(grid_size=5, refresh_limit=6)
        schedule = compiler.compile(qft8_computation)
        assert schedule.required_photon_lifetime <= 6

    def test_refresh_costs_execution_time(self, qft8_computation):
        oneq = OneQCompiler(grid_size=5).compile(qft8_computation)
        oneadapt = OneAdaptCompiler(grid_size=5, refresh_limit=3).compile(qft8_computation)
        assert oneadapt.execution_time >= oneq.execution_time

    def test_large_refresh_limit_changes_nothing(self, qft8_computation):
        oneq = OneQCompiler(grid_size=5).compile(qft8_computation)
        oneadapt = OneAdaptCompiler(grid_size=5, refresh_limit=10_000).compile(qft8_computation)
        assert oneadapt.execution_time == oneq.execution_time

    def test_boundary_reservation_increases_layers(self, qft8_computation):
        plain = OneAdaptCompiler(grid_size=6, refresh_limit=10_000).compile(qft8_computation)
        reserved = OneAdaptCompiler(
            grid_size=6, refresh_limit=10_000, boundary_reservation=True
        ).compile(qft8_computation)
        assert reserved.num_layers >= plain.num_layers

    def test_invalid_refresh_limit_rejected(self, small_computation):
        with pytest.raises(ValueError):
            OneAdaptCompiler(grid_size=5, refresh_limit=0).compile(small_computation)

    def test_accepts_circuit_input(self, ghz_circuit):
        schedule = OneAdaptCompiler(grid_size=4).compile(ghz_circuit)
        assert schedule.num_layers > 0

    def test_lifetime_cap_recorded(self, small_computation):
        schedule = OneAdaptCompiler(grid_size=5, refresh_limit=9).compile(small_computation)
        assert schedule.lifetime_cap == 9


class TestSeedThreading:
    """The seed must reach the mapper's randomised tie-breaking so repeated
    compiles are bit-identical — the prerequisite for safe artifact caching."""

    @staticmethod
    def placements(schedule):
        return [sorted(layer.node_cells.items()) for layer in schedule.layers]

    def test_oneadapt_repeated_compiles_are_bit_identical(self, qft8_computation):
        compiles = [
            # use_cache=False: a cache hit would make the check vacuous.
            OneAdaptCompiler(
                grid_size=5, refresh_limit=6, placement_jitter=0.7, seed=11
            ).compile_run(qft8_computation, use_cache=False)[0]
            for _ in range(2)
        ]
        assert self.placements(compiles[0]) == self.placements(compiles[1])
        assert compiles[0].fusee_pairs == compiles[1].fusee_pairs
        assert compiles[0].summary() == compiles[1].summary()

    def test_oneq_repeated_compiles_are_bit_identical(self, qft8_computation):
        compiles = [
            OneQCompiler(grid_size=5, placement_jitter=0.7, seed=11).compile_run(
                qft8_computation, use_cache=False
            )[0]
            for _ in range(2)
        ]
        assert self.placements(compiles[0]) == self.placements(compiles[1])

    def test_jittered_seeds_are_separate_cache_entries(self, qft8_computation):
        runs = {
            seed: OneAdaptCompiler(
                grid_size=5, placement_jitter=0.7, seed=seed
            ).compile_run(qft8_computation)[1]
            for seed in (1, 2)
        }
        keys = {
            seed: {record.stage: record.key for record in run.records}
            for seed, run in runs.items()
        }
        assert keys[1]["grid_mapping"] != keys[2]["grid_mapping"]


class TestScheduleValidation:
    def test_duplicate_placement_detected(self, small_computation):
        schedule = OneQCompiler(grid_size=5).compile(small_computation)
        # Corrupt the schedule: place an existing node a second time.
        node = next(iter(schedule.layers[0].node_cells))
        schedule.layers[-1].node_cells[node] = list(schedule.layers[0].node_cells.values())[0]
        with pytest.raises(ValidationError):
            schedule.validate()
