"""Tests for the perf-regression harness and the scoped cache bypass.

Covers the op-counter registry, the pipeline's ``no_cache_stages`` scoped
bypass, the reworked figure-10 ``runtime`` task (shared prefixes reused,
timed stages always executed), the counter-comparison logic of the CI perf
smoke gate, and the ``compile --profile`` stage-timing report.
"""

from __future__ import annotations

import importlib.util
import pathlib

from repro.cli import main as cli_main, render_profile_table
from repro.core.compiler import DCMBQCCompiler
from repro.core.config import DCMBQCConfig
from repro.sweep.cache import LRUCache, build_computation
from repro.sweep.grids import figure10_grid
from repro.sweep.tasks import TASK_REGISTRY
from repro.utils.counters import OpCounters, OP_COUNTERS


def _load_perf_smoke():
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf_smoke.py"
    spec = importlib.util.spec_from_file_location("perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# --------------------------------------------------------------------------- #
# Counter registry
# --------------------------------------------------------------------------- #


def test_op_counters_add_snapshot_delta_reset():
    counters = OpCounters()
    counters.add("a")
    counters.add("a", 4)
    counters.add("b", 2)
    assert counters.get("a") == 5
    snap = counters.snapshot()
    assert snap == {"a": 5, "b": 2}
    counters.add("a", 1)
    counters.add("c", 7)
    assert counters.delta_since(snap) == {"a": 1, "b": 0, "c": 7}
    counters.reset()
    assert counters.snapshot() == {}


def test_compile_populates_hot_path_counters():
    computation = build_computation("QFT", 8, 2026)
    before = OP_COUNTERS.snapshot()
    config = DCMBQCConfig(num_qpus=4, grid_size=5, use_bdir=True, seed=0)
    DCMBQCCompiler(config).compile_run(computation, use_cache=False)
    delta = OP_COUNTERS.delta_since(before)
    for name in (
        "partition.calls",
        "mapper.placements",
        "mapper.cell_probes",
        "scheduler.cycles",
        "evaluate.calls",
        "bdir.iterations",
    ):
        assert delta.get(name, 0) > 0, f"counter {name} never incremented"


def test_compile_op_counters_are_deterministic():
    computation = build_computation("QAOA", 8, 2026)
    config = DCMBQCConfig(num_qpus=4, grid_size=5, use_bdir=True, seed=0)

    def run_once():
        before = OP_COUNTERS.snapshot()
        DCMBQCCompiler(config).compile_run(computation, use_cache=False)
        return OP_COUNTERS.delta_since(before)

    assert run_once() == run_once()


# --------------------------------------------------------------------------- #
# Scoped cache bypass
# --------------------------------------------------------------------------- #


def test_no_cache_stages_always_execute_but_publish_artifacts():
    computation = build_computation("QFT", 8, 2026)
    config = DCMBQCConfig(num_qpus=4, grid_size=5, use_bdir=False, seed=0)
    memo = LRUCache(maxsize=16)

    _, first = DCMBQCCompiler(config).compile_run(
        computation, store=None, use_cache=True,
        no_cache_stages=("partition", "qpu_mapping", "scheduling"), memo=memo,
    )
    status = {record.stage: record.status for record in first.records}
    assert status["partition"] == "executed"
    assert status["qpu_mapping"] == "executed"
    assert status["scheduling"] == "executed"

    # A second run bypassing only the scheduling stage reuses the published
    # partition/mapping artifacts and still re-executes the timed stage.
    _, second = DCMBQCCompiler(config).compile_run(
        computation, store=None, use_cache=True,
        no_cache_stages=("scheduling",), memo=memo,
    )
    status = {record.stage: record.status for record in second.records}
    assert status["partition"] == "memory-hit"
    assert status["qpu_mapping"] == "memory-hit"
    assert status["scheduling"] == "executed"


def test_runtime_task_reuses_shared_prefix_and_reports_stages():
    point = next(iter(figure10_grid(seed=0, qft_sizes=(8,), num_qpus=4)))
    row = TASK_REGISTRY["runtime"](point)
    assert row["qubits"] == 8
    # Canonical figure-10 columns plus per-stage seconds for every variant.
    for name in (
        "baseline_oneq_seconds",
        "dcmbqc_core_seconds",
        "dcmbqc_core_bdir_seconds",
        "oneq_grid_mapping_seconds",
        "core_partition_seconds",
        "core_qpu_mapping_seconds",
        "core_scheduling_seconds",
        "bdir_scheduling_seconds",
    ):
        assert name in row, f"missing column {name}"
    # The BDIR variant is charged the shared prefix at its measured cost
    # (reused, not recompiled), so its partition time equals the core one.
    assert row["bdir_partition_seconds"] == row["core_partition_seconds"]
    assert row["bdir_qpu_mapping_seconds"] == row["core_qpu_mapping_seconds"]
    # Op counters ride along for the perf harness.
    assert any(name.startswith("ops_") for name in row)
    assert row["ops_evaluate_calls"] > 0


# --------------------------------------------------------------------------- #
# Perf smoke comparison logic
# --------------------------------------------------------------------------- #


def test_perf_smoke_compare_flags_regressions_only():
    perf_smoke = _load_perf_smoke()
    baseline = {"qft-8": {"scheduler.cycles": 1000, "evaluate.calls": 50}}
    # Identical and improved counters pass.
    assert perf_smoke.compare(baseline, {"qft-8": {"scheduler.cycles": 900, "evaluate.calls": 50}}) == []
    # Small jitter within the absolute slack passes.
    assert perf_smoke.compare(baseline, {"qft-8": {"scheduler.cycles": 1002, "evaluate.calls": 52}}) == []
    # A >10% jump fails.
    regressions = perf_smoke.compare(
        baseline, {"qft-8": {"scheduler.cycles": 1200, "evaluate.calls": 50}}
    )
    assert len(regressions) == 1 and "scheduler.cycles" in regressions[0]
    # A missing instance fails.
    assert perf_smoke.compare(baseline, {}) != []


def test_perf_smoke_sublinearity_pin():
    perf_smoke = _load_perf_smoke()
    instance = f"qft-{perf_smoke.SUBLINEAR_QUBITS}-line"
    nodes = 16000
    limit = 20 * (nodes // perf_smoke.SUBLINEAR_FRACTION)
    good = {
        instance: {
            "kernel_nodes": nodes,
            "bdir_iterations": 20,
            "evaluate_delta_calls": 20,
            "evaluate_delta_cone_nodes": limit,
        }
    }
    assert perf_smoke.check_delta_sublinearity(good) == []
    # A cone walk past delta_calls x nodes/FRACTION is no longer sub-linear.
    blown = {instance: dict(good[instance], evaluate_delta_cone_nodes=limit + 1)}
    problems = perf_smoke.check_delta_sublinearity(blown)
    assert len(problems) == 1 and "sub-linear" in problems[0]
    # An iteration bypassing the delta evaluator fails.
    bypass = {
        instance: dict(
            good[instance], evaluate_delta_calls=19, evaluate_delta_cone_nodes=0
        )
    }
    problems = perf_smoke.check_delta_sublinearity(bypass)
    assert len(problems) == 1 and "bypassed" in problems[0]
    # The pin never silently passes on an empty or missing row.
    assert perf_smoke.check_delta_sublinearity({}) != []
    assert perf_smoke.check_delta_sublinearity({instance: {}}) != []


# --------------------------------------------------------------------------- #
# CLI --profile
# --------------------------------------------------------------------------- #


def test_render_profile_table_shape():
    manifest = {
        "stages": [
            {"stage": "translate", "status": "executed", "seconds": 0.25, "output": "pattern"},
            {"stage": "scheduling", "status": "memory-hit", "seconds": 0.0, "output": "result"},
        ],
        "seconds": 0.25,
        "cache_hits": 1,
        "executions": 1,
    }
    text = render_profile_table(manifest)
    lines = text.splitlines()
    assert "stage" in lines[0] and "share" in lines[0]
    assert any("translate" in line and "100.0%" in line for line in lines)
    assert any("scheduling" in line and "memory-hit" in line for line in lines)
    assert lines[-1].startswith("total")


def test_cli_compile_profile_prints_stage_table(capsys, monkeypatch):
    # --no-cache propagates to the environment (for sweep workers); keep it
    # from leaking into other in-process tests.
    import os

    from repro.pipeline import CACHE_DIR_ENV, CACHE_DISABLE_ENV

    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv(CACHE_DISABLE_ENV, raising=False)
    try:
        exit_code = _run_profile_cli()
    finally:
        os.environ.pop(CACHE_DIR_ENV, None)
        os.environ.pop(CACHE_DISABLE_ENV, None)
    captured = capsys.readouterr().out
    assert exit_code == 0
    for stage in ("translate", "compgraph", "partition", "qpu_mapping", "scheduling"):
        assert stage in captured
    assert "share" in captured


def _run_profile_cli() -> int:
    return cli_main(
        [
            "compile",
            "--program", "QFT",
            "--qubits", "8",
            "--qpus", "4",
            "--no-cache",
            "--profile",
        ]
    )
