"""Tests for the dense statevector simulator."""


import numpy as np
import pytest

from repro.circuit import QuantumCircuit, StatevectorSimulator, simulate_circuit


class TestBasics:
    def test_initial_state_is_all_zero(self):
        simulator = StatevectorSimulator(2)
        state = simulator.state
        assert np.isclose(state[0], 1.0)
        assert np.allclose(state[1:], 0.0)

    def test_width_limits(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(0)
        with pytest.raises(ValueError):
            StatevectorSimulator(30)

    def test_set_state_checks_norm(self):
        simulator = StatevectorSimulator(1)
        with pytest.raises(ValueError):
            simulator.set_state(np.array([1.0, 1.0]))

    def test_set_state_checks_dimension(self):
        simulator = StatevectorSimulator(2)
        with pytest.raises(ValueError):
            simulator.set_state(np.array([1.0, 0.0]))


class TestEvolution:
    def test_hadamard_superposition(self):
        state = simulate_circuit(QuantumCircuit(1).h(0))
        assert np.allclose(np.abs(state) ** 2, [0.5, 0.5])

    def test_x_flips(self):
        state = simulate_circuit(QuantumCircuit(1).x(0))
        assert np.isclose(abs(state[1]), 1.0)

    def test_bell_state(self):
        state = simulate_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        probabilities = np.abs(state) ** 2
        assert np.allclose(probabilities, [0.5, 0.0, 0.0, 0.5])

    def test_ghz_state(self, ghz_circuit):
        state = simulate_circuit(ghz_circuit)
        probabilities = np.abs(state) ** 2
        assert np.isclose(probabilities[0], 0.5)
        assert np.isclose(probabilities[-1], 0.5)

    def test_qubit_zero_is_most_significant(self):
        # X on qubit 0 of a 2-qubit register puts us in |10> = index 2.
        state = simulate_circuit(QuantumCircuit(2).x(0))
        assert np.isclose(abs(state[2]), 1.0)

    def test_state_stays_normalised(self, small_circuit):
        state = simulate_circuit(small_circuit)
        assert np.isclose(np.linalg.norm(state), 1.0)

    def test_width_mismatch_rejected(self):
        simulator = StatevectorSimulator(2)
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(3).h(0))

    def test_cz_phase(self):
        circuit = QuantumCircuit(2).x(0).x(1).cz(0, 1)
        state = simulate_circuit(circuit)
        assert np.isclose(state[3], -1.0)


class TestMeasurement:
    def test_measure_all_deterministic_state(self):
        simulator = StatevectorSimulator(2)
        simulator.run(QuantumCircuit(2).x(1))
        histogram = simulator.measure_all(shots=100, seed=1)
        assert histogram == {"01": 100}

    def test_measure_all_statistics(self):
        simulator = StatevectorSimulator(1)
        simulator.run(QuantumCircuit(1).h(0))
        histogram = simulator.measure_all(shots=2000, seed=7)
        assert set(histogram) == {"0", "1"}
        assert abs(histogram["0"] - 1000) < 150

    def test_expectation_z(self):
        simulator = StatevectorSimulator(1)
        assert np.isclose(simulator.expectation_z(0), 1.0)
        simulator.run(QuantumCircuit(1).x(0))
        assert np.isclose(simulator.expectation_z(0), -1.0)

    def test_expectation_z_superposition(self):
        simulator = StatevectorSimulator(1)
        simulator.run(QuantumCircuit(1).h(0))
        assert abs(simulator.expectation_z(0)) < 1e-9
