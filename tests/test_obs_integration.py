"""End-to-end tracing tests: compile, runtime replay and sweep round-trip."""

from __future__ import annotations

import threading

import pytest

from repro.core import DCMBQCCompiler, DCMBQCConfig
from repro.obs.trace import TRACE_ENV, TRACER
from repro.runtime.executor import DistributedRuntime
from repro.sweep.grid import SweepPoint
from repro.sweep.runner import execute_point, run_grid
from repro.sweep.tasks import task


@task("_obs_noop")
def _noop_task(point):
    return {"label": point.label}


@pytest.fixture
def traced():
    """Enable the global tracer (deterministic) for one test."""
    TRACER.reset()
    TRACER.enable(deterministic=True)
    yield TRACER
    TRACER.disable()
    TRACER.reset()


def _names(spans):
    counts = {}
    for record in spans:
        counts[record.name] = counts.get(record.name, 0) + 1
    return counts


class TestTracedCompile:
    def test_compile_emits_spans_for_every_layer(self, traced, small_circuit):
        config = DCMBQCConfig(num_qpus=2, grid_size=5, seed=3)
        result = DCMBQCCompiler(config).compile_run(
            small_circuit, store=None, use_cache=False
        )[0]
        names = _names(traced.spans())
        for expected in (
            "compile.distributed",
            "pipeline.run",
            "stage.translate",
            "stage.compgraph",
            "stage.partition",
            "stage.qpu_mapping",
            "stage.scheduling",
            "partition.multilevel",
            "mapper.map",
            "scheduler.list_schedule",
            "schedule.evaluate",
            "bdir.refine",
        ):
            assert names.get(expected, 0) >= 1, f"missing span {expected}"
        assert names["bdir.iteration"] >= 1
        assert names["mapper.map"] == config.num_qpus

        # Runtime replay contributes its own span with summary attributes.
        DistributedRuntime(result).run()
        replay = [r for r in traced.spans() if r.name == "runtime.replay"]
        assert len(replay) == 1
        assert replay[0].attributes["cycles"] == result.schedule.makespan

    def test_stage_spans_nest_under_pipeline_run(self, traced, small_circuit):
        config = DCMBQCConfig(num_qpus=2, grid_size=5, seed=3)
        DCMBQCCompiler(config).compile_run(small_circuit, store=None, use_cache=False)
        spans = traced.spans()
        by_id = {record.span_id: record for record in spans}
        run_span = next(r for r in spans if r.name == "pipeline.run")
        for record in spans:
            if record.name.startswith("stage."):
                assert record.parent_id == run_span.span_id
            if record.name == "bdir.iteration":
                assert by_id[record.parent_id].name == "bdir.refine"

    def test_disabled_tracer_records_nothing(self, small_circuit):
        assert not TRACER.enabled
        config = DCMBQCConfig(num_qpus=2, grid_size=5, seed=3)
        DCMBQCCompiler(config).compile_run(small_circuit, store=None, use_cache=False)
        assert TRACER.spans() == []

    def test_concurrent_compiles_keep_their_threads_spans_apart(
        self, traced, small_circuit, ghz_circuit
    ):
        """Satellite: threaded compiles lose no spans and never cross-link."""
        config = DCMBQCConfig(num_qpus=2, grid_size=5, seed=3)
        errors = []

        def compile_one(circuit):
            try:
                DCMBQCCompiler(config).compile_run(
                    circuit, store=None, use_cache=False
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=compile_one, args=(circuit,))
            for circuit in (small_circuit, ghz_circuit)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        spans = traced.spans()
        roots = [r for r in spans if r.parent_id is None]
        assert _names(roots) == {"compile.distributed": 2}
        assert len({r.tid for r in roots}) == 2
        by_id = {r.span_id: r for r in spans}
        for record in spans:
            if record.parent_id is not None:
                assert by_id[record.parent_id].tid == record.tid
        ids = [r.span_id for r in spans]
        assert len(set(ids)) == len(ids)


class TestSweepSpanTransport:
    def test_serial_sweep_keeps_spans_local(self, traced):
        points = [
            SweepPoint(task="_obs_noop", extra=(("n", str(i)),)) for i in range(3)
        ]
        outcome = run_grid(points, workers=1)
        assert outcome.completed == 3
        assert all("spans" not in record for record in outcome.records)
        names = _names(traced.spans())
        assert names["sweep.point"] == 3

    def test_execute_point_exports_spans_on_request(self, traced):
        outcome = execute_point(
            SweepPoint(task="_obs_noop"), export_spans=True
        )
        assert [entry["name"] for entry in outcome["spans"]] == ["sweep.point"]
        assert traced.spans() == []  # drained into the payload

    def test_worker_round_trip_merges_under_parent_run(
        self, traced, monkeypatch
    ):
        """Satellite: pool-worker spans merge under the parent's run id with
        no lost or duplicated entries."""
        monkeypatch.setenv(TRACE_ENV, "1")
        points = [
            SweepPoint(task="_obs_noop", extra=(("n", str(i)),)) for i in range(4)
        ]
        with traced.span("cli.sweep") as sweep_span:
            outcome = run_grid(points, workers=2)
            parent_id = sweep_span.span_id
        assert outcome.completed == 4

        spans = traced.spans()
        points_spans = [r for r in spans if r.name == "sweep.point"]
        assert len(points_spans) == 4  # none lost, none duplicated
        for record in points_spans:
            assert record.parent_id == parent_id
            assert record.run_id == traced.run_id
            assert record.attributes["status"] == "done"
        # The shipped spans were merged, not left in the result records.
        assert all("spans" not in record for record in outcome.records)

    def test_untraced_sweep_ships_no_spans(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not TRACER.enabled
        outcome = execute_point(SweepPoint(task="_obs_noop"), export_spans=True)
        assert "spans" not in outcome
        assert TRACER.spans() == []
