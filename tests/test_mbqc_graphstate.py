"""Tests for graph states."""

import numpy as np
import pytest

from repro.mbqc.graphstate import GraphState, graph_state_of_pattern


class TestConstruction:
    def test_from_edges(self):
        state = GraphState.from_edges([(0, 1), (1, 2)], nodes=[3])
        assert state.num_nodes == 4
        assert state.num_edges == 2

    def test_nodes_sorted(self):
        state = GraphState.from_edges([(5, 1), (3, 1)])
        assert state.nodes == [1, 3, 5]

    def test_neighbors(self):
        state = GraphState.from_edges([(0, 1), (0, 2)])
        assert state.neighbors(0) == {1, 2}
        assert state.neighbors(1) == {0}

    def test_degree_histogram(self):
        state = GraphState.from_edges([(0, 1), (0, 2), (0, 3)])
        assert state.degree_histogram() == {3: 1, 1: 3}

    def test_from_pattern(self, small_pattern):
        state = graph_state_of_pattern(small_pattern)
        assert state.num_nodes == small_pattern.num_nodes
        assert state.num_edges == len(small_pattern.edges())


class TestStabilizers:
    def test_stabilizer_structure(self):
        state = GraphState.from_edges([(0, 1), (1, 2)])
        stabilizer = state.stabilizer(1)
        assert stabilizer[1] == "X"
        assert stabilizer[0] == "Z"
        assert stabilizer[2] == "Z"

    def test_number_of_stabilizers(self):
        state = GraphState.from_edges([(0, 1), (1, 2), (2, 3)])
        assert len(state.stabilizers()) == 4

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1)],
            [(0, 1), (1, 2)],
            [(0, 1), (1, 2), (2, 0)],
            [(0, 1), (1, 2), (2, 3), (3, 0)],
        ],
    )
    def test_statevector_is_stabilized(self, edges):
        state = GraphState.from_edges(edges)
        for node in state.nodes:
            assert state.check_stabilizer(node)

    def test_statevector_normalised(self):
        state = GraphState.from_edges([(0, 1), (1, 2)])
        assert np.isclose(np.linalg.norm(state.statevector()), 1.0)

    def test_statevector_size_guard(self):
        big = GraphState.from_edges([(i, i + 1) for i in range(20)])
        with pytest.raises(ValueError):
            big.statevector()

    def test_two_qubit_graph_state_value(self):
        """|G> for a single edge is CZ |++> = (|00>+|01>+|10>-|11>)/2."""
        state = GraphState.from_edges([(0, 1)]).statevector()
        expected = np.array([1, 1, 1, -1], dtype=complex) / 2.0
        assert np.allclose(state, expected)


class TestLocalComplement:
    def test_triangle_from_star(self):
        star = GraphState.from_edges([(0, 1), (0, 2)])
        complemented = star.local_complement(0)
        assert complemented.graph.has_edge(1, 2)
        assert complemented.graph.has_edge(0, 1)

    def test_involution_on_neighbourhood(self):
        graph = GraphState.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        twice = graph.local_complement(0).local_complement(0)
        assert sorted(twice.graph.edges) == sorted(graph.graph.edges)

    def test_original_not_mutated(self):
        graph = GraphState.from_edges([(0, 1), (0, 2)])
        graph.local_complement(0)
        assert not graph.graph.has_edge(1, 2)
