"""Tests for the Grover-search benchmark generator."""

import numpy as np
import pytest

from repro.circuit import simulate_circuit
from repro.programs.grover import grover_circuit, random_marked_state


class TestStructure:
    def test_two_mcz_per_iteration(self):
        circuit = grover_circuit(5, iterations=3, seed=0)
        assert circuit.count_gates()["MCZ"] == 6

    def test_marked_state_recorded(self):
        circuit = grover_circuit(6, seed=4)
        assert len(circuit.marked_state) == 6
        assert all(bit in (0, 1) for bit in circuit.marked_state)

    def test_explicit_marked_state(self):
        circuit = grover_circuit(4, marked=(1, 0, 1, 1))
        assert circuit.marked_state == (1, 0, 1, 1)

    def test_deterministic_per_seed(self):
        a = grover_circuit(6, seed=9)
        b = grover_circuit(6, seed=9)
        assert a.marked_state == b.marked_state
        assert [g.qubits for g in a.gates] == [g.qubits for g in b.gates]

    def test_random_marked_state_seeded(self):
        assert random_marked_state(8, seed=1) == random_marked_state(8, seed=1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            grover_circuit(1)
        with pytest.raises(ValueError):
            grover_circuit(4, iterations=0)
        with pytest.raises(ValueError):
            grover_circuit(4, marked=(1, 0))
        with pytest.raises(ValueError):
            grover_circuit(4, marked=(1, 0, 2, 0))


class TestSemantics:
    @pytest.mark.parametrize("seed", range(3))
    def test_marked_amplitude_amplified(self, seed):
        """One iteration boosts the marked state well above uniform."""
        circuit = grover_circuit(4, iterations=1, seed=seed)
        probabilities = np.abs(simulate_circuit(circuit)) ** 2
        marked_index = int("".join(str(b) for b in circuit.marked_state), 2)
        uniform = 1.0 / 16.0
        assert probabilities[marked_index] > 4 * uniform
        others = np.delete(probabilities, marked_index)
        assert probabilities[marked_index] > others.max() + 1e-9

    def test_two_iterations_boost_further(self):
        one = grover_circuit(4, iterations=1, seed=2)
        two = grover_circuit(4, iterations=2, seed=2)
        index = int("".join(str(b) for b in one.marked_state), 2)
        p_one = np.abs(simulate_circuit(one)[index]) ** 2
        p_two = np.abs(simulate_circuit(two)[index]) ** 2
        assert p_two > p_one > 1.0 / 16.0
